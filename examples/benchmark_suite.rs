//! Schedules and simulates the whole SPECfp95-modelled suite on every Table-1
//! machine and prints a per-benchmark comparison of the two schedulers.
//!
//! Run with `cargo run --release --example benchmark_suite`.

use multivliw::core::{BaselineScheduler, ModuloScheduler, RmcaScheduler, SchedulerOptions};
use multivliw::machine::presets;
use multivliw::sim::{simulate, SimOptions};
use multivliw::workloads::suite::{suite, SuiteParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads = suite(&SuiteParams::default());
    // Threshold 0.00: every load that can hide the miss latency does so.
    let options = SchedulerOptions::new().with_threshold(0.0);

    for machine in [presets::unified(), presets::two_cluster(), presets::four_cluster()] {
        println!("=== {machine} ===");
        println!(
            "{:<12} {:>14} {:>14} {:>9}",
            "benchmark", "baseline", "rmca", "speedup"
        );
        for w in &workloads {
            let mut totals = [0u64; 2];
            for (slot, scheduler) in [
                Box::new(BaselineScheduler::with_options(options)) as Box<dyn ModuloScheduler>,
                Box::new(RmcaScheduler::with_options(options)),
            ]
            .iter()
            .enumerate()
            {
                for l in &w.loops {
                    let schedule = scheduler.schedule(l, &machine)?;
                    let stats = simulate(l, &schedule, &machine, &SimOptions::new());
                    totals[slot] += stats.total_cycles();
                }
            }
            println!(
                "{:<12} {:>14} {:>14} {:>8.2}x",
                w.name,
                totals[0],
                totals[1],
                totals[0] as f64 / totals[1] as f64
            );
        }
        println!();
    }
    Ok(())
}
