//! Schedules and simulates the whole SPECfp95-modelled suite on every Table-1
//! machine and prints a per-benchmark comparison of the two schedulers.
//!
//! Run with `cargo run --release --example benchmark_suite`.

use multivliw::machine::presets;
use multivliw::pipeline::{Pipeline, SchedulerChoice};
use multivliw::workloads::suite::{suite, SuiteParams};

fn main() -> multivliw::Result<()> {
    let workloads = suite(&SuiteParams::default());

    for machine in [
        presets::unified(),
        presets::two_cluster(),
        presets::four_cluster(),
    ] {
        println!("=== {machine} ===");
        println!(
            "{:<12} {:>14} {:>14} {:>9}",
            "benchmark", "baseline", "rmca", "speedup"
        );
        for w in &workloads {
            let mut totals = [0u64; 2];
            for (slot, choice) in SchedulerChoice::ALL.into_iter().enumerate() {
                // Threshold 0.00: every load that can hide the miss latency
                // does so.
                let report = Pipeline::builder()
                    .scheduler(choice)
                    .machine(machine.clone())
                    .threshold(0.0)
                    .build()?
                    .run_batch(&w.loops)?;
                totals[slot] = report.total_cycles();
            }
            println!(
                "{:<12} {:>14} {:>14} {:>8.2}x",
                w.name,
                totals[0],
                totals[1],
                totals[0] as f64 / totals[1] as f64
            );
        }
        println!();
    }
    Ok(())
}
