//! Optimality gap: how far from the provably-best II do the heuristic
//! schedulers land?
//!
//! Runs the Figure-3 motivating loop on the motivating-example machine
//! through every heuristic scheduler with the exact-scheduler oracle
//! enabled, then prints the branch-and-bound outcome itself — the paper's
//! Section-3 story, machine-checked: the unified-architecture mII of 3 *is*
//! achievable on the distributed machine, the heuristics land at 4.
//!
//! Run with `cargo run --example optimality_gap`.

use multivliw::exact::{solve, ExactOptions};
use multivliw::machine::presets;
use multivliw::pipeline::{Pipeline, SchedulerChoice};
use multivliw::workloads::motivating::{motivating_loop, MotivatingParams};

fn main() -> multivliw::Result<()> {
    let (l, _) = motivating_loop(&MotivatingParams::default());
    let machine = presets::motivating_example_machine();
    println!("machine: {machine}");
    println!("loop:    {l}\n");

    for choice in [
        SchedulerChoice::Baseline,
        SchedulerChoice::Rmca,
        SchedulerChoice::Exact,
    ] {
        let report = Pipeline::builder()
            .scheduler(choice)
            .machine(machine.clone())
            .optimality_gap(true) // run the exact oracle alongside
            .build()?
            .run(&l)?;
        println!("{report}");
    }

    let outcome = solve(&l, &machine, &ExactOptions::new())?;
    println!("\nexact search: {outcome}");
    for probe in &outcome.probes {
        println!(
            "  II={}: {} ({} nodes)",
            probe.ii, probe.verdict, probe.nodes
        );
    }
    Ok(())
}
