//! Quickstart: build a small loop, schedule it with both schedulers on the
//! 2-cluster machine and simulate the result.
//!
//! Run with `cargo run --example quickstart`.

use multivliw::core::{BaselineScheduler, ModuloScheduler, RmcaScheduler, ScheduleMetrics};
use multivliw::ir::Loop;
use multivliw::machine::presets;
use multivliw::sim::{simulate, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // DO I = 1, N:  A(I) = B(I) * C(I) + s
    let mut builder = Loop::builder("quickstart");
    let i = builder.dimension("I", 256);
    let a = builder.auto_array("A", 64 * 1024);
    let b = builder.auto_array("B", 64 * 1024);
    let c = builder.auto_array("C", 64 * 1024);
    let ld_b = builder.load("LD_B", builder.array_ref(b).stride(i, 8).build());
    let ld_c = builder.load("LD_C", builder.array_ref(c).stride(i, 8).build());
    let mul = builder.fp_op("MUL");
    let add = builder.fp_op("ADD");
    let st = builder.store("ST_A", builder.array_ref(a).stride(i, 8).build());
    builder.data_edge(ld_b, mul, 0);
    builder.data_edge(ld_c, mul, 0);
    builder.data_edge(mul, add, 0);
    builder.data_edge(add, st, 0);
    let l = builder.build()?;

    let machine = presets::two_cluster();
    println!("machine: {machine}");
    println!("loop:    {l}\n");

    for scheduler in [
        Box::new(BaselineScheduler::new()) as Box<dyn ModuloScheduler>,
        Box::new(RmcaScheduler::new()),
    ] {
        let schedule = scheduler.schedule(&l, &machine)?;
        let metrics = ScheduleMetrics::collect(&l, &machine, &schedule);
        let stats = simulate(&l, &schedule, &machine, &SimOptions::new());
        println!("{metrics}");
        println!("  simulated: {stats}\n");
    }
    Ok(())
}
