//! Quickstart: build a small loop, then run it through the end-to-end
//! pipeline with both schedulers on the 2-cluster machine.
//!
//! Run with `cargo run --example quickstart`.

use multivliw::core::ScheduleMetrics;
use multivliw::ir::Loop;
use multivliw::machine::presets;
use multivliw::pipeline::{Pipeline, SchedulerChoice};

fn main() -> multivliw::Result<()> {
    // DO I = 1, N:  A(I) = B(I) * C(I) + s
    let mut builder = Loop::builder("quickstart");
    let i = builder.dimension("I", 256);
    let a = builder.auto_array("A", 64 * 1024);
    let b = builder.auto_array("B", 64 * 1024);
    let c = builder.auto_array("C", 64 * 1024);
    let ld_b = builder.load("LD_B", builder.array_ref(b).stride(i, 8).build());
    let ld_c = builder.load("LD_C", builder.array_ref(c).stride(i, 8).build());
    let mul = builder.fp_op("MUL");
    let add = builder.fp_op("ADD");
    let st = builder.store("ST_A", builder.array_ref(a).stride(i, 8).build());
    builder.data_edge(ld_b, mul, 0);
    builder.data_edge(ld_c, mul, 0);
    builder.data_edge(mul, add, 0);
    builder.data_edge(add, st, 0);
    let l = builder.build()?;

    let machine = presets::two_cluster();
    println!("machine: {machine}");
    println!("loop:    {l}\n");

    for choice in SchedulerChoice::ALL {
        let pipeline = Pipeline::builder()
            .scheduler(choice)
            .machine(machine.clone())
            .build()?;
        let report = pipeline.run(&l)?;
        let metrics = ScheduleMetrics::collect(&l, &machine, &report.schedule);
        println!("{metrics}");
        println!("  simulated: {}\n", report.stats);
    }
    Ok(())
}
