//! The paper's Section-3 motivating example, end to end.
//!
//! Shows how the cluster assignment of memory operations changes the cycle
//! count on a machine with a distributed data cache: the register-oriented
//! baseline reaches II = 3 but stalls on ping-pong conflict misses, while
//! RMCA accepts II = 4 and removes almost all stalls (the paper's 1.5x).
//!
//! Run with `cargo run --example motivating_example`.

use multivliw::machine::presets;
use multivliw::pipeline::{Pipeline, SchedulerChoice};
use multivliw::workloads::motivating::{motivating_loop, MotivatingParams};

fn main() -> multivliw::Result<()> {
    let params = MotivatingParams::default();
    let (l, ops) = motivating_loop(&params);
    let machine = presets::motivating_example_machine();

    println!("loop: {l}");
    println!("machine: {machine}\n");

    let mut totals = Vec::new();
    for (label, choice) in [
        ("baseline (register-aware only)", SchedulerChoice::Baseline),
        ("rmca (register + memory aware)", SchedulerChoice::Rmca),
    ] {
        let report = Pipeline::builder()
            .scheduler(choice)
            .machine(machine.clone())
            .build()?
            .run(&l)?;
        println!("{label}:");
        println!(
            "  II = {}, SC = {}, communications/iteration = {}",
            report.ii, report.stage_count, report.communications
        );
        println!(
            "  cluster of LD1/LD2/LD3/LD4 = {}/{}/{}/{}",
            report.schedule.placement(ops.ld1).cluster,
            report.schedule.placement(ops.ld2).cluster,
            report.schedule.placement(ops.ld3).cluster,
            report.schedule.placement(ops.ld4).cluster
        );
        println!("  {}\n", report.stats);
        totals.push(report.total_cycles());
    }
    println!(
        "speedup of RMCA over the baseline: {:.2}x (paper's hand analysis: ~1.5x)",
        totals[0] as f64 / totals[1] as f64
    );
    Ok(())
}
