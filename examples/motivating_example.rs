//! The paper's Section-3 motivating example, end to end.
//!
//! Shows how the cluster assignment of memory operations changes the cycle
//! count on a machine with a distributed data cache: the register-oriented
//! baseline reaches II = 3 but stalls on ping-pong conflict misses, while
//! RMCA accepts II = 4 and removes almost all stalls (the paper's 1.5x).
//!
//! Run with `cargo run --example motivating_example`.

use multivliw::core::{BaselineScheduler, ModuloScheduler, RmcaScheduler};
use multivliw::machine::presets;
use multivliw::sim::{simulate, SimOptions};
use multivliw::workloads::motivating::{motivating_loop, MotivatingParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = MotivatingParams::default();
    let (l, ops) = motivating_loop(&params);
    let machine = presets::motivating_example_machine();

    println!("loop: {l}");
    println!("machine: {machine}\n");

    let mut totals = Vec::new();
    for (label, scheduler) in [
        ("baseline (register-aware only)", Box::new(BaselineScheduler::new()) as Box<dyn ModuloScheduler>),
        ("rmca (register + memory aware)", Box::new(RmcaScheduler::new())),
    ] {
        let schedule = scheduler.schedule(&l, &machine)?;
        let stats = simulate(&l, &schedule, &machine, &SimOptions::new());
        println!("{label}:");
        println!("  II = {}, SC = {}, communications/iteration = {}",
            schedule.ii(), schedule.stage_count(), schedule.num_communications());
        println!(
            "  cluster of LD1/LD2/LD3/LD4 = {}/{}/{}/{}",
            schedule.placement(ops.ld1).cluster,
            schedule.placement(ops.ld2).cluster,
            schedule.placement(ops.ld3).cluster,
            schedule.placement(ops.ld4).cluster
        );
        println!("  {stats}\n");
        totals.push(stats.total_cycles());
    }
    println!(
        "speedup of RMCA over the baseline: {:.2}x (paper's hand analysis: ~1.5x)",
        totals[0] as f64 / totals[1] as f64
    );
    Ok(())
}
