//! Building a custom multiVLIWprocessor configuration and exploring how the
//! memory-bus budget changes the picture.
//!
//! Run with `cargo run --example custom_machine`.

use multivliw::core::{ModuloScheduler, RmcaScheduler, SchedulerOptions};
use multivliw::machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig, OperationLatencies};
use multivliw::sim::{simulate, SimOptions};
use multivliw::workloads::suite::{suite, SuiteParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-cluster machine with tiny per-cluster caches: not evaluated in the
    // paper, but directly expressible with the machine builder.
    let cache = CacheGeometry::direct_mapped(1024);
    let base = MachineConfig::builder("8-cluster-experimental")
        .homogeneous_clusters(8, ClusterConfig::new(1, 1, 1, 16, cache))
        .register_buses(BusConfig::finite(3, 1))
        .latencies(OperationLatencies::paper_defaults())
        .memory_buses(BusConfig::finite(1, 2))
        .build()?;

    let workloads = suite(&SuiteParams::small());
    let scheduler = RmcaScheduler::with_options(SchedulerOptions::new().with_threshold(0.0));

    println!("{base}\n");
    println!("{:<22} {:>14} {:>12} {:>12}", "memory buses", "total cycles", "stall", "bus wait");
    for buses in [BusConfig::finite(1, 2), BusConfig::finite(2, 2), BusConfig::unbounded(2)] {
        let machine = base.with_memory_buses(buses);
        let mut total = 0u64;
        let mut stall = 0u64;
        let mut bus_wait = 0u64;
        for w in &workloads {
            for l in &w.loops {
                let schedule = scheduler.schedule(l, &machine)?;
                let stats = simulate(l, &schedule, &machine, &SimOptions::new());
                total += stats.total_cycles();
                stall += stats.stall_cycles;
                bus_wait += stats.memory.bus_wait_cycles;
            }
        }
        println!("{:<22} {:>14} {:>12} {:>12}", buses.to_string(), total, stall, bus_wait);
    }
    Ok(())
}
