//! Building a custom multiVLIWprocessor configuration and exploring how the
//! memory-bus budget changes the picture.
//!
//! Run with `cargo run --example custom_machine`.

use multivliw::machine::{
    BusConfig, CacheGeometry, ClusterConfig, MachineConfig, OperationLatencies,
};
use multivliw::pipeline::{Pipeline, SchedulerChoice};
use multivliw::workloads::suite::{suite, SuiteParams};

fn main() -> multivliw::Result<()> {
    // An 8-cluster machine with tiny per-cluster caches: not evaluated in the
    // paper, but directly expressible with the machine builder.
    let cache = CacheGeometry::direct_mapped(1024);
    let base = MachineConfig::builder("8-cluster-experimental")
        .homogeneous_clusters(8, ClusterConfig::new(1, 1, 1, 16, cache))
        .register_buses(BusConfig::finite(3, 1))
        .latencies(OperationLatencies::paper_defaults())
        .memory_buses(BusConfig::finite(1, 2))
        .build()?;

    let workloads = suite(&SuiteParams::small());

    println!("{base}\n");
    println!(
        "{:<22} {:>14} {:>12} {:>12}",
        "memory buses", "total cycles", "stall", "bus wait"
    );
    for buses in [
        BusConfig::finite(1, 2),
        BusConfig::finite(2, 2),
        BusConfig::unbounded(2),
    ] {
        let report = Pipeline::builder()
            .scheduler(SchedulerChoice::Rmca)
            .machine(base.with_memory_buses(buses))
            .threshold(0.0)
            .build()?
            .run_workloads(&workloads)?;
        println!(
            "{:<22} {:>14} {:>12} {:>12}",
            buses.to_string(),
            report.total_cycles(),
            report.stall_cycles,
            report.memory.bus_wait_cycles
        );
    }
    Ok(())
}
