//! The end-to-end schedule → simulate → report pipeline.
//!
//! Every experiment in this workspace runs the same sequence: pick a
//! scheduler, pick a machine, modulo-schedule one or more loops, simulate
//! each schedule on the cycle-level simulator, and collect the II / SC /
//! miss-rate / cycle metrics. [`Pipeline`] is the single place that
//! sequence lives; the integration tests, the examples and the `mvp-bench`
//! experiment drivers all go through it.
//!
//! # Example
//!
//! ```
//! use multivliw::pipeline::{Pipeline, SchedulerChoice};
//! use multivliw::workloads::motivating::{motivating_loop, MotivatingParams};
//!
//! # fn main() -> multivliw::Result<()> {
//! let (l, _) = motivating_loop(&MotivatingParams::default());
//! let report = Pipeline::builder()
//!     .scheduler(SchedulerChoice::Rmca)
//!     .build()?
//!     .run(&l)?;
//! println!("II = {}, total cycles = {}", report.ii, report.total_cycles());
//! # Ok(())
//! # }
//! ```

use crate::error::{Error, Result};
use mvp_core::{
    BaselineScheduler, Communication, FallbackScheduler, ModuloScheduler, PlacedOp, RmcaScheduler,
    Schedule, SchedulerOptions,
};
use mvp_exact::{ExactBackend, ExactOptions, ExactScheduler};
use mvp_exec::Executor;
use mvp_ir::{Loop, OpId};
use mvp_machine::{presets, MachineConfig};
use mvp_schedcache::{canonicalize, hash_machine, CacheKey, CanonicalLoop, ScheduleCache};
use mvp_sim::memory_system::MemoryCounters;
use mvp_sim::{simulate, SimOptions, SimStats};
use mvp_workloads::Workload;
use std::fmt;
use std::sync::Arc;

/// Which scheduler configuration a [`Pipeline`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerChoice {
    /// The register-communication-aware baseline of the authors' earlier
    /// work \[22\].
    Baseline,
    /// The paper's Register and Memory Communication-Aware scheduler.
    Rmca,
    /// The paper's *Unified* reference: the baseline scheduler on a
    /// single-cluster (non-distributed) machine.
    Unified,
    /// The RMCA scheduler with a non-pipelined list-scheduling safety net:
    /// loops whose II search exhausts still get a legal (stage-count-1)
    /// schedule instead of an error. This is what makes arbitrary
    /// [`LoopGenerator`](mvp_workloads::LoopGenerator) seeds runnable end to
    /// end.
    ListFallback,
    /// The branch-and-bound exact scheduler of [`mvp_exact`]: schedules at
    /// the smallest II the search can find and certify, or fails with an
    /// exhausted II search when the node budget trips first. Intended as an
    /// optimality oracle on small loops, not as a production scheduler.
    Exact,
    /// The exact scheduler on its CDCL SAT backend: the same certified
    /// search, but every probe is decided by CNF refutation / model
    /// decoding instead of branch-and-bound.
    ExactSat,
    /// The exact scheduler racing the SAT and branch-and-bound engines per
    /// probe on the pipeline's executor — first certificate wins, rival
    /// cancelled, agreeing certificates cross-checked.
    Portfolio,
}

impl SchedulerChoice {
    /// The two schedulers the paper's figures compare bar-by-bar
    /// ([`Unified`](SchedulerChoice::Unified) is the normalisation
    /// reference, not a bar).
    pub const ALL: [SchedulerChoice; 2] = [SchedulerChoice::Baseline, SchedulerChoice::Rmca];

    /// Every scheduler configuration, as exercised by the differential fuzz
    /// harness (the exact scheduler only on loops small enough for its node
    /// budget; see `tests/differential_fuzz.rs`).
    pub const EVERY: [SchedulerChoice; 5] = [
        SchedulerChoice::Baseline,
        SchedulerChoice::Rmca,
        SchedulerChoice::Unified,
        SchedulerChoice::ListFallback,
        SchedulerChoice::Exact,
    ];

    /// Short display name (used in result tables).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedulerChoice::Baseline => "baseline",
            SchedulerChoice::Rmca => "rmca",
            SchedulerChoice::Unified => "unified",
            SchedulerChoice::ListFallback => "list-fallback",
            SchedulerChoice::Exact => "exact",
            SchedulerChoice::ExactSat => "exact-sat",
            SchedulerChoice::Portfolio => "portfolio",
        }
    }

    /// The probe backend of the exact-family choices ([`Exact`],
    /// [`ExactSat`], [`Portfolio`]); `None` for the heuristics. The
    /// portfolio races on `executor`.
    ///
    /// [`Exact`]: SchedulerChoice::Exact
    /// [`ExactSat`]: SchedulerChoice::ExactSat
    /// [`Portfolio`]: SchedulerChoice::Portfolio
    #[must_use]
    pub fn exact_backend(self, executor: &Arc<Executor>) -> Option<ExactBackend> {
        match self {
            SchedulerChoice::Exact => Some(ExactBackend::BranchAndBound),
            SchedulerChoice::ExactSat => Some(ExactBackend::Sat),
            SchedulerChoice::Portfolio => Some(ExactBackend::portfolio(Arc::clone(executor))),
            _ => None,
        }
    }

    /// Builds the scheduler implementation with the given options. The
    /// [`Portfolio`](SchedulerChoice::Portfolio) configuration races on the
    /// process-wide [`Executor::global`] here; pipelines built through
    /// [`PipelineBuilder`] race on the pipeline's own executor instead.
    #[must_use]
    pub fn build(self, options: SchedulerOptions) -> Box<dyn ModuloScheduler + Send + Sync> {
        match self {
            SchedulerChoice::Baseline | SchedulerChoice::Unified => {
                Box::new(BaselineScheduler::with_options(options))
            }
            SchedulerChoice::Rmca => Box::new(RmcaScheduler::with_options(options)),
            SchedulerChoice::ListFallback => Box::new(FallbackScheduler::with_options(
                RmcaScheduler::with_options(options),
                options,
            )),
            SchedulerChoice::Exact | SchedulerChoice::ExactSat | SchedulerChoice::Portfolio => {
                let backend = self
                    .exact_backend(&Executor::global())
                    .expect("exact-family choice");
                Box::new(ExactScheduler::from_scheduler_options(&options).with_backend(backend))
            }
        }
    }

    /// The machine preset this choice runs on when none is given
    /// explicitly.
    #[must_use]
    pub fn default_machine(self) -> MachineConfig {
        match self {
            SchedulerChoice::Unified => presets::unified(),
            _ => presets::two_cluster(),
        }
    }
}

impl fmt::Display for SchedulerChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The concrete [`ScheduleCache`] instantiation the pipeline shares:
/// canonicalized loop reports keyed by content hash. Build one, wrap it in
/// an [`Arc`], and hand it to every pipeline of a service via
/// [`PipelineBuilder::schedule_cache`].
pub type PipelineScheduleCache = ScheduleCache<CachedLoopReport>;

/// Builder for a [`Pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    scheduler: SchedulerChoice,
    machine: Option<Arc<MachineConfig>>,
    scheduler_options: SchedulerOptions,
    sim_options: SimOptions,
    gap_oracle: Option<ExactOptions>,
    exact_node_budget: Option<u64>,
    exact_ladder_width: Option<u32>,
    executor: Option<Arc<Executor>>,
    schedule_cache: Option<Arc<PipelineScheduleCache>>,
    trace: bool,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self {
            scheduler: SchedulerChoice::Rmca,
            machine: None,
            scheduler_options: SchedulerOptions::new(),
            sim_options: SimOptions::new(),
            gap_oracle: None,
            exact_node_budget: None,
            exact_ladder_width: None,
            executor: None,
            schedule_cache: None,
            trace: true,
        }
    }
}

impl PipelineBuilder {
    /// Picks the scheduler (default: [`SchedulerChoice::Rmca`]).
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerChoice) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Picks the machine configuration. Defaults to the Table-1 2-cluster
    /// preset (or the unified preset for [`SchedulerChoice::Unified`]).
    ///
    /// Accepts either an owned [`MachineConfig`] or an
    /// [`Arc<MachineConfig>`]: experiment grids that build many pipelines
    /// for the same machine (the Figure-5/6 sweeps) share one `Arc` instead
    /// of cloning the whole configuration per pipeline.
    #[must_use]
    pub fn machine(mut self, machine: impl Into<Arc<MachineConfig>>) -> Self {
        self.machine = Some(machine.into());
        self
    }

    /// Replaces all scheduler options at once.
    #[must_use]
    pub fn scheduler_options(mut self, options: SchedulerOptions) -> Self {
        self.scheduler_options = options;
        self
    }

    /// Sets the cache-miss threshold (shortcut for the most commonly swept
    /// scheduler option).
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.scheduler_options = self.scheduler_options.with_threshold(threshold);
        self
    }

    /// Replaces the simulation options.
    #[must_use]
    pub fn sim_options(mut self, options: SimOptions) -> Self {
        self.sim_options = options;
        self
    }

    /// Switches the optimality-gap oracle on or off (off by default).
    ///
    /// When on, every [`Pipeline::run`] additionally runs the exact
    /// scheduler of [`mvp_exact`] on the loop and reports the relative gap
    /// between the heuristic II and the certified lower bound in
    /// [`LoopReport::optimality_gap`]. This is meant for small loops — the
    /// exact search carries a node budget and degrades to a weaker (but
    /// still certified) bound on large ones.
    ///
    /// For [`SchedulerChoice::Exact`] pipelines the oracle shares the
    /// scheduler's own search (one solve yields both the schedule and the
    /// bound), so the oracle's own options — including any set with
    /// [`optimality_gap_options`](Self::optimality_gap_options) — are not
    /// consulted and the schedule is identical with the flag on or off.
    #[must_use]
    pub fn optimality_gap(mut self, enabled: bool) -> Self {
        self.gap_oracle = enabled.then(ExactOptions::new);
        self
    }

    /// Switches the optimality-gap oracle on with explicit search options.
    #[must_use]
    pub fn optimality_gap_options(mut self, options: ExactOptions) -> Self {
        self.gap_oracle = Some(options);
        self
    }

    /// Caps the search-step budget of the exact *scheduler* configurations
    /// ([`SchedulerChoice::Exact`], [`SchedulerChoice::ExactSat`],
    /// [`SchedulerChoice::Portfolio`]). Without this, exact
    /// pipelines always solve under the 1M-step default of
    /// [`ExactOptions`] — far more than a suite-scale `EVERY` run wants to
    /// spend per loop. A loop whose probe exhausts the budget fails with an
    /// exhausted II search instead of an answer, exactly as an
    /// under-budgeted [`mvp_exact::solve`] would.
    ///
    /// Only consulted by the exact-family choices; the heuristic
    /// configurations have no node budget, and the *gap oracle's* budget is
    /// configured separately via
    /// [`optimality_gap_options`](Self::optimality_gap_options) (except for
    /// exact pipelines, whose single shared solve uses this budget).
    #[must_use]
    pub fn exact_node_budget(mut self, budget: u64) -> Self {
        self.exact_node_budget = Some(budget);
        self
    }

    /// Pins the speculative II-ladder width of the exact-family
    /// configurations (see [`ExactOptions::ladder_width`]: `0` = auto, `1`
    /// = sequential). Like [`exact_node_budget`](Self::exact_node_budget)
    /// this is only consulted by the exact-family choices; unset, the
    /// [`ExactOptions`] default (auto, overridable via `MVP_EXACT_LADDER`)
    /// applies. Benchmark harnesses that measure *batch* scaling pin width
    /// `1` so the executor's parallelism is spent across loops rather than
    /// inside each exact search.
    #[must_use]
    pub fn exact_ladder_width(mut self, width: u32) -> Self {
        self.exact_ladder_width = Some(width);
        self
    }

    /// Picks the executor batch runs ([`Pipeline::run_batch`],
    /// [`Pipeline::run_workloads`]) are parallelised on. Defaults to the
    /// process-wide [`Executor::global`] (sized by `MVP_THREADS` or the
    /// machine's available parallelism). Pass `Executor::new(1)` for a
    /// strictly sequential pipeline — the reports are identical either way,
    /// per the executor's ordered-collect guarantee.
    #[must_use]
    pub fn executor(mut self, executor: Arc<Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Attaches a content-addressed schedule cache (off by default).
    ///
    /// With a cache attached, [`Pipeline::run`] first canonicalizes the
    /// loop, derives a [`CacheKey`] from the loop's structure plus the
    /// machine configuration and every option that can influence the
    /// report, and looks the key up; a hit skips scheduling, the gap
    /// oracle *and* simulation entirely, replaying the stored
    /// [`LoopReport`] translated back into the query loop's operation ids.
    /// A miss solves as usual and stores the result.
    ///
    /// Share one `Arc` across all pipelines of a service (the cache is
    /// sharded internally and safe for concurrent batch jobs). Results are
    /// bit-identical with and without the cache: the key covers everything
    /// the report depends on, and the canonicalizer only ever identifies
    /// loops whose canonical descriptions are equal word for word.
    #[must_use]
    pub fn schedule_cache(mut self, cache: Arc<PipelineScheduleCache>) -> Self {
        self.schedule_cache = Some(cache);
        self
    }

    /// Switches per-phase [`mvp_trace`] instrumentation on or off for this
    /// pipeline (on by default).
    ///
    /// With the flag on, every run opens `pipeline.cache.probe`,
    /// `pipeline.schedule`, `pipeline.sim` and `pipeline.gap_oracle` spans
    /// and accumulates their elapsed time into the matching `pipeline.*.ns`
    /// runtime counters — subject to the *global* [`mvp_trace::TraceMode`],
    /// so a pipeline with tracing on still pays only one relaxed atomic
    /// load per phase while the process-wide mode is
    /// [`Off`](mvp_trace::TraceMode::Off). Turning the flag off mutes this
    /// pipeline even when the global mode is on, which lets a bench harness
    /// trace one pipeline of interest without noise from warm-up or
    /// reference pipelines.
    #[must_use]
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Validates the configuration and builds the [`Pipeline`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Machine`] when the machine configuration is
    /// invalid, and [`Error::Config`] when the Unified reference scheduler
    /// is paired with a clustered machine.
    pub fn build(self) -> Result<Pipeline> {
        let machine = self
            .machine
            .unwrap_or_else(|| Arc::new(self.scheduler.default_machine()));
        machine.validate()?;
        if self.scheduler == SchedulerChoice::Unified && machine.num_clusters() != 1 {
            return Err(Error::Config(format!(
                "the Unified reference runs on a single-cluster machine, got {} clusters",
                machine.num_clusters()
            )));
        }
        let executor = self.executor.unwrap_or_else(Executor::global);
        let scheduler = if let Some(backend) = self.scheduler.exact_backend(&executor) {
            let mut options = ExactOptions::from_scheduler_options(&self.scheduler_options);
            if let Some(budget) = self.exact_node_budget {
                options = options.with_node_budget(budget);
            }
            if let Some(width) = self.exact_ladder_width {
                options = options.with_ladder_width(width);
            }
            Box::new(ExactScheduler::with_options(options).with_backend(backend))
                as Box<dyn ModuloScheduler + Send + Sync>
        } else {
            self.scheduler.build(self.scheduler_options)
        };
        Ok(Pipeline {
            choice: self.scheduler,
            scheduler,
            scheduler_options: self.scheduler_options,
            machine,
            sim_options: self.sim_options,
            gap_oracle: self.gap_oracle,
            exact_node_budget: self.exact_node_budget,
            exact_ladder_width: self.exact_ladder_width,
            executor,
            schedule_cache: self.schedule_cache,
            trace: self.trace,
        })
    }
}

/// The end-to-end schedule → simulate → report driver.
///
/// Build one with [`Pipeline::builder`], then [`run`](Pipeline::run) a
/// single loop, or [`run_batch`](Pipeline::run_batch) /
/// [`run_workloads`](Pipeline::run_workloads) many loops at once — both
/// fan the loops out as individual jobs on the work-stealing
/// [`Executor`] (schedule, simulate *and* the optimality-gap oracle when
/// enabled all run inside the per-loop job, so independent gap-oracle
/// solves proceed concurrently, each under its own node budget).
pub struct Pipeline {
    choice: SchedulerChoice,
    scheduler: Box<dyn ModuloScheduler + Send + Sync>,
    scheduler_options: SchedulerOptions,
    machine: Arc<MachineConfig>,
    sim_options: SimOptions,
    gap_oracle: Option<ExactOptions>,
    exact_node_budget: Option<u64>,
    exact_ladder_width: Option<u32>,
    executor: Arc<Executor>,
    schedule_cache: Option<Arc<PipelineScheduleCache>>,
    trace: bool,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("scheduler", &self.choice)
            .field("machine", &self.machine.name)
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Starts building a pipeline.
    #[must_use]
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// The scheduler configuration this pipeline runs.
    #[must_use]
    pub fn scheduler(&self) -> SchedulerChoice {
        self.choice
    }

    /// The machine this pipeline schedules for and simulates on.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The machine as a shareable handle (cheap to clone into further
    /// pipelines or worker threads).
    #[must_use]
    pub fn shared_machine(&self) -> Arc<MachineConfig> {
        Arc::clone(&self.machine)
    }

    /// The executor batch runs are parallelised on.
    #[must_use]
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// The schedule cache attached via
    /// [`PipelineBuilder::schedule_cache`], if any.
    #[must_use]
    pub fn schedule_cache(&self) -> Option<&Arc<PipelineScheduleCache>> {
        self.schedule_cache.as_ref()
    }

    /// The content-addressed cache key [`run`](Pipeline::run) would look
    /// `l` up under: the loop's canonical structure, the machine
    /// configuration, and every pipeline option that can influence the
    /// report. Exposed so service front ends can log and correlate keys.
    #[must_use]
    pub fn cache_key(&self, l: &Loop) -> CacheKey {
        self.cache_key_of(&canonicalize(l))
    }

    fn cache_key_of(&self, canon: &CanonicalLoop) -> CacheKey {
        let mut k = canon.key_hasher();
        hash_machine(&mut k, &self.machine);
        k.str(self.choice.name());
        k.f64_bits(self.scheduler_options.miss_threshold);
        k.u32(self.scheduler_options.max_ii_slack);
        k.usize(self.scheduler_options.locality_window);
        k.bool(self.scheduler_options.enforce_register_pressure);
        k.u64(self.sim_options.max_inner_iterations);
        k.bool(self.sim_options.flush_between_executions);
        k.bool(self.gap_oracle.is_some());
        if let Some(oracle) = &self.gap_oracle {
            k.u32(oracle.max_ii_slack);
            k.u64(oracle.node_budget);
            k.u32(oracle.horizon_stages);
            k.bool(oracle.enforce_register_pressure);
        }
        k.bool(self.exact_node_budget.is_some());
        if let Some(budget) = self.exact_node_budget {
            k.u64(budget);
        }
        // The ladder's verdict contract pins the committed II and bound but
        // not the concrete SAT model behind a feasible schedule, so reports
        // solved at different widths must not alias in the cache.
        k.bool(self.exact_ladder_width.is_some());
        if let Some(width) = self.exact_ladder_width {
            k.u32(width);
        }
        k.finish()
    }

    /// Schedules and simulates one loop.
    ///
    /// With a [schedule cache](PipelineBuilder::schedule_cache) attached,
    /// consults it first and replays the stored report on a hit; the
    /// reported artifact is identical either way.
    ///
    /// # Errors
    ///
    /// Propagates scheduling failures as [`Error::Schedule`] (or
    /// [`Error::Machine`] when the root cause is the machine model).
    /// Failures are not cached: a loop that failed once is re-attempted on
    /// every run.
    pub fn run(&self, l: &Loop) -> Result<LoopReport> {
        if self.trace {
            mvp_trace::counter_handle!("pipeline.runs", Stable).incr();
        }
        let Some(cache) = &self.schedule_cache else {
            return self.solve(l);
        };
        let probe = self.phase_span(
            "pipeline.cache.probe",
            mvp_trace::counter_handle!("pipeline.cache.probe.ns", Runtime),
        );
        let canon = canonicalize(l);
        let key = self.cache_key_of(&canon);
        let hit = cache.get(&key);
        drop(probe);
        if let Some(cached) = hit {
            let report = cached.into_report(l, &canon);
            // A replayed schedule went through the debug validator when it
            // was first produced, but a hit may translate it onto a loop
            // that is merely isomorphic to the original — re-validate the
            // translated artifact in debug builds.
            #[cfg(debug_assertions)]
            {
                let violations = mvp_core::validate_schedule(l, &self.machine, &report.schedule);
                debug_assert!(
                    violations.is_empty(),
                    "cache hit replayed an illegal schedule for {} on {}: {violations:?}",
                    l.name(),
                    self.machine.name,
                );
            }
            return Ok(report);
        }
        let report = self.solve(l)?;
        cache.insert(key, CachedLoopReport::from_report(&report, &canon));
        Ok(report)
    }

    /// Opens a [`mvp_trace::timed_span`] for one pipeline phase, or an
    /// unarmed guard when this pipeline's tracing is off.
    fn phase_span(
        &self,
        name: &'static str,
        acc: &'static mvp_trace::Counter,
    ) -> mvp_trace::SpanGuard {
        if self.trace {
            mvp_trace::timed_span(name, acc)
        } else {
            mvp_trace::unarmed(name)
        }
    }

    /// The uncached schedule → (gap oracle) → simulate path.
    fn solve(&self, l: &Loop) -> Result<LoopReport> {
        // When the pipeline's own scheduler *is* the exact search (any
        // backend) and the gap oracle is on, one solve provides both the
        // schedule and the bound — running `ExactScheduler::schedule` and
        // then the oracle would repeat the identical search. The solve uses
        // the options the scheduler itself was built with (not the oracle's),
        // so toggling the gap flag never changes the schedule produced.
        let exact_backend = self.choice.exact_backend(&self.executor);
        if let (Some(backend), Some(_)) = (&exact_backend, &self.gap_oracle) {
            let mut options = ExactOptions::from_scheduler_options(&self.scheduler_options);
            if let Some(budget) = self.exact_node_budget {
                options = options.with_node_budget(budget);
            }
            if let Some(width) = self.exact_ladder_width {
                options = options.with_ladder_width(width);
            }
            // The fused exact solve is both the scheduler and the oracle:
            // its whole cost is charged to the schedule phase, and the
            // oracle-run counter still ticks because a gap was produced.
            if self.trace {
                mvp_trace::counter_handle!("pipeline.gap_oracle.runs", Stable).incr();
            }
            let span = self.phase_span(
                "pipeline.schedule",
                mvp_trace::counter_handle!("pipeline.schedule.ns", Runtime),
            );
            let outcome = mvp_exact::solve_with(l, &self.machine, &options, backend);
            drop(span);
            let outcome = outcome?;
            let max_ii = outcome.min_ii.saturating_add(options.max_ii_slack);
            let gap = outcome
                .schedule_ii()
                .map(|ii| outcome.optimality_gap_of(ii));
            let schedule =
                outcome
                    .schedule
                    .ok_or(Error::Schedule(mvp_core::ScheduleError::NoFeasibleIi {
                        min_ii: outcome.min_ii,
                        max_ii,
                    }))?;
            return self.finish_run(l, schedule, gap);
        }
        let span = self.phase_span(
            "pipeline.schedule",
            mvp_trace::counter_handle!("pipeline.schedule.ns", Runtime),
        );
        let schedule = self.scheduler.schedule(l, &self.machine);
        drop(span);
        let schedule = schedule?;
        let optimality_gap = self
            .gap_oracle
            .as_ref()
            .and_then(|options| {
                if self.trace {
                    mvp_trace::counter_handle!("pipeline.gap_oracle.runs", Stable).incr();
                }
                let _span = self.phase_span(
                    "pipeline.gap_oracle",
                    mvp_trace::counter_handle!("pipeline.gap_oracle.ns", Runtime),
                );
                mvp_exact::solve(l, &self.machine, options).ok()
            })
            .map(|outcome| outcome.optimality_gap_of(schedule.ii()));
        self.finish_run(l, schedule, optimality_gap)
    }

    /// Validates (debug builds), simulates and reports one schedule.
    fn finish_run(
        &self,
        l: &Loop,
        schedule: Schedule,
        optimality_gap: Option<f64>,
    ) -> Result<LoopReport> {
        // Re-check the finished schedule against the independent legality
        // oracle in debug builds: every example, bench and test run then
        // dogfoods the validator, not only the fuzz harness.
        #[cfg(debug_assertions)]
        {
            let violations = mvp_core::validate_schedule(l, &self.machine, &schedule);
            debug_assert!(
                violations.is_empty(),
                "{} produced an illegal schedule for {} on {}: {violations:?}",
                self.choice,
                l.name(),
                self.machine.name,
            );
        }
        let span = self.phase_span(
            "pipeline.sim",
            mvp_trace::counter_handle!("pipeline.sim.ns", Runtime),
        );
        let stats = simulate(l, &schedule, &self.machine, &self.sim_options);
        drop(span);
        Ok(LoopReport {
            loop_name: l.name().to_string(),
            scheduler: self.choice,
            ii: schedule.ii(),
            stage_count: schedule.stage_count(),
            communications: schedule.num_communications(),
            miss_scheduled_loads: schedule.miss_scheduled_loads().count(),
            optimality_gap,
            schedule,
            stats,
        })
    }

    /// Schedules and simulates a batch of loops, one executor job per loop.
    ///
    /// The report is identical for every thread count: results are
    /// collected in input order and the first per-loop error *by batch
    /// position* wins, exactly as a sequential loop would behave.
    ///
    /// # Errors
    ///
    /// Returns the first per-loop error, or [`Error::Config`] for an empty
    /// batch.
    pub fn run_batch<'a, I>(&self, loops: I) -> Result<PipelineReport>
    where
        I: IntoIterator<Item = &'a Loop>,
    {
        let loops: Vec<&Loop> = loops.into_iter().collect();
        let runs: Vec<LoopReport> = self
            .executor
            .map(&loops, |l| self.run(l))
            .into_iter()
            .collect::<Result<_>>()?;
        PipelineReport::from_runs(self.choice, runs)
    }

    /// Schedules and simulates every loop of every workload, in parallel
    /// across the *loops* of the whole suite (not merely across
    /// workloads): the *n*-th loop of tomcatv and the first loop of apsi
    /// are independent executor jobs, so one long workload no longer
    /// serialises a worker while the small kernels finish early.
    ///
    /// # Errors
    ///
    /// Returns the first per-loop error (in suite order, independent of
    /// the thread count), or [`Error::Config`] when the suite contains no
    /// loops at all.
    pub fn run_workloads(&self, workloads: &[Workload]) -> Result<PipelineReport> {
        self.run_batch(workloads.iter().flat_map(|w| w.loops.iter()))
    }
}

/// Report of running one loop through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Name of the loop.
    pub loop_name: String,
    /// Which scheduler produced the schedule.
    pub scheduler: SchedulerChoice,
    /// Initiation interval of the schedule.
    pub ii: u32,
    /// Stage count of the schedule.
    pub stage_count: u32,
    /// Inter-cluster register communications per iteration.
    pub communications: usize,
    /// Loads scheduled with the miss latency.
    pub miss_scheduled_loads: usize,
    /// Relative gap between this schedule's II and the certified lower
    /// bound of the exact scheduler (`(II − bound) / bound`; 0.0 = provably
    /// optimal). `None` unless the pipeline was built with
    /// [`PipelineBuilder::optimality_gap`].
    pub optimality_gap: Option<f64>,
    /// The schedule itself (placements, communications).
    pub schedule: Schedule,
    /// Simulated cycle breakdown and memory counters.
    pub stats: SimStats,
}

impl LoopReport {
    /// Total simulated cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.stats.total_cycles()
    }

    /// Simulated local miss ratio of the memory system.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        self.stats.memory.miss_ratio()
    }
}

impl fmt::Display for LoopReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: II={}, SC={}, comms/iter={}, miss-rate={:.1}%, cycles={} (compute={} + stall={})",
            self.loop_name,
            self.scheduler,
            self.ii,
            self.stage_count,
            self.communications,
            100.0 * self.miss_rate(),
            self.total_cycles(),
            self.stats.compute_cycles,
            self.stats.stall_cycles,
        )?;
        if let Some(gap) = self.optimality_gap {
            write!(f, ", gap={:.0}%", 100.0 * gap)?;
        }
        Ok(())
    }
}

/// A [`LoopReport`] as stored in the [`PipelineScheduleCache`]: the same
/// payload, but with every operation id translated into the loop's
/// *canonical* numbering (the relabeling-invariant order computed by
/// [`canonicalize`]). Storing in canonical space is what lets a hit replay
/// onto any loop with the same canonical form — including relabeled
/// isomorphs of the loop that populated the entry — by translating ids
/// back through the query loop's own canonical maps.
#[derive(Debug, Clone)]
pub struct CachedLoopReport {
    scheduler: SchedulerChoice,
    ii: u32,
    communications: usize,
    miss_scheduled_loads: usize,
    optimality_gap: Option<f64>,
    machine_name: String,
    scheduler_name: String,
    /// Placements with canonical op ids, sorted by canonical id.
    ops: Vec<PlacedOp>,
    /// Communications with canonical op ids, in booking order.
    comms: Vec<Communication>,
    register_pressure: Vec<u32>,
    stats: SimStats,
}

impl CachedLoopReport {
    /// Translates a freshly solved report into canonical op-id space.
    fn from_report(report: &LoopReport, canon: &CanonicalLoop) -> Self {
        let mut ops: Vec<PlacedOp> = report
            .schedule
            .ops()
            .iter()
            .map(|p| PlacedOp {
                op: OpId::from_index(canon.to_canon[p.op.index()]),
                ..*p
            })
            .collect();
        ops.sort_by_key(|p| p.op.index());
        let comms = report
            .schedule
            .communications()
            .iter()
            .map(|c| Communication {
                src: OpId::from_index(canon.to_canon[c.src.index()]),
                dst: OpId::from_index(canon.to_canon[c.dst.index()]),
                ..*c
            })
            .collect();
        Self {
            scheduler: report.scheduler,
            ii: report.ii,
            communications: report.communications,
            miss_scheduled_loads: report.miss_scheduled_loads,
            optimality_gap: report.optimality_gap,
            machine_name: report.schedule.machine_name.clone(),
            scheduler_name: report.schedule.scheduler_name.clone(),
            ops,
            comms,
            register_pressure: report.schedule.register_pressure().to_vec(),
            stats: report.stats,
        }
    }

    /// Replays the cached artifact onto `l`, translating canonical op ids
    /// back into `l`'s own numbering.
    ///
    /// For the very loop that populated the entry this round-trips
    /// byte-identically: `from_canon ∘ to_canon` is the identity, both
    /// schedulers emit placements in op-id order (restored here by the
    /// sort), and communications keep their booking order throughout.
    fn into_report(self, l: &Loop, canon: &CanonicalLoop) -> LoopReport {
        let mut ops: Vec<PlacedOp> = self
            .ops
            .iter()
            .map(|p| PlacedOp {
                op: OpId::from_index(canon.from_canon[p.op.index()]),
                ..*p
            })
            .collect();
        ops.sort_by_key(|p| p.op.index());
        let comms = self
            .comms
            .iter()
            .map(|c| Communication {
                src: OpId::from_index(canon.from_canon[c.src.index()]),
                dst: OpId::from_index(canon.from_canon[c.dst.index()]),
                ..*c
            })
            .collect();
        let schedule = Schedule::new(
            self.machine_name,
            self.scheduler_name,
            self.ii,
            ops,
            comms,
            self.register_pressure,
        );
        LoopReport {
            loop_name: l.name().to_string(),
            scheduler: self.scheduler,
            ii: self.ii,
            stage_count: schedule.stage_count(),
            communications: self.communications,
            miss_scheduled_loads: self.miss_scheduled_loads,
            optimality_gap: self.optimality_gap,
            schedule,
            stats: self.stats,
        }
    }
}

/// Aggregated report of running a batch of loops through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Which scheduler produced every run.
    pub scheduler: SchedulerChoice,
    /// Per-loop reports.
    pub runs: Vec<LoopReport>,
    /// Sum of compute cycles across the batch.
    pub compute_cycles: u64,
    /// Sum of stall cycles across the batch.
    pub stall_cycles: u64,
    /// Memory-system counters summed across the batch.
    pub memory: MemoryCounters,
    /// Mean per-loop optimality gap over the runs that measured one
    /// (`None` when no run did; see [`LoopReport::optimality_gap`]).
    pub optimality_gap: Option<f64>,
}

impl PipelineReport {
    /// Aggregates per-loop reports into a batch report.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `runs` is empty: every figure of the
    /// paper normalises against these totals, and a silently-zero total
    /// would poison the ratios downstream.
    pub fn from_runs(scheduler: SchedulerChoice, runs: Vec<LoopReport>) -> Result<Self> {
        if runs.is_empty() {
            return Err(Error::Config("pipeline batch contains no loops".into()));
        }
        let compute_cycles = runs.iter().map(|r| r.stats.compute_cycles).sum();
        let stall_cycles = runs.iter().map(|r| r.stats.stall_cycles).sum();
        let mut memory = MemoryCounters::default();
        for r in &runs {
            memory.accumulate(&r.stats.memory);
        }
        let gaps: Vec<f64> = runs.iter().filter_map(|r| r.optimality_gap).collect();
        let optimality_gap = if gaps.is_empty() {
            None
        } else {
            Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
        };
        Ok(Self {
            scheduler,
            runs,
            compute_cycles,
            stall_cycles,
            memory,
            optimality_gap,
        })
    }

    /// Total cycles across the batch.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// Aggregate local miss ratio across the batch.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        self.memory.miss_ratio()
    }

    /// Total cycles normalised against a reference run (e.g. the Unified
    /// configuration), the y-axis of Figures 5 and 6.
    #[must_use]
    pub fn normalized_to(&self, reference: &PipelineReport) -> f64 {
        if reference.total_cycles() == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / reference.total_cycles() as f64
        }
    }

    /// Compute cycles normalised against a reference run's total.
    #[must_use]
    pub fn normalized_compute(&self, reference: &PipelineReport) -> f64 {
        if reference.total_cycles() == 0 {
            0.0
        } else {
            self.compute_cycles as f64 / reference.total_cycles() as f64
        }
    }

    /// Stall cycles normalised against a reference run's total.
    #[must_use]
    pub fn normalized_stall(&self, reference: &PipelineReport) -> f64 {
        if reference.total_cycles() == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / reference.total_cycles() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_workloads::motivating::{motivating_loop, MotivatingParams};
    use mvp_workloads::suite::{suite, SuiteParams};

    #[test]
    fn run_reports_the_figure3_loop() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let machine = presets::motivating_example_machine();
        let report = Pipeline::builder()
            .scheduler(SchedulerChoice::Rmca)
            .machine(machine)
            .build()
            .unwrap()
            .run(&l)
            .unwrap();
        assert_eq!(report.loop_name, l.name());
        assert!(report.ii >= 1);
        assert_eq!(report.schedule.ii(), report.ii);
        assert_eq!(
            report.total_cycles(),
            report.stats.compute_cycles + report.stats.stall_cycles
        );
        assert!(report.to_string().contains("II="));
    }

    #[test]
    fn unified_rejects_clustered_machines() {
        let err = Pipeline::builder()
            .scheduler(SchedulerChoice::Unified)
            .machine(presets::two_cluster())
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
        // ...and defaults to the unified preset when no machine is given.
        let p = Pipeline::builder()
            .scheduler(SchedulerChoice::Unified)
            .build()
            .unwrap();
        assert_eq!(p.machine().num_clusters(), 1);
    }

    #[test]
    fn list_fallback_runs_and_machines_are_shared() {
        let machine = std::sync::Arc::new(presets::two_cluster());
        let p = Pipeline::builder()
            .scheduler(SchedulerChoice::ListFallback)
            .machine(std::sync::Arc::clone(&machine))
            .build()
            .unwrap();
        // The builder keeps the caller's Arc instead of cloning the config.
        assert!(std::sync::Arc::ptr_eq(&p.shared_machine(), &machine));
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let report = p.run(&l).unwrap();
        assert_eq!(report.scheduler, SchedulerChoice::ListFallback);
        // The primary (RMCA) handles the motivating loop; the fallback only
        // engages on exhausted II searches.
        assert_eq!(report.schedule.scheduler_name, "rmca");
        assert_eq!(SchedulerChoice::EVERY.len(), 5);
        assert_eq!(SchedulerChoice::ListFallback.name(), "list-fallback");
        assert_eq!(
            SchedulerChoice::ListFallback.default_machine().name,
            "2-cluster"
        );
    }

    #[test]
    fn exact_choice_runs_and_measures_a_zero_gap_against_itself() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let machine = presets::motivating_example_machine();
        let report = Pipeline::builder()
            .scheduler(SchedulerChoice::Exact)
            .machine(machine)
            .optimality_gap(true)
            .build()
            .unwrap()
            .run(&l)
            .unwrap();
        assert_eq!(report.schedule.scheduler_name, "exact");
        // Figure-3 pinned: the exact scheduler achieves the unified mII of 3
        // on the distributed machine, so its own gap is exactly zero.
        assert_eq!(report.ii, 3);
        assert_eq!(report.optimality_gap, Some(0.0));
        assert!(report.to_string().contains("gap=0%"));
        assert_eq!(SchedulerChoice::Exact.name(), "exact");
        assert_eq!(SchedulerChoice::Exact.default_machine().name, "2-cluster");
    }

    #[test]
    fn sat_pipeline_matches_the_exact_figure3_pin() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let report = Pipeline::builder()
            .scheduler(SchedulerChoice::ExactSat)
            .machine(presets::motivating_example_machine())
            .optimality_gap(true)
            .build()
            .unwrap()
            .run(&l)
            .unwrap();
        assert_eq!(report.schedule.scheduler_name, "exact-sat");
        assert_eq!(report.ii, 3);
        assert_eq!(report.optimality_gap, Some(0.0));
        assert_eq!(SchedulerChoice::ExactSat.name(), "exact-sat");
        assert_eq!(
            SchedulerChoice::ExactSat.default_machine().name,
            "2-cluster"
        );
    }

    #[test]
    fn portfolio_retires_the_figure3_node_count() {
        // Branch-and-bound alone needs 490,291 nodes to prove II=3 on the
        // figure-3 loop; the portfolio must beat that on the *inclusive*
        // total (its own SAT steps plus every cancelled rival's nodes). A
        // 1-thread executor makes the race deterministic: SAT runs first,
        // the branch-and-bound rival is poisoned before charging a node.
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let machine = presets::motivating_example_machine();
        let backend = ExactBackend::portfolio(Arc::new(Executor::new(1)));
        let outcome = mvp_exact::solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
        assert_eq!(outcome.schedule_ii(), Some(3));
        assert!(outcome.proved_optimal);
        assert!(
            outcome.search_steps() < 490_291,
            "portfolio took {} steps",
            outcome.search_steps()
        );

        // The same race through the pipeline front end.
        let report = Pipeline::builder()
            .scheduler(SchedulerChoice::Portfolio)
            .machine(machine)
            .executor(Arc::new(Executor::new(1)))
            .optimality_gap(true)
            .build()
            .unwrap()
            .run(&l)
            .unwrap();
        assert_eq!(report.schedule.scheduler_name, "exact-portfolio");
        assert_eq!(report.ii, 3);
        assert_eq!(report.optimality_gap, Some(0.0));
        assert_eq!(SchedulerChoice::Portfolio.name(), "portfolio");
    }

    #[test]
    fn heuristic_gap_on_the_motivating_loop_is_one_third() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let machine = presets::motivating_example_machine();
        let report = Pipeline::builder()
            .scheduler(SchedulerChoice::Rmca)
            .machine(machine)
            .optimality_gap(true)
            .build()
            .unwrap()
            .run(&l)
            .unwrap();
        // RMCA lands at II=4 against the proven optimum of 3.
        assert_eq!(report.ii, 4);
        let gap = report.optimality_gap.expect("gap oracle enabled");
        assert!((gap - 1.0 / 3.0).abs() < 1e-12, "{gap}");
        // The batch aggregate carries the mean of the measured gaps.
        let batch = PipelineReport::from_runs(SchedulerChoice::Rmca, vec![report]).unwrap();
        assert!((batch.optimality_gap.unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_node_budget_caps_the_scheduler_search() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let machine = Arc::new(presets::motivating_example_machine());
        // A one-node budget exhausts immediately: the exact pipeline fails
        // with an exhausted II search instead of burning the 1M default.
        let starved = Pipeline::builder()
            .scheduler(SchedulerChoice::Exact)
            .machine(Arc::clone(&machine))
            .exact_node_budget(1)
            .build()
            .unwrap();
        let err = starved.run(&l).unwrap_err();
        assert!(matches!(
            err,
            Error::Schedule(mvp_core::ScheduleError::NoFeasibleIi { .. })
        ));
        // The same cap flows into the shared solve of the Exact + gap-oracle
        // fast path.
        let starved_gap = Pipeline::builder()
            .scheduler(SchedulerChoice::Exact)
            .machine(Arc::clone(&machine))
            .exact_node_budget(1)
            .optimality_gap(true)
            .build()
            .unwrap();
        assert!(starved_gap.run(&l).is_err());
        // A generous budget changes nothing relative to the default.
        let roomy = Pipeline::builder()
            .scheduler(SchedulerChoice::Exact)
            .machine(Arc::clone(&machine))
            .exact_node_budget(mvp_exact::ExactOptions::new().node_budget)
            .build()
            .unwrap();
        let default = Pipeline::builder()
            .scheduler(SchedulerChoice::Exact)
            .machine(machine)
            .build()
            .unwrap();
        assert_eq!(
            roomy.run(&l).unwrap().schedule,
            default.run(&l).unwrap().schedule
        );
        // Heuristic pipelines ignore the budget entirely.
        let rmca = Pipeline::builder()
            .scheduler(SchedulerChoice::Rmca)
            .exact_node_budget(1)
            .build()
            .unwrap();
        assert!(rmca.run(&l).is_ok());
    }

    #[test]
    fn exact_ladder_width_is_keyed_and_keeps_the_verdict_contract() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let machine = Arc::new(presets::motivating_example_machine());
        let build = |width| {
            Pipeline::builder()
                .scheduler(SchedulerChoice::Portfolio)
                .machine(Arc::clone(&machine))
                .executor(Arc::new(Executor::new(2)))
                .exact_ladder_width(width)
                .build()
                .unwrap()
        };
        let sequential = build(1);
        let laddered = build(4);
        // Different widths must not alias in the schedule cache...
        assert_ne!(sequential.cache_key(&l), laddered.cache_key(&l));
        // ...while the committed II is pinned by the verdict contract.
        assert_eq!(sequential.run(&l).unwrap().ii, laddered.run(&l).unwrap().ii);
    }

    #[test]
    fn gap_is_absent_unless_requested() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let report = Pipeline::builder().build().unwrap().run(&l).unwrap();
        assert_eq!(report.optimality_gap, None);
        let batch = PipelineReport::from_runs(SchedulerChoice::Rmca, vec![report]).unwrap();
        assert_eq!(batch.optimality_gap, None);
    }

    #[test]
    fn empty_batches_are_config_errors() {
        let p = Pipeline::builder().build().unwrap();
        assert!(matches!(p.run_batch([]), Err(Error::Config(_))));
        assert!(matches!(p.run_workloads(&[]), Err(Error::Config(_))));
    }

    #[test]
    fn explicit_executors_change_nothing_but_the_thread_count() {
        let workloads = suite(&SuiteParams::small());
        let build = |threads| {
            Pipeline::builder()
                .scheduler(SchedulerChoice::Rmca)
                .executor(Arc::new(Executor::new(threads)))
                .build()
                .unwrap()
        };
        let sequential = build(1);
        let parallel = build(4);
        assert_eq!(sequential.executor().threads(), 1);
        assert_eq!(parallel.executor().threads(), 4);
        assert_eq!(
            sequential.run_workloads(&workloads).unwrap(),
            parallel.run_workloads(&workloads).unwrap()
        );
    }

    #[test]
    fn schedule_cache_hits_replay_identical_reports() {
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let cache = Arc::new(PipelineScheduleCache::with_capacity_and_shards(64, 2));
        let p = Pipeline::builder()
            .scheduler(SchedulerChoice::Rmca)
            .machine(presets::motivating_example_machine())
            .schedule_cache(Arc::clone(&cache))
            .build()
            .unwrap();
        let cold = p.run(&l).unwrap();
        let warm = p.run(&l).unwrap();
        assert_eq!(cold, warm, "a hit replays the cold report exactly");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // The key is observable and stable.
        assert_eq!(p.cache_key(&l), p.cache_key(&l));

        // A pipeline differing in any keyed option misses.
        let other = Pipeline::builder()
            .scheduler(SchedulerChoice::Baseline)
            .machine(presets::motivating_example_machine())
            .schedule_cache(Arc::clone(&cache))
            .build()
            .unwrap();
        assert_ne!(other.cache_key(&l), p.cache_key(&l));
        other.run(&l).unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().entries, 2);

        // An uncached pipeline reports the same artifact.
        let uncached = Pipeline::builder()
            .scheduler(SchedulerChoice::Rmca)
            .machine(presets::motivating_example_machine())
            .build()
            .unwrap();
        assert!(uncached.schedule_cache().is_none());
        assert_eq!(uncached.run(&l).unwrap(), cold);
    }

    #[test]
    fn workload_suites_aggregate_consistently() {
        let workloads = suite(&SuiteParams::small());
        let p = Pipeline::builder()
            .scheduler(SchedulerChoice::Baseline)
            .build()
            .unwrap();
        let report = p.run_workloads(&workloads).unwrap();
        let loops: usize = workloads.iter().map(|w| w.loops.len()).sum();
        assert_eq!(report.runs.len(), loops);
        assert_eq!(
            report.total_cycles(),
            report.compute_cycles + report.stall_cycles
        );
        let per_loop_total: u64 = report.runs.iter().map(|r| r.total_cycles()).sum();
        assert_eq!(report.total_cycles(), per_loop_total);
        assert!((report.normalized_to(&report) - 1.0).abs() < 1e-12);
        let parts = report.normalized_compute(&report) + report.normalized_stall(&report);
        assert!((parts - 1.0).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&report.miss_rate()));
    }
}
