//! The unified error hierarchy of the `multivliw` facade.
//!
//! Each workspace crate reports failures with its own error enum
//! ([`MachineError`] from `mvp-machine`, [`IrError`] from `mvp-ir`,
//! [`ScheduleError`] from `mvp-core`). Applications driving the whole
//! pipeline would otherwise juggle all of them; [`enum@Error`] wraps every
//! one behind `From` impls so `?` works uniformly, and adds the
//! configuration errors of the [`Pipeline`](crate::pipeline::Pipeline)
//! itself.

use mvp_core::ScheduleError;
use mvp_ir::IrError;
use mvp_machine::MachineError;
use std::fmt;

/// Convenience alias used throughout the facade.
pub type Result<T> = std::result::Result<T, Error>;

/// Any error the end-to-end pipeline can produce.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An invalid machine configuration (from `mvp-machine`).
    Machine(MachineError),
    /// An invalid loop: cycles in the distance-0 dependence subgraph,
    /// references to undeclared dimensions, ... (from `mvp-ir`; this is
    /// also what workload construction reports, since workloads build
    /// loops through the same builder).
    Ir(IrError),
    /// Modulo scheduling failed (from `mvp-core`).
    Schedule(ScheduleError),
    /// The pipeline itself was misconfigured (e.g. the Unified reference
    /// scheduler paired with a clustered machine, or an empty batch).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Machine(e) => write!(f, "machine configuration error: {e}"),
            Error::Ir(e) => write!(f, "loop construction error: {e}"),
            Error::Schedule(e) => write!(f, "scheduling error: {e}"),
            Error::Config(reason) => write!(f, "pipeline configuration error: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Machine(e) => Some(e),
            Error::Ir(e) => Some(e),
            Error::Schedule(e) => Some(e),
            Error::Config(_) => None,
        }
    }
}

impl From<MachineError> for Error {
    fn from(e: MachineError) -> Self {
        Error::Machine(e)
    }
}

impl From<IrError> for Error {
    fn from(e: IrError) -> Self {
        Error::Ir(e)
    }
}

impl From<ScheduleError> for Error {
    fn from(e: ScheduleError) -> Self {
        // A schedule error that is really a machine error keeps its
        // sharper classification.
        match e {
            ScheduleError::Machine(m) => Error::Machine(m),
            other => Error::Schedule(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_machine_errors_collapse_to_machine() {
        let e: Error = ScheduleError::Machine(MachineError::NoClusters).into();
        assert_eq!(e, Error::Machine(MachineError::NoClusters));
    }

    #[test]
    fn display_prefixes_each_layer() {
        let e: Error = MachineError::NoClusters.into();
        assert!(e.to_string().starts_with("machine configuration error"));
        let e: Error = ScheduleError::NoFeasibleIi {
            min_ii: 2,
            max_ii: 66,
        }
        .into();
        assert!(e.to_string().starts_with("scheduling error"));
        let e = Error::Config("empty batch".into());
        assert!(e.to_string().contains("empty batch"));
    }

    #[test]
    fn sources_chain_to_the_wrapped_error() {
        use std::error::Error as _;
        let e: Error = MachineError::NoClusters.into();
        assert!(e.source().is_some());
        assert!(Error::Config("x".into()).source().is_none());
    }
}
