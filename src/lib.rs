//! `multivliw` — a reproduction of *"Modulo Scheduling for a
//! Fully-Distributed Clustered VLIW Architecture"* (Sánchez & González,
//! MICRO-33, 2000) as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single crate:
//!
//! * [`machine`] — the multiVLIWprocessor machine model (clusters, buses,
//!   ISA, Table-1 presets),
//! * [`ir`] — the loop IR and data-dependence graphs,
//! * [`cache`] — the CME-style data-locality analysis,
//! * [`core`] — the modulo schedulers (Baseline and RMCA, the paper's
//!   contribution),
//! * [`sim`] — the cycle-level simulator with distributed coherent caches,
//! * [`workloads`] — the synthetic SPECfp95-modelled kernels and the
//!   Figure-3 motivating example.
//!
//! # Quickstart
//!
//! ```
//! use multivliw::core::{ModuloScheduler, RmcaScheduler};
//! use multivliw::machine::presets;
//! use multivliw::sim::{simulate, SimOptions};
//! use multivliw::workloads::motivating::{motivating_loop, MotivatingParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (l, _) = motivating_loop(&MotivatingParams::default());
//! let machine = presets::two_cluster();
//! let schedule = RmcaScheduler::new().schedule(&l, &machine)?;
//! let stats = simulate(&l, &schedule, &machine, &SimOptions::new());
//! println!("II = {}, total cycles = {}", schedule.ii(), stats.total_cycles());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use mvp_cache as cache;
pub use mvp_core as core;
pub use mvp_ir as ir;
pub use mvp_machine as machine;
pub use mvp_sim as sim;
pub use mvp_workloads as workloads;
