//! `multivliw` — a reproduction of *"Modulo Scheduling for a
//! Fully-Distributed Clustered VLIW Architecture"* (Sánchez & González,
//! MICRO-33, 2000) as a Rust workspace.
//!
//! This facade crate re-exports the workspace crates so applications can
//! depend on a single crate:
//!
//! * [`machine`] — the multiVLIWprocessor machine model (clusters, buses,
//!   ISA, Table-1 presets),
//! * [`ir`] — the loop IR and data-dependence graphs,
//! * [`resmodel`] — the shared incremental modulo-constraint kernel every
//!   scheduler reserves through (placements, bus transfers, MaxLive),
//! * [`cache`] — the CME-style data-locality analysis,
//! * [`core`] — the modulo schedulers (Baseline and RMCA, the paper's
//!   contribution),
//! * [`exact`] — the branch-and-bound exact scheduler: an optimality oracle
//!   that proves how far the heuristics land from the best possible II,
//! * [`exec`] — the persistent parked-worker executor every heavy path
//!   (per-loop pipeline runs, gap-oracle calls, bench sweeps, fuzz cases)
//!   runs on,
//! * [`schedcache`] — the sharded, content-addressed schedule cache the
//!   service runtime replays repeated loops from,
//! * [`sim`] — the cycle-level simulator with distributed coherent caches,
//! * [`workloads`] — the synthetic SPECfp95-modelled kernels and the
//!   Figure-3 motivating example.
//!
//! On top of the re-exports, the facade adds the two pieces that tie the
//! crates together:
//!
//! * [`pipeline`] — the builder-style [`Pipeline`], the single place the
//!   schedule → simulate → report sequence lives,
//! * [`error`] — the unified [`enum@Error`] every layer's failure converts
//!   into.
//!
//! # Quickstart
//!
//! ```
//! use multivliw::machine::presets;
//! use multivliw::pipeline::{Pipeline, SchedulerChoice};
//! use multivliw::workloads::motivating::{motivating_loop, MotivatingParams};
//!
//! # fn main() -> multivliw::Result<()> {
//! let (l, _) = motivating_loop(&MotivatingParams::default());
//! let pipeline = Pipeline::builder()
//!     .scheduler(SchedulerChoice::Rmca)
//!     .machine(presets::two_cluster())
//!     .build()?;
//! let report = pipeline.run(&l)?;
//! println!("II = {}, total cycles = {}", report.ii, report.total_cycles());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod pipeline;

pub use error::{Error, Result};
pub use pipeline::{
    CachedLoopReport, LoopReport, Pipeline, PipelineBuilder, PipelineReport, PipelineScheduleCache,
    SchedulerChoice,
};

pub use mvp_cache as cache;
pub use mvp_core as core;
pub use mvp_exact as exact;
pub use mvp_exec as exec;
pub use mvp_ir as ir;
pub use mvp_machine as machine;
pub use mvp_resmodel as resmodel;
pub use mvp_schedcache as schedcache;
pub use mvp_sim as sim;
pub use mvp_workloads as workloads;
