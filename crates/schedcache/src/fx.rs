//! Dependency-free FxHash-style hashing.
//!
//! The workspace uses no external crates, so this module reimplements the
//! rotate-xor-multiply mixer popularised by Firefox and rustc's `FxHashMap`
//! (`hash' = (hash <<< 5 ^ word) * K`): not cryptographic, but extremely
//! cheap and well-distributed for the small structured words the schedule
//! cache feeds it. Two artifacts are exposed:
//!
//! * [`FxHasher`] / [`FxBuildHasher`] — a [`std::hash::Hasher`] for the
//!   cache's shard `HashMap`s (replacing SipHash, which would dominate the
//!   cost of an O(1) hit),
//! * [`KeyHasher`] — a 128-bit accumulator building the content-addressed
//!   [`CacheKey`] itself, wide enough that distinct (loop, machine,
//!   scheduler, options) tuples never collide in practice.

use std::hash::{BuildHasher, Hasher};

/// The 64-bit FxHash multiplier (`2^64 / φ`, rounded to odd).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Mixes one word into a running FxHash state.
#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(K)
}

/// An FxHash-style [`Hasher`]: fast multiply-xor mixing for the cache's
/// shard maps (and anything else in the workspace that wants a cheap
/// deterministic hash).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// A hasher starting from `seed` instead of zero.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self { hash: seed }
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.hash = mix(self.hash, word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            // Mix the remainder length too, so "ab" and "ab\0" differ.
            self.hash = mix(
                self.hash,
                u64::from_le_bytes(word) ^ (rest.len() as u64) << 56,
            );
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.hash = mix(self.hash, u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.hash = mix(self.hash, u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.hash = mix(self.hash, i);
    }

    fn write_usize(&mut self, i: usize) {
        self.hash = mix(self.hash, i as u64);
    }
}

/// [`BuildHasher`] for [`FxHasher`], usable as the `S` parameter of
/// [`std::collections::HashMap`].
#[derive(Debug, Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A 128-bit content-addressed cache key (see the [crate docs](crate) for
/// what gets fed into it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// Low half of the key.
    pub lo: u64,
    /// High half of the key.
    pub hi: u64,
}

impl CacheKey {
    /// The key rendered as 32 hex digits (for logs and CSV artifacts).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Accumulates a [`CacheKey`]: two FxHash lanes with different seeds and
/// decorrelated inputs, fed field-by-field by the canonicalizer and the
/// pipeline.
///
/// All inputs are reduced to `u64` words explicitly (no layout- or
/// platform-dependent hashing), so keys are stable across runs, platforms
/// and thread counts — a requirement for the byte-identical-replay
/// guarantees of the service runtime.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    lo: u64,
    hi: u64,
}

impl KeyHasher {
    /// Golden-ratio odd constant decorrelating the high lane.
    const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

    /// A fresh key accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lo: 0,
            hi: Self::PHI,
        }
    }

    /// Feeds one raw word into both lanes.
    pub fn u64(&mut self, v: u64) {
        self.lo = mix(self.lo, v);
        self.hi = mix(self.hi, v.wrapping_mul(Self::PHI).rotate_left(32));
    }

    /// Feeds a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.u64(u64::from(v));
    }

    /// Feeds a `usize`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Feeds an `i64` (bit pattern).
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Feeds a `bool`.
    pub fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    /// Feeds an `f64` by bit pattern (exact, including the sign of zero).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Feeds a string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        let mut chunks = s.as_bytes().chunks_exact(8);
        for chunk in &mut chunks {
            self.u64(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.u64(u64::from_le_bytes(word));
        }
    }

    /// The accumulated 128-bit key.
    #[must_use]
    pub fn finish(&self) -> CacheKey {
        CacheKey {
            lo: self.lo,
            hi: self.hi,
        }
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hasher_is_deterministic_and_sensitive() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"modulo"), hash(b"modulo"));
        assert_ne!(hash(b"modulo"), hash(b"module"));
        assert_ne!(hash(b"ab"), hash(b"ab\0"));
        assert_ne!(hash(b""), hash(b"\0"));
    }

    #[test]
    fn fx_build_hasher_works_in_a_hashmap() {
        let mut map: std::collections::HashMap<u64, u64, FxBuildHasher> =
            std::collections::HashMap::with_hasher(FxBuildHasher);
        for i in 0..1000 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&437), Some(&874));
    }

    #[test]
    fn key_hasher_orders_and_values_matter() {
        let key = |values: &[u64]| {
            let mut k = KeyHasher::new();
            for &v in values {
                k.u64(v);
            }
            k.finish()
        };
        assert_eq!(key(&[1, 2, 3]), key(&[1, 2, 3]));
        assert_ne!(key(&[1, 2, 3]), key(&[3, 2, 1]));
        assert_ne!(key(&[0]), key(&[0, 0]));
        let k = key(&[42]);
        assert_ne!(k.lo, k.hi, "lanes are decorrelated");
    }

    #[test]
    fn key_hasher_field_helpers_are_distinct() {
        let mut a = KeyHasher::new();
        a.str("ab");
        let mut b = KeyHasher::new();
        b.str("a");
        b.str("b");
        assert_ne!(a.finish(), b.finish(), "length prefix separates strings");
        assert_eq!(CacheKey { lo: 1, hi: 2 }.to_hex().len(), 32);
    }
}
