//! The sharded, bounded, content-addressed cache itself.
//!
//! [`ScheduleCache`] maps 128-bit [`CacheKey`]s to cached artifacts of a
//! caller-chosen type `V` (the pipeline stores canonicalized loop
//! reports). The design targets the persistent service runtime:
//!
//! * **Sharding.** Entries are spread over `shards` independent
//!   `Mutex<HashMap>`s selected by the key's low bits; size the shard
//!   count to the worker pool ([`ScheduleCache::with_capacity_and_shards`])
//!   and concurrent batch jobs practically never contend on one lock.
//! * **Bounded capacity + LRU eviction.** Every shard holds at most
//!   `capacity / shards` entries; inserting into a full shard evicts its
//!   least-recently-touched entry. Recency stamps come from a *per-shard*
//!   clock advanced inside the shard's critical section: stamp order is
//!   exactly lock-acquisition order in the only scope eviction ever
//!   compares stamps in, and concurrent shards never contend on a shared
//!   cache line. A busy service therefore holds its hot set and sheds the
//!   tail instead of growing without bound.
//! * **Counters.** Lifetime hits, misses and evictions are kept in atomics
//!   and reported by [`ScheduleCache::stats`]; the `serve` bin asserts a
//!   100% warm-pass hit rate from exactly these numbers. Per-shard
//!   occupancy and eviction counts are reported by
//!   [`ScheduleCache::shard_stats`].
//! * **Tracing.** Every lookup and eviction also reports through
//!   [`mvp_trace`]: `schedcache.hit` / `schedcache.miss` /
//!   `schedcache.evict` instant events carrying the shard index, plus the
//!   runtime counters `schedcache.hits`, `schedcache.misses` and
//!   `schedcache.evictions`.

use crate::fx::{CacheKey, FxBuildHasher};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default total capacity (entries) of [`ScheduleCache::default`].
pub const DEFAULT_CAPACITY: usize = 4096;

/// Lifetime counters and occupancy of a [`ScheduleCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently stored (across all shards).
    pub entries: usize,
    /// Maximum entries the cache will hold (across all shards).
    pub capacity: usize,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl CacheStats {
    /// Hits over lookups, in `[0, 1]` (`0` when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Occupancy and lifetime evictions of one shard (see
/// [`ScheduleCache::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Entries currently stored in this shard.
    pub entries: usize,
    /// Entries this shard has evicted over its lifetime.
    pub evictions: u64,
}

struct Entry<V> {
    value: V,
    /// Last-touched stamp from the owning shard's clock (bigger = more
    /// recent); the eviction victim is the shard minimum.
    stamp: u64,
}

/// The lock-protected state of one shard: its slice of the key space plus
/// its own recency clock. Keeping the clock *inside* the mutex (rather
/// than a process-wide atomic ticked before the lock) makes stamp order
/// identical to lock-acquisition order — a hit that reaches the lock after
/// a racing insert can never stamp its entry as older than that insert —
/// and removes the one cache line every shard used to contend on.
struct ShardState<V> {
    map: HashMap<CacheKey, Entry<V>, FxBuildHasher>,
    clock: u64,
    /// Lifetime evictions from this shard (the shard slice of the
    /// cache-wide `evictions` atomic; kept under the shard lock, so it
    /// needs no atomic of its own).
    evictions: u64,
}

impl<V> ShardState<V> {
    fn tick(&mut self) -> u64 {
        let stamp = self.clock;
        self.clock += 1;
        stamp
    }
}

/// One independently-locked slice of the key space.
type Shard<V> = Mutex<ShardState<V>>;

/// A sharded, bounded, content-addressed map from [`CacheKey`] to cached
/// artifacts (see the [module docs](self)).
pub struct ScheduleCache<V> {
    shards: Box<[Shard<V>]>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> ScheduleCache<V> {
    /// A cache holding at most `capacity` entries, sharded for `threads`
    /// concurrent participants. The shard count is always rounded up to a
    /// power of two (at least `4 * threads`, so pool-wide batch jobs
    /// rarely meet on a lock) — the shard selector masks the key's low
    /// bits and would silently skew toward low shards otherwise.
    ///
    /// # Panics
    ///
    /// Panics on `capacity == 0`: a cache that can hold nothing would turn
    /// every insert into an immediate eviction, which no caller ever
    /// wants — misconfiguration should fail loudly, not thrash silently.
    #[must_use]
    pub fn with_capacity_and_shards(capacity: usize, threads: usize) -> Self {
        assert!(
            capacity > 0,
            "a ScheduleCache needs a nonzero capacity (got 0)"
        );
        let shards = (4 * threads.max(1)).next_power_of_two();
        assert!(shards.is_power_of_two(), "shard selector masks low bits");
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ShardState {
                        map: HashMap::with_hasher(FxBuildHasher),
                        clock: 0,
                        evictions: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache holding at most `capacity` entries, sharded for the
    /// machine's available parallelism.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self::with_capacity_and_shards(capacity, threads)
    }

    fn shard_index(&self, key: &CacheKey) -> usize {
        // Shard count is a power of two; the key's low bits select.
        (key.lo as usize) & (self.shards.len() - 1)
    }

    /// Looks `key` up, refreshing its recency on a hit. Counts one hit or
    /// one miss.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<V>
    where
        V: Clone,
    {
        let index = self.shard_index(key);
        let mut shard = self.shards[index].lock().expect("cache shard lock");
        let stamp = shard.tick();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                mvp_trace::counter_handle!("schedcache.hits", Runtime).incr();
                mvp_trace::instant!("schedcache.hit", shard = index);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                mvp_trace::counter_handle!("schedcache.misses", Runtime).incr();
                mvp_trace::instant!("schedcache.miss", shard = index);
                None
            }
        }
    }

    /// Stores `value` under `key`, replacing any existing entry; evicts the
    /// shard's least-recently-touched entry when the shard is full.
    pub fn insert(&self, key: CacheKey, value: V) {
        let index = self.shard_index(&key);
        let mut shard = self.shards[index].lock().expect("cache shard lock");
        let stamp = shard.tick();
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.value = value;
            entry.stamp = stamp;
            return;
        }
        if shard.map.len() >= self.per_shard_capacity {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
                shard.evictions += 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                mvp_trace::counter_handle!("schedcache.evictions", Runtime).incr();
                mvp_trace::instant!("schedcache.evict", shard = index);
            }
        }
        shard.map.insert(key, Entry { value, stamp });
    }

    /// Number of entries currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// Whether the cache currently stores nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters keep their lifetime values).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("cache shard lock").map.clear();
        }
    }

    /// Per-shard occupancy and lifetime evictions, in shard-index order.
    /// The entry counts sum to [`len`](Self::len) and the evictions to
    /// [`stats`](Self::stats)`().evictions` (each taken per shard, so a
    /// concurrent writer can skew the totals slightly — like `len`).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard lock");
                ShardStats {
                    entries: shard.map.len(),
                    evictions: shard.evictions,
                }
            })
            .collect()
    }

    /// Lifetime counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.per_shard_capacity * self.shards.len(),
            shards: self.shards.len(),
        }
    }
}

impl<V> Default for ScheduleCache<V> {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl<V> fmt::Debug for ScheduleCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduleCache")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey {
            lo: i,
            hi: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache: ScheduleCache<u32> = ScheduleCache::with_capacity_and_shards(64, 2);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), 10);
        assert_eq!(cache.get(&key(1)), Some(10));
        assert_eq!(cache.get(&key(1)), Some(10));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 1, 0));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.entries, 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn inserting_an_existing_key_replaces_without_evicting() {
        let cache: ScheduleCache<u32> = ScheduleCache::with_capacity_and_shards(8, 1);
        cache.insert(key(1), 10);
        cache.insert(key(1), 20);
        assert_eq!(cache.get(&key(1)), Some(20));
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn full_shards_evict_the_least_recently_touched_entry() {
        // 1 thread -> 4 shards; capacity 4 -> 1 entry per shard. Keys with
        // equal low bits land in the same shard.
        let cache: ScheduleCache<u32> = ScheduleCache::with_capacity_and_shards(4, 1);
        assert_eq!(cache.stats().shards, 4);
        let a = CacheKey { lo: 0, hi: 1 };
        let b = CacheKey { lo: 4, hi: 2 }; // same shard as `a` (lo & 3 == 0)
        cache.insert(a, 1);
        cache.insert(b, 2);
        assert_eq!(cache.stats().evictions, 1, "shard held only one entry");
        assert!(cache.get(&a).is_none(), "oldest entry was evicted");
        assert_eq!(cache.get(&b), Some(2));

        // Touching an entry protects it: insert a, touch a, insert b again.
        let cache: ScheduleCache<u32> = ScheduleCache::with_capacity_and_shards(8, 1);
        assert_eq!(cache.stats().shards, 4);
        let c = CacheKey { lo: 8, hi: 3 }; // same shard again, capacity 2
        cache.insert(a, 1);
        cache.insert(b, 2);
        assert_eq!(cache.get(&a), Some(1)); // refresh a; b is now LRU
        cache.insert(c, 3);
        assert_eq!(cache.get(&a), Some(1));
        assert!(cache.get(&b).is_none(), "LRU entry b was the victim");
        assert_eq!(cache.get(&c), Some(3));
    }

    #[test]
    #[should_panic(expected = "nonzero capacity")]
    fn zero_capacity_is_rejected() {
        let _: ScheduleCache<u32> = ScheduleCache::with_capacity_and_shards(0, 1);
    }

    #[test]
    fn shard_counts_are_always_powers_of_two() {
        // The shard selector masks the key's low bits, so a non-power-of-two
        // count would leave high shards unreachable and skew the rest.
        for threads in [1, 2, 3, 5, 7, 12, 100] {
            let cache: ScheduleCache<u32> = ScheduleCache::with_capacity_and_shards(64, threads);
            let stats = cache.stats();
            assert!(stats.shards.is_power_of_two(), "threads={threads}");
            assert!(stats.shards >= 4 * threads, "threads={threads}");
            assert!(stats.capacity >= 64, "threads={threads}");
        }
    }

    #[test]
    fn contended_evictions_stay_bounded_and_accounted() {
        // Hammer ONE shard from 8 threads with far more distinct keys than
        // it can hold, interleaving hits on a shared hot key. Whatever the
        // interleaving: the shard never exceeds its capacity, and every
        // new-key insert into the full shard evicts exactly one entry, so
        // the lifetime ledger `inserted = evicted + resident` must balance.
        // (This is the regression test for the per-shard LRU clock: stamps
        // are taken inside the shard's critical section, so concurrent
        // threads can no longer interleave stale stamps past each other.)
        let cache: std::sync::Arc<ScheduleCache<u64>> =
            std::sync::Arc::new(ScheduleCache::with_capacity_and_shards(16, 1));
        let shards = cache.stats().shards as u64;
        let per_shard = 16 / shards as usize;
        let hot = CacheKey { lo: 0, hi: 0 };
        cache.insert(hot, u64::MAX);
        const KEYS_PER_THREAD: u64 = 200;
        std::thread::scope(|scope| {
            for t in 1..=8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..KEYS_PER_THREAD {
                        // lo multiples of the shard count all select shard 0.
                        let k = CacheKey {
                            lo: (t * KEYS_PER_THREAD + i) * shards,
                            hi: t,
                        };
                        cache.insert(k, i);
                        let _ = cache.get(&hot);
                        let _ = cache.get(&k);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(
            stats.entries <= per_shard,
            "shard 0 holds {} > {per_shard} entries",
            stats.entries
        );
        let inserted = 1 + 8 * KEYS_PER_THREAD; // hot + every thread's keys, all distinct
        assert_eq!(stats.evictions, inserted - stats.entries as u64);
        assert_eq!(stats.hits + stats.misses, 2 * 8 * KEYS_PER_THREAD);
    }

    #[test]
    fn shard_stats_slice_the_cache_wide_ledger() {
        // 1 thread -> 4 shards, 1 entry each; keys with lo & 3 == 0 all
        // land in shard 0, so the second insert there evicts the first.
        let cache: ScheduleCache<u32> = ScheduleCache::with_capacity_and_shards(4, 1);
        cache.insert(CacheKey { lo: 0, hi: 1 }, 1);
        cache.insert(CacheKey { lo: 4, hi: 2 }, 2);
        cache.insert(CacheKey { lo: 1, hi: 3 }, 3);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(
            per_shard[0],
            ShardStats {
                entries: 1,
                evictions: 1
            }
        );
        assert_eq!(
            per_shard[1],
            ShardStats {
                entries: 1,
                evictions: 0
            }
        );
        let total_entries: usize = per_shard.iter().map(|s| s.entries).sum();
        let total_evictions: u64 = per_shard.iter().map(|s| s.evictions).sum();
        assert_eq!(total_entries, cache.len());
        assert_eq!(total_evictions, cache.stats().evictions);
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let cache: ScheduleCache<u32> = ScheduleCache::with_capacity(16);
        cache.insert(key(1), 1);
        assert_eq!(cache.get(&key(1)), Some(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn concurrent_use_is_safe_and_counts_add_up() {
        let cache: std::sync::Arc<ScheduleCache<u64>> =
            std::sync::Arc::new(ScheduleCache::with_capacity_and_shards(1024, 8));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = key(t * 1000 + i);
                        assert!(cache.get(&k).is_none());
                        cache.insert(k, i);
                        assert_eq!(cache.get(&k), Some(i));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits, 800);
        assert_eq!(stats.misses, 800);
        assert_eq!(stats.entries, 800);
    }
}
