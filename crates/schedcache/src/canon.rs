//! Canonical DDG hashing: relabeling-invariant keys plus the permutation
//! that translates cached artifacts between isomorphic loops.
//!
//! Two loops that differ only in *names* (of ops, arrays, induction
//! variables) or in the *numbering* of their operations describe the same
//! scheduling problem, and a content-addressed cache should treat them as
//! one entry. [`canonicalize`] computes:
//!
//! * a canonical ordering of the operations via **Weisfeiler–Leman colour
//!   refinement**: every op starts with a colour hashed from its local
//!   signature (op kind + memory-reference shape), then repeatedly absorbs
//!   the sorted colour multisets of its dependence neighbourhood (edge kind,
//!   distance, direction included) until the colour partition stops
//!   refining. Sorting ops by `(colour, original index)` yields the
//!   canonical order — for *identical* loops the same order on both sides,
//!   so cached artifacts round-trip exactly;
//! * the loop's structural key, fed into a [`KeyHasher`] **in canonical
//!   order**: the key hashes the full canonical description (not just the
//!   colour multiset), so equal keys mean equal canonical forms;
//! * the permutation ([`CanonicalLoop::to_canon`] /
//!   [`CanonicalLoop::from_canon`]) with which the pipeline translates
//!   schedules into and out of canonical op-id space.
//!
//! WL refinement is a (complete in practice, incomplete in theory) graph
//! canonicalization: ops that WL cannot distinguish are tie-broken by
//! original index, so two differently-numbered automorphic-looking loops
//! could in principle canonicalize differently and *miss* — never the wrong
//! hit. Names never enter the hash; addresses, sizes, strides and trip
//! counts do (they change scheduling and simulation results).

use crate::fx::KeyHasher;
use mvp_ir::{EdgeKind, Loop, OpId, OpKind};
use mvp_machine::{BusConfig, BusCount, FuKind, MachineConfig};

/// The canonical form of one loop: its structural key plus the permutation
/// between original and canonical op numbering.
#[derive(Debug, Clone)]
pub struct CanonicalLoop {
    /// Key accumulator pre-fed with the canonical structural description of
    /// the loop (callers continue feeding machine + scheduler + options).
    structure: KeyHasher,
    /// `to_canon[original_index] = canonical_index`.
    pub to_canon: Vec<usize>,
    /// `from_canon[canonical_index] = original_index` (inverse of
    /// [`to_canon`](CanonicalLoop::to_canon)).
    pub from_canon: Vec<usize>,
}

impl CanonicalLoop {
    /// A [`KeyHasher`] already fed with the loop's canonical structure;
    /// feed the machine ([`hash_machine`]) and scheduler options into it,
    /// then [`finish`](KeyHasher::finish) it into the cache key.
    #[must_use]
    pub fn key_hasher(&self) -> KeyHasher {
        self.structure.clone()
    }
}

/// Stable tag for an op kind (independent of enum layout).
fn op_kind_tag(kind: OpKind) -> u64 {
    match kind {
        OpKind::IntOp => 1,
        OpKind::FpOp => 2,
        OpKind::Load => 3,
        OpKind::Store => 4,
    }
}

/// Stable tag for an edge kind.
fn edge_kind_tag(kind: EdgeKind) -> u64 {
    match kind {
        EdgeKind::Data => 1,
        EdgeKind::Memory => 2,
    }
}

/// Quick FxHash fold of a word sequence (for colour signatures).
fn fold(seed: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = crate::fx::FxHasher::with_seed(seed);
    use std::hash::Hasher;
    for w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// The local (name-free) signature of one operation: kind plus, for memory
/// ops, the full affine reference shape and the referenced array's
/// placement (base addresses change cache behaviour, so they are part of
/// the content address).
fn op_signature(l: &Loop, op: OpId) -> u64 {
    let mut words: Vec<u64> = vec![op_kind_tag(l.op(op).kind)];
    if let Some(r) = l.memory_ref_of(op) {
        let array = l.array(r.array);
        words.push(array.base_address);
        words.push(array.size_bytes);
        words.push(r.offset as u64);
        words.push(u64::from(r.element_bytes));
        words.push(r.strides.len() as u64);
        words.extend(r.strides.iter().map(|&s| s as u64));
    }
    fold(0x0b5e_7a71_0e5e_ed00, words)
}

/// Runs Weisfeiler–Leman colour refinement and returns the canonical form
/// of `l`: a structural key invariant under op/array/dimension renaming and
/// op re-numbering, plus the canonical permutation (see the [module
/// docs](self)).
#[must_use]
pub fn canonicalize(l: &Loop) -> CanonicalLoop {
    let n = l.num_ops();
    let mut colors: Vec<u64> = l.op_ids().map(|op| op_signature(l, op)).collect();

    // Refine until the partition stops getting finer (≤ n rounds, tiny in
    // practice: loop bodies here are tens of ops).
    let mut distinct = count_distinct(&colors);
    loop {
        let next: Vec<u64> = l
            .op_ids()
            .map(|op| {
                let mut preds: Vec<u64> = l
                    .preds(op)
                    .map(|e| {
                        fold(
                            0x11ed_ce5e_ed11_0001,
                            [
                                colors[e.src.index()],
                                edge_kind_tag(e.kind),
                                u64::from(e.distance),
                            ],
                        )
                    })
                    .collect();
                let mut succs: Vec<u64> = l
                    .succs(op)
                    .map(|e| {
                        fold(
                            0x11ed_ce5e_ed11_0002,
                            [
                                colors[e.dst.index()],
                                edge_kind_tag(e.kind),
                                u64::from(e.distance),
                            ],
                        )
                    })
                    .collect();
                preds.sort_unstable();
                succs.sort_unstable();
                fold(
                    colors[op.index()],
                    preds.into_iter().chain([u64::MAX]).chain(succs),
                )
            })
            .collect();
        let next_distinct = count_distinct(&next);
        colors = next;
        if next_distinct <= distinct {
            break;
        }
        distinct = next_distinct;
    }

    // Canonical order: by (colour, original index). The original-index
    // tie-break keeps the permutation deterministic, and identical loops on
    // both cache sides derive identical permutations, so artifact
    // translation round-trips exactly.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (colors[i], i));
    let from_canon = order;
    let mut to_canon = vec![0usize; n];
    for (canon, &orig) in from_canon.iter().enumerate() {
        to_canon[orig] = canon;
    }

    // Feed the *full canonical description* — not just colour hashes — so
    // equal keys mean equal canonical forms.
    let mut k = KeyHasher::new();
    k.usize(n);
    k.usize(l.nest().num_dims());
    for dim in l.nest().dims() {
        k.u64(dim.trip_count);
    }
    k.u64(l.iterations());
    k.u64(l.times_executed());
    k.usize(l.arrays().len());
    for array in l.arrays() {
        k.u64(array.base_address);
        k.u64(array.size_bytes);
    }
    for &orig in &from_canon {
        let op = OpId::from_index(orig);
        k.u64(op_kind_tag(l.op(op).kind));
        match l.memory_ref_of(op) {
            None => k.bool(false),
            Some(r) => {
                k.bool(true);
                k.usize(r.array.index());
                k.i64(r.offset);
                k.u32(r.element_bytes);
                k.usize(r.strides.len());
                for &s in &r.strides {
                    k.i64(s);
                }
            }
        }
    }
    let mut edges: Vec<(usize, usize, u64, u32)> = l
        .edges()
        .iter()
        .map(|e| {
            (
                to_canon[e.src.index()],
                to_canon[e.dst.index()],
                edge_kind_tag(e.kind),
                e.distance,
            )
        })
        .collect();
    edges.sort_unstable();
    k.usize(edges.len());
    for (src, dst, kind, distance) in edges {
        k.usize(src);
        k.usize(dst);
        k.u64(kind);
        k.u32(distance);
    }

    CanonicalLoop {
        structure: k,
        to_canon,
        from_canon,
    }
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

fn hash_bus(k: &mut KeyHasher, bus: &BusConfig) {
    match bus.count {
        BusCount::Finite(n) => {
            k.bool(true);
            k.usize(n);
        }
        BusCount::Unbounded => k.bool(false),
    }
    k.u32(bus.latency);
}

/// Feeds the complete machine configuration into a cache key: cluster
/// count, per-cluster FU mix / register file / cache geometry, both bus
/// sets, and every operation latency. Two machines that schedule or
/// simulate differently in *any* way feed different words.
pub fn hash_machine(k: &mut KeyHasher, machine: &MachineConfig) {
    k.str(&machine.name);
    k.usize(machine.num_clusters());
    for (_, cluster) in machine.clusters() {
        for kind in FuKind::ALL {
            k.usize(cluster.fu_count(kind));
        }
        k.usize(cluster.register_file_size);
        k.u64(cluster.cache.capacity_bytes);
        k.u64(cluster.cache.block_bytes);
        k.u64(cluster.cache.associativity);
        k.usize(cluster.cache.mshr_entries);
    }
    hash_bus(k, &machine.register_buses);
    hash_bus(k, &machine.memory_buses);
    k.u32(machine.latencies.int_op);
    k.u32(machine.latencies.fp_op);
    k.u32(machine.latencies.load_hit);
    k.u32(machine.latencies.store);
    k.u32(machine.latencies.main_memory);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::ArrayRef;

    /// The motivating-example shape: two loads, a multiply, an add with a
    /// loop-carried self-dependence, a store.
    fn sample_loop(names: [&str; 5], reverse_ops: bool) -> Loop {
        let mut b = Loop::builder("sample");
        let i = b.dimension("I", 100);
        let a = b.array("A", 0x1000, 800);
        let c = b.array("C", 0x4000, 800);
        let ref_a = ArrayRef::builder(a).stride(i, 8).element_bytes(8).build();
        let ref_c = ArrayRef::builder(c).stride(i, 8).element_bytes(8).build();
        // Insertion order flips, names change — structure stays the same.
        if reverse_ops {
            let st = b.store(names[4], ref_c.clone());
            let add = b.fp_op(names[3]);
            let mul = b.fp_op(names[2]);
            let ld2 = b.load(names[1], ref_a.clone());
            let ld1 = b.load(names[0], ref_a);
            b.data_edge(ld1, mul, 0)
                .data_edge(ld2, mul, 0)
                .data_edge(mul, add, 0)
                .data_edge(add, add, 1)
                .data_edge(add, st, 0);
        } else {
            let ld1 = b.load(names[0], ref_a.clone());
            let ld2 = b.load(names[1], ref_a);
            let mul = b.fp_op(names[2]);
            let add = b.fp_op(names[3]);
            let st = b.store(names[4], ref_c);
            b.data_edge(ld1, mul, 0)
                .data_edge(ld2, mul, 0)
                .data_edge(mul, add, 0)
                .data_edge(add, add, 1)
                .data_edge(add, st, 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn permutations_are_inverse_of_each_other() {
        let l = sample_loop(["L1", "L2", "M", "A", "S"], false);
        let canon = canonicalize(&l);
        assert_eq!(canon.to_canon.len(), l.num_ops());
        for orig in 0..l.num_ops() {
            assert_eq!(canon.from_canon[canon.to_canon[orig]], orig);
        }
    }

    #[test]
    fn identical_loops_canonicalize_identically() {
        let a = canonicalize(&sample_loop(["L1", "L2", "M", "A", "S"], false));
        let b = canonicalize(&sample_loop(["L1", "L2", "M", "A", "S"], false));
        assert_eq!(a.key_hasher().finish(), b.key_hasher().finish());
        assert_eq!(a.to_canon, b.to_canon);
    }

    #[test]
    fn relabeled_isomorphic_loops_hash_equal() {
        // Different op names, reversed insertion order: same key, and the
        // permutations compose into the relabeling.
        let a = canonicalize(&sample_loop(["L1", "L2", "M", "A", "S"], false));
        let b = canonicalize(&sample_loop(["x", "y", "z", "w", "v"], true));
        assert_eq!(a.key_hasher().finish(), b.key_hasher().finish());
    }

    #[test]
    fn structural_changes_change_the_key() {
        let base = canonicalize(&sample_loop(["L1", "L2", "M", "A", "S"], false))
            .key_hasher()
            .finish();

        // Different recurrence distance.
        let mut b = Loop::builder("sample");
        let i = b.dimension("I", 100);
        let a = b.array("A", 0x1000, 800);
        let c = b.array("C", 0x4000, 800);
        let ref_a = ArrayRef::builder(a).stride(i, 8).element_bytes(8).build();
        let ref_c = ArrayRef::builder(c).stride(i, 8).element_bytes(8).build();
        let ld1 = b.load("L1", ref_a.clone());
        let ld2 = b.load("L2", ref_a);
        let mul = b.fp_op("M");
        let add = b.fp_op("A");
        let st = b.store("S", ref_c);
        b.data_edge(ld1, mul, 0)
            .data_edge(ld2, mul, 0)
            .data_edge(mul, add, 0)
            .data_edge(add, add, 2) // distance 1 -> 2
            .data_edge(add, st, 0);
        let distance = canonicalize(&b.build().unwrap()).key_hasher().finish();
        assert_ne!(base, distance);

        // Different trip count.
        let mut b2 = Loop::builder("sample");
        let i = b2.dimension("I", 101);
        let a = b2.array("A", 0x1000, 800);
        let c = b2.array("C", 0x4000, 800);
        let ref_a = ArrayRef::builder(a).stride(i, 8).element_bytes(8).build();
        let ref_c = ArrayRef::builder(c).stride(i, 8).element_bytes(8).build();
        let ld1 = b2.load("L1", ref_a.clone());
        let ld2 = b2.load("L2", ref_a);
        let mul = b2.fp_op("M");
        let add = b2.fp_op("A");
        let st = b2.store("S", ref_c);
        b2.data_edge(ld1, mul, 0)
            .data_edge(ld2, mul, 0)
            .data_edge(mul, add, 0)
            .data_edge(add, add, 1)
            .data_edge(add, st, 0);
        let trips = canonicalize(&b2.build().unwrap()).key_hasher().finish();
        assert_ne!(base, trips);
    }

    #[test]
    fn machines_feed_distinct_keys() {
        use mvp_machine::presets;
        let machines = [
            presets::unified(),
            presets::two_cluster(),
            presets::four_cluster(),
        ];
        let mut keys = Vec::new();
        for m in &machines {
            let mut k = KeyHasher::new();
            hash_machine(&mut k, m);
            keys.push(k.finish());
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), machines.len());
    }
}
