//! Sharded, content-addressed schedule cache for the persistent scheduling
//! service.
//!
//! The ROADMAP's service runtime serves the *same* loops over and over: a
//! stream of scheduling requests repeats (DDG, machine, scheduler, options)
//! tuples far more often than it introduces new ones, and every repeat today
//! pays a full modulo-scheduling solve plus a cycle-level simulation. This
//! crate turns those repeats into O(1) lookups:
//!
//! * [`fx`] — a dependency-free FxHash-style hasher ([`FxHasher`] /
//!   [`FxBuildHasher`], the multiply-xor mixer rustc uses) plus a 128-bit
//!   [`KeyHasher`] that accumulates the cache key.
//! * [`canon`] — **canonical DDG hashing**: [`canonicalize`] runs
//!   Weisfeiler–Leman colour refinement over a loop's dependence graph so
//!   the key is invariant under operation renaming and re-numbering, and
//!   returns the canonical permutation with which cached artifacts can be
//!   translated between isomorphic loops.
//! * [`cache`] — the [`ScheduleCache`] itself: power-of-two **shards** each
//!   behind its own mutex (sized to the worker pool so concurrent batch
//!   jobs rarely contend), bounded capacity with least-recently-used
//!   eviction, and lifetime hit/miss/eviction counters ([`CacheStats`]).
//!
//! The cache is generic over the stored artifact `V` — the `multivliw`
//! pipeline stores its (canonicalized) `LoopReport`s, but the crate itself
//! only depends on the IR and machine model.
//!
//! # Key anatomy
//!
//! A cache key is the 128-bit [`CacheKey`] produced by feeding one
//! [`KeyHasher`] with, in order:
//!
//! 1. the loop's **canonical structural description** (from
//!    [`canonicalize`]): op count, nest trip counts, array bases/sizes,
//!    per-op kind + memory-reference signature in canonical order, and the
//!    sorted canonical edge list — op/array/dimension *names* are excluded,
//!    so renamed or re-numbered isomorphic loops hash equal;
//! 2. the **machine configuration** (via [`hash_machine`]): per-cluster FU
//!    counts, register files, cache geometry, both bus sets, all
//!    latencies — distinct machines never share keys in practice;
//! 3. the **scheduler choice and options** (fed by the caller), so the same
//!    loop scheduled by different schedulers or thresholds occupies
//!    distinct entries.
//!
//! # Example
//!
//! ```
//! use mvp_schedcache::{canonicalize, ScheduleCache};
//!
//! let mut b = mvp_ir::Loop::builder("dot");
//! let mul = b.fp_op("MUL");
//! let add = b.fp_op("ADD");
//! b.data_edge(mul, add, 0);
//! let l = b.build().unwrap();
//!
//! let cache: ScheduleCache<String> = ScheduleCache::with_capacity(128);
//! let key = canonicalize(&l).key_hasher().finish();
//! assert!(cache.get(&key).is_none()); // cold
//! cache.insert(key, "schedule artifact".to_string());
//! assert_eq!(cache.get(&key).as_deref(), Some("schedule artifact"));
//! assert_eq!(cache.stats().hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod canon;
pub mod fx;

pub use cache::{CacheStats, ScheduleCache, ShardStats};
pub use canon::{canonicalize, hash_machine, CanonicalLoop};
pub use fx::{CacheKey, FxBuildHasher, FxHasher, KeyHasher};
