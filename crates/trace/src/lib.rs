//! Unified tracing and metrics for the scheduling service.
//!
//! Every layer of the workspace — the pipeline, the work-stealing executor,
//! the schedule cache, the branch-and-bound search, the SAT solver and the
//! portfolio race — reports through this one crate instead of ad-hoc stat
//! structs. Two facilities share it:
//!
//! * **Events and spans** ([`span()`], [`instant()`]): timestamped records with
//!   a `&'static str` name, a stable per-thread logical id and up to
//!   [`MAX_ARGS`] integer arguments. Each thread buffers its events in a
//!   thread-local ring flushed to a central sink ([`flush_thread`],
//!   [`drain`]); `mvp-bench` exports the drained events as a
//!   chrome://tracing JSON trace.
//! * **Counters** ([`counter`], [`Counter`]): named monotone `u64` values in
//!   one global metrics-registry table. A counter is either
//!   [`CounterClass::Stable`] — its value is a pure function of the work
//!   performed, byte-identical at any `MVP_THREADS` — or
//!   [`CounterClass::Runtime`] — scheduling-dependent (steals, parks, cache
//!   hits, elapsed-time accumulators). [`snapshot_csv`] serialises only the
//!   stable counters, sorted by name and timestamp-free, so the snapshot is
//!   a deterministic artifact.
//!
//! # Cost model
//!
//! Tracing is off by default. The disabled path of every span/instant/timed
//! helper is one relaxed atomic load and an early return: no clock read, no
//! allocation, no lock. [`TraceMode::Timing`] additionally reads the
//! monotonic clock around [`timed_span`] scopes and accumulates elapsed
//! nanoseconds into runtime counters (still no events, no allocation beyond
//! the one-time counter registration); [`TraceMode::Full`] records events
//! into the thread-local buffers as well.
//!
//! # Naming convention
//!
//! Span, event and counter names are dotted lowercase paths rooted at the
//! emitting layer: `layer.noun[.detail]`.
//!
//! * spans/events: `pipeline.cache.probe`, `pipeline.schedule`,
//!   `pipeline.sim`, `pipeline.gap_oracle`, `exec.batch`,
//!   `exec.worker.batch`, `exec.job`, `schedcache.hit`, `schedcache.miss`,
//!   `schedcache.evict`, `exact.probe`, `exact.ladder.search`,
//!   `exact.ladder.round`, `exact.ladder.rung`, `exact.ladder.done`,
//!   `portfolio.winner`.
//! * stable counters: `sat.decisions`, `sat.conflicts`, `sat.restarts`,
//!   `sat.learned_clauses`, `sat.atmostk.aux_vars`, `sat.assumption_probes`,
//!   `sat.kept_learned`, `sat.reencoded_clauses`, `exact.sat.cegar_rounds`,
//!   `exact.bnb.nodes`, `exact.bnb.backjumps`, `exact.bnb.dominance_cuts`,
//!   `pipeline.runs`, `pipeline.gap_oracle.runs`,
//!   `exact.ladder.speculative_probes`, `exact.ladder.cancelled_probes`,
//!   `exact.ladder.imported_clauses` (the ladder counters are stable at a
//!   fixed ladder width: rounds, commits and pool traffic are pure
//!   functions of the problem and the width, not of the thread count —
//!   though speculative *rungs* additionally tick the raw `sat.*` solver
//!   counters for work the commit loop may discard, which is why the
//!   deterministic snapshot pass pins the ladder off).
//! * runtime counters: `exec.steals`, `exec.parks`, `exec.wakes`,
//!   `exec.batches`, `schedcache.hits`, `schedcache.misses`,
//!   `schedcache.evictions`, `portfolio.sat_wins`, `portfolio.bnb_wins`,
//!   `portfolio.poison.latency_ns`, `exact.ladder.wasted_steps`
//!   (speculative search steps cancellation or the budget clamp threw
//!   away), and every `*.ns` elapsed-time accumulator
//!   (`pipeline.schedule.ns`, `pipeline.sim.ns`, `pipeline.gap_oracle.ns`,
//!   `pipeline.cache.probe.ns`).
//!
//! Integer arguments carry the payload (`ii`, `shard`, `jobs`); there are
//! deliberately no string or float payloads, which keeps events `Copy` and
//! the disabled path allocation-free.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum number of `(name, value)` arguments an event carries. Extra
/// arguments passed to [`span_with`]/[`instant_with`] are dropped.
pub const MAX_ARGS: usize = 2;

/// Capacity of each thread-local event buffer; a full buffer is flushed to
/// the central sink.
const BUFFER_CAPACITY: usize = 4096;

// ---------------------------------------------------------------------------
// Mode switch
// ---------------------------------------------------------------------------

/// Global tracing mode. The hot-path check is a single relaxed load of this
/// byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceMode {
    /// No clocks, no events, no timing accumulation (the default).
    Off = 0,
    /// [`timed_span`] scopes read the clock and accumulate elapsed
    /// nanoseconds into their runtime counters; no events are recorded.
    Timing = 1,
    /// Timing plus begin/end/instant events in the thread-local buffers.
    Full = 2,
}

static MODE: AtomicU8 = AtomicU8::new(TraceMode::Off as u8);

/// Sets the global tracing mode (typically once, at process start or at the
/// top of a bench driver).
pub fn set_mode(mode: TraceMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// The current global tracing mode.
#[must_use]
pub fn mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Timing,
        _ => TraceMode::Full,
    }
}

/// Whether timing accumulation is on (`Timing` or `Full`).
#[inline]
#[must_use]
pub fn timing_enabled() -> bool {
    MODE.load(Ordering::Relaxed) != TraceMode::Off as u8
}

/// Whether event recording is on (`Full`).
#[inline]
#[must_use]
pub fn events_enabled() -> bool {
    MODE.load(Ordering::Relaxed) == TraceMode::Full as u8
}

// ---------------------------------------------------------------------------
// Clock and thread ids
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (lazily pinned on first
/// use). Monotonic within a process; only meaningful relative to other
/// values from the same process.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's stable logical trace id (small integers assigned in
/// first-use order; the chrome-trace `tid` field).
#[must_use]
pub fn thread_id() -> u32 {
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What an [`Event`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (chrome-trace phase `B`).
    Begin,
    /// A span closed (chrome-trace phase `E`).
    End,
    /// A point event (chrome-trace phase `i`).
    Instant,
}

/// One trace record: a static name, a kind, a timestamp, the recording
/// thread and up to [`MAX_ARGS`] integer arguments. `Copy`, so buffering
/// never allocates per event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Dotted-path event name (see the crate-level naming convention).
    pub name: &'static str,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Logical id of the recording thread.
    pub tid: u32,
    arg_buf: [(&'static str, i64); MAX_ARGS],
    num_args: u8,
}

impl Event {
    /// The event's `(name, value)` arguments.
    #[must_use]
    pub fn args(&self) -> &[(&'static str, i64)] {
        &self.arg_buf[..self.num_args as usize]
    }
}

fn pack_args(args: &[(&'static str, i64)]) -> ([(&'static str, i64); MAX_ARGS], u8) {
    let mut buf = [("", 0i64); MAX_ARGS];
    let n = args.len().min(MAX_ARGS);
    buf[..n].copy_from_slice(&args[..n]);
    (buf, n as u8)
}

thread_local! {
    static BUFFER: RefCell<Vec<Event>> = const { RefCell::new(Vec::new()) };
}

static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// The sink and registry locks guard plain data with no invariants that a
/// panicked holder could have broken mid-update, so poisoning is ignored.
fn lock_ignoring_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn record(event: Event) {
    BUFFER.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.capacity() == 0 {
            buf.reserve_exact(BUFFER_CAPACITY);
        }
        buf.push(event);
        if buf.len() >= BUFFER_CAPACITY {
            lock_ignoring_poison(&SINK).append(&mut buf);
        }
    });
}

fn record_now(name: &'static str, kind: EventKind, args: &[(&'static str, i64)]) {
    let (arg_buf, num_args) = pack_args(args);
    record(Event {
        name,
        kind,
        ts_ns: now_ns(),
        tid: thread_id(),
        arg_buf,
        num_args,
    });
}

/// Flushes the calling thread's event buffer into the central sink. The
/// executor calls this at batch boundaries so parked workers never hold
/// events hostage; call it before [`drain`] on any other thread that
/// recorded events.
pub fn flush_thread() {
    BUFFER.with(|cell| {
        let mut buf = cell.borrow_mut();
        if !buf.is_empty() {
            lock_ignoring_poison(&SINK).append(&mut buf);
        }
    });
}

/// Flushes the calling thread and takes every event accumulated in the
/// central sink. Events from a given thread appear in recording order;
/// events from different threads interleave arbitrarily.
#[must_use]
pub fn drain() -> Vec<Event> {
    flush_thread();
    std::mem::take(&mut *lock_ignoring_poison(&SINK))
}

/// Records a point event with no arguments (only in [`TraceMode::Full`]).
#[inline]
pub fn instant(name: &'static str) {
    if events_enabled() {
        record_now(name, EventKind::Instant, &[]);
    }
}

/// Records a point event with integer arguments (only in
/// [`TraceMode::Full`]).
#[inline]
pub fn instant_with(name: &'static str, args: &[(&'static str, i64)]) {
    if events_enabled() {
        record_now(name, EventKind::Instant, args);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for one span: records the `End` event and/or accumulates the
/// elapsed nanoseconds when dropped. When tracing was off at construction
/// the guard is unarmed and `Drop` is a no-op.
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    emit: bool,
    acc: Option<&'static Counter>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        if let Some(acc) = self.acc {
            acc.add(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        if self.emit {
            record_now(self.name, EventKind::End, &[]);
        }
    }
}

/// An inert guard whose `Drop` does nothing: what every span constructor
/// returns when tracing is off, and what callers with their own gating
/// (e.g. a per-pipeline trace flag) use for the muted branch.
pub const fn unarmed(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: None,
        emit: false,
        acc: None,
    }
}

/// Opens a span with no arguments. In [`TraceMode::Full`] a `Begin` event is
/// recorded now and the matching `End` when the guard drops; otherwise the
/// guard is unarmed.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, &[])
}

/// Opens a span whose `Begin` event carries integer arguments.
#[inline]
pub fn span_with(name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard {
    if !events_enabled() {
        return unarmed(name);
    }
    record_now(name, EventKind::Begin, args);
    SpanGuard {
        name,
        start: Some(Instant::now()),
        emit: true,
        acc: None,
    }
}

/// Opens a span that also accumulates its elapsed nanoseconds into `acc`
/// (a [`CounterClass::Runtime`] counter, conventionally named `*.ns`). In
/// [`TraceMode::Timing`] only the accumulation happens; in
/// [`TraceMode::Full`] begin/end events are recorded as well.
#[inline]
pub fn timed_span(name: &'static str, acc: &'static Counter) -> SpanGuard {
    timed_span_with(name, acc, &[])
}

/// [`timed_span`] with `Begin`-event arguments.
#[inline]
pub fn timed_span_with(
    name: &'static str,
    acc: &'static Counter,
    args: &[(&'static str, i64)],
) -> SpanGuard {
    match mode() {
        TraceMode::Off => unarmed(name),
        TraceMode::Timing => SpanGuard {
            name,
            start: Some(Instant::now()),
            emit: false,
            acc: Some(acc),
        },
        TraceMode::Full => {
            record_now(name, EventKind::Begin, args);
            SpanGuard {
                name,
                start: Some(Instant::now()),
                emit: true,
                acc: Some(acc),
            }
        }
    }
}

/// Runs `f`, returning its result and the elapsed wall-clock nanoseconds.
/// Unlike [`timed_span`] this *always* reads the clock — it is for callers
/// that need the measurement itself (per-row bench columns), not for
/// hot-path instrumentation. In [`TraceMode::Full`] it also brackets `f`
/// with begin/end events.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, u64) {
    let emit = events_enabled();
    if emit {
        record_now(name, EventKind::Begin, &[]);
    }
    let start = Instant::now();
    let out = f();
    let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    if emit {
        record_now(name, EventKind::End, &[]);
    }
    (out, elapsed)
}

/// Opens a span with optional `key = integer` arguments:
/// `span!("exec.batch")` or `span!("exec.batch", jobs = n)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::span_with($name, &[$((stringify!($k), $v as i64)),+])
    };
}

/// Records a point event with optional `key = integer` arguments:
/// `instant!("schedcache.hit", shard = s)`.
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        $crate::instant($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::instant_with($name, &[$((stringify!($k), $v as i64)),+])
    };
}

/// Expands to a `&'static Counter` cached in a per-call-site `OnceLock`, so
/// hot paths pay one atomic load instead of a registry lock:
/// `counter_handle!("exec.steals", Runtime).incr()`.
#[macro_export]
macro_rules! counter_handle {
    ($name:expr, $class:ident) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name, $crate::CounterClass::$class))
    }};
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Determinism class of a counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterClass {
    /// A pure function of the work performed: byte-identical at any
    /// executor width. Only stable counters enter the deterministic
    /// [`snapshot_csv`] artifact.
    Stable,
    /// Scheduling-dependent (steals, parks, cache traffic, elapsed-time
    /// accumulators): excluded from the deterministic snapshot.
    Runtime,
}

impl CounterClass {
    /// Stable CSV label: `stable` or `runtime`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CounterClass::Stable => "stable",
            CounterClass::Runtime => "runtime",
        }
    }
}

/// A named monotone `u64` metric. Handles are `&'static` — obtain one with
/// [`counter`] and cache it in a `OnceLock` at the call site.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn zero(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

type Registry = BTreeMap<&'static str, (CounterClass, &'static Counter)>;

static REGISTRY: Mutex<Registry> = Mutex::new(BTreeMap::new());

/// Returns the registered counter named `name`, creating it with the given
/// class on first use. Registration takes the registry lock — cache the
/// returned handle in a `static OnceLock` at hot call sites.
///
/// # Panics
///
/// Panics if `name` was previously registered with a different class (a
/// counter's determinism class is part of its identity).
pub fn counter(name: &'static str, class: CounterClass) -> &'static Counter {
    let mut reg = lock_ignoring_poison(&REGISTRY);
    if let Some(&(existing, c)) = reg.get(name) {
        assert!(
            existing == class,
            "counter {name} registered as {} and re-requested as {}",
            existing.label(),
            class.label(),
        );
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        value: AtomicU64::new(0),
    }));
    reg.insert(name, (class, c));
    c
}

/// One row of a registry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: &'static str,
    /// Determinism class.
    pub class: CounterClass,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshots every registered counter, sorted by name.
#[must_use]
pub fn snapshot() -> Vec<CounterSnapshot> {
    lock_ignoring_poison(&REGISTRY)
        .iter()
        .map(|(&name, &(class, c))| CounterSnapshot {
            name,
            class,
            value: c.get(),
        })
        .collect()
}

/// The deterministic metrics artifact: `counter,value` rows over the
/// [`CounterClass::Stable`] counters only, sorted by name, timestamp-free.
/// Byte-identical at any `MVP_THREADS` for the same work.
#[must_use]
pub fn snapshot_csv() -> String {
    let mut out = String::from("counter,value\n");
    for row in snapshot() {
        if row.class == CounterClass::Stable {
            out.push_str(&format!("{},{}\n", row.name, row.value));
        }
    }
    out
}

/// Every counter with its class: `counter,class,value` rows sorted by name.
/// Runtime rows vary run to run; use [`snapshot_csv`] for the deterministic
/// artifact.
#[must_use]
pub fn snapshot_csv_full() -> String {
    let mut out = String::from("counter,class,value\n");
    for row in snapshot() {
        out.push_str(&format!(
            "{},{},{}\n",
            row.name,
            row.class.label(),
            row.value
        ));
    }
    out
}

/// Zeroes every registered counter (registrations persist). For tests and
/// multi-pass bench drivers.
pub fn reset_counters() {
    for (_, c) in lock_ignoring_poison(&REGISTRY).values() {
        c.zero();
    }
}

/// Resets counters and discards buffered events: the calling thread's
/// buffer and the central sink. Other threads' unflushed buffers are not
/// reachable from here — have them hit a flush point (an executor batch
/// boundary) first.
pub fn reset() {
    reset_counters();
    BUFFER.with(|cell| cell.borrow_mut().clear());
    lock_ignoring_poison(&SINK).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global mode/registry/sink are process-wide; every test that
    /// touches them serialises on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = locked();
        set_mode(TraceMode::Off);
        reset();
        {
            let _s = span!("test.off", k = 3);
            instant!("test.off.instant");
            let _t = timed_span("test.off.timed", counter("test.ns", CounterClass::Runtime));
        }
        assert!(drain().is_empty());
        assert_eq!(counter("test.ns", CounterClass::Runtime).get(), 0);
    }

    #[test]
    fn full_mode_produces_balanced_spans_with_args() {
        let _g = locked();
        set_mode(TraceMode::Full);
        reset();
        {
            let _outer = span!("test.outer", jobs = 2);
            let _inner = span!("test.inner");
            instant!("test.mark", shard = 5);
        }
        set_mode(TraceMode::Off);
        let events = drain();
        let begins = events.iter().filter(|e| e.kind == EventKind::Begin).count();
        let ends = events.iter().filter(|e| e.kind == EventKind::End).count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        let mark = events
            .iter()
            .find(|e| e.name == "test.mark")
            .expect("instant recorded");
        assert_eq!(mark.kind, EventKind::Instant);
        assert_eq!(mark.args(), &[("shard", 5)]);
        // Timestamps are monotone in recording order on one thread.
        let tid = events[0].tid;
        assert!(events.iter().all(|e| e.tid == tid));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn timing_mode_accumulates_without_events() {
        let _g = locked();
        set_mode(TraceMode::Timing);
        reset();
        let acc = counter("test.timing.ns", CounterClass::Runtime);
        {
            let _t = timed_span("test.timing", acc);
            std::hint::black_box(0u64);
        }
        set_mode(TraceMode::Off);
        assert!(drain().is_empty(), "Timing mode records no events");
        // The scope may be faster than the clock granularity, but the timed
        // helper below is guaranteed to measure something on a sleep.
        let ((), slept) = timed("test.timing.sleep", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(slept >= 1_000_000);
    }

    #[test]
    fn counters_register_once_and_snapshot_sorted() {
        let _g = locked();
        reset_counters();
        let a = counter("test.z.stable", CounterClass::Stable);
        let b = counter("test.a.stable", CounterClass::Stable);
        let r = counter("test.m.runtime", CounterClass::Runtime);
        a.add(2);
        b.incr();
        r.add(7);
        assert!(std::ptr::eq(
            a,
            counter("test.z.stable", CounterClass::Stable)
        ));
        let csv = snapshot_csv();
        let a_pos = csv.find("test.z.stable,2").expect("stable counter present");
        let b_pos = csv.find("test.a.stable,1").expect("stable counter present");
        assert!(b_pos < a_pos, "snapshot is sorted by name");
        assert!(!csv.contains("test.m.runtime"), "runtime excluded");
        assert!(snapshot_csv_full().contains("test.m.runtime,runtime,7"));
        reset_counters();
        assert_eq!(a.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as stable")]
    fn class_mismatch_panics() {
        let _ = counter("test.mismatch", CounterClass::Stable);
        let _ = counter("test.mismatch", CounterClass::Runtime);
    }

    #[test]
    fn excess_args_are_truncated() {
        let _g = locked();
        set_mode(TraceMode::Full);
        reset();
        instant_with("test.many", &[("a", 1), ("b", 2), ("c", 3)]);
        set_mode(TraceMode::Off);
        let events = drain();
        assert_eq!(events[0].args(), &[("a", 1), ("b", 2)]);
    }

    #[test]
    fn cross_thread_events_flush_at_thread_boundaries() {
        let _g = locked();
        set_mode(TraceMode::Full);
        reset();
        let handle = std::thread::spawn(|| {
            instant!("test.worker.mark");
            flush_thread();
        });
        handle.join().unwrap();
        instant!("test.main.mark");
        set_mode(TraceMode::Off);
        let events = drain();
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(events.len(), 2);
        assert_eq!(tids.len(), 2, "two distinct logical thread ids");
    }
}
