//! Disabled-path guard: with tracing off, span/instant macros record zero
//! events and perform zero heap allocations. Runs as its own integration
//! test binary so the counting global allocator and the global trace state
//! see no interference from other tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_tracing_allocates_nothing_and_records_nothing() {
    assert_eq!(mvp_trace::mode(), mvp_trace::TraceMode::Off);
    // Pre-register the timing counter and touch the thread id outside the
    // measured window: both are one-time setup costs, not per-span costs.
    let acc = mvp_trace::counter("test.disabled.ns", mvp_trace::CounterClass::Runtime);
    let _ = mvp_trace::thread_id();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000i64 {
        let _span = mvp_trace::span!("test.disabled.span", iteration = i);
        mvp_trace::instant!("test.disabled.instant", iteration = i);
        let _timed = mvp_trace::timed_span("test.disabled.timed", acc);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled span/instant paths must not allocate"
    );
    assert_eq!(acc.get(), 0, "disabled timed spans accumulate nothing");
    assert!(
        mvp_trace::drain().is_empty(),
        "disabled tracing records no events"
    );
}
