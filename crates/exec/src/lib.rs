//! The persistent work-stealing execution core shared by every heavy path
//! of the workspace.
//!
//! All the batch-shaped work in this repository — per-loop pipeline runs,
//! optimality-gap oracle calls, figure grid sweeps, seeded fuzz cases — is
//! embarrassingly parallel but badly balanced: a tomcatv kernel or a
//! million-node exact probe can take orders of magnitude longer than its
//! batch neighbours. [`Executor::map`] runs such a batch on a pool of worker
//! threads with **per-worker deques and work stealing**: each participant
//! starts with a contiguous block of job indices, pops jobs from the front
//! of its own deque, and when it runs dry steals from the *back* of the
//! fullest victim, so stragglers are split instead of serialising the run.
//!
//! # The persistent pool
//!
//! Workers are spawned **once per executor** (lazily, on the first parallel
//! batch) and live for the executor's lifetime: between batches they park
//! (`std::thread::park`) instead of exiting, so a service-style caller that
//! issues thousands of `map`s — repeated [`Pipeline::run_batch`] calls, gap
//! tables, fuzz sweeps, the `serve` bin's warm passes — pays the thread
//! spawn cost exactly once. Job injection is **per-worker and lock-free**:
//! every worker owns a single-slot CAS inbox (an [`AtomicPtr`] to the
//! caller-stack batch descriptor); the calling thread publishes the batch
//! with one compare-exchange per idle worker, wakes it with `unpark`, and
//! then *participates in the batch itself* (it owns deque 0), so a batch
//! never waits on a wake-up to make progress. On completion the caller
//! retracts the inboxes no worker claimed and waits for the claimed ones to
//! detach, which is what makes lending the caller's stack to `'static`
//! worker threads sound. Dropping the last handle to the pool shuts the
//! workers down and joins them.
//!
//! [`Pipeline::run_batch`]: https://docs.rs/multivliw
//!
//! # Determinism
//!
//! The collect side is **ordered**: every job writes its result under its
//! original index, and `map` returns `Vec<R>` in input order no matter how
//! the jobs interleaved across workers. A batch of *pure* jobs therefore
//! produces bit-identical output for any thread count — `MVP_THREADS=1` and
//! `MVP_THREADS=8` runs of the pipeline, the bench drivers and the fuzz
//! harness emit byte-identical reports and CSVs (this is pinned by
//! `tests/executor_determinism.rs` at the workspace root).
//!
//! # Panic propagation
//!
//! A panicking job never deadlocks or poisons the batch: the batch runs to
//! completion regardless, and the panic payload of the smallest-indexed
//! panicking job — a property of the batch, not of the scheduling — is
//! re-raised on the caller's thread once every claimed worker has detached.
//! Compared to a sequential `for` loop the only difference is that the jobs
//! after the failing one have also run. The pool itself is unaffected: the
//! workers return to their park loop and the next batch runs normally.
//!
//! # Nesting
//!
//! `map` called from *inside* a batch participant runs inline on that
//! thread (sequentially): a figure sweep parallelised over grid points
//! would otherwise multiply its thread count by every suite run it
//! contains. Balance still comes from the outermost batch, which is always
//! the widest.
//!
//! # Sizing
//!
//! [`Executor::from_env`] honours the `MVP_THREADS` environment variable
//! (clamped to at least 1) and falls back to
//! [`std::thread::available_parallelism`]. [`Executor::global`] builds one
//! such executor per process, lazily, and is what the pipeline uses unless
//! an explicit executor is configured. An executor of `n` threads spawns
//! `n - 1` persistent workers; the calling thread is the `n`-th
//! participant.
//!
//! # Observability
//!
//! Batches report through [`mvp_trace`]: an `exec.batch` span on the
//! caller, an `exec.worker.batch` span per participating worker, an
//! `exec.job` span per job, and the runtime counters `exec.batches`,
//! `exec.steals`, `exec.parks` and `exec.wakes`. Workers flush their
//! thread-local event buffers at every batch boundary, so a parked pool
//! never holds events back from [`mvp_trace::drain`].
//!
//! # Example
//!
//! ```
//! use mvp_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! assert_eq!(exec.spawned_workers(), 3); // spawned once, parked between maps
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable overriding the worker count of
/// [`Executor::from_env`] (and therefore of [`Executor::global`]).
pub const THREADS_ENV_VAR: &str = "MVP_THREADS";

thread_local! {
    /// Whether the current thread is participating in a batch (a pool
    /// worker, or the caller while it drains its own batch; see the module
    /// docs on nesting).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent work-stealing thread pool with an ordered-collect API.
///
/// See the [module documentation](self) for the design; the behavioural
/// contract in one line: [`map`](Executor::map) over pure jobs is
/// observationally identical to `items.iter().map(f).collect()` — same
/// order, same panics — only faster, and the worker threads it runs on are
/// spawned once and reused across every batch. Cloning an `Executor`
/// shares its pool.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
    pool: Arc<Pool>,
}

impl Executor {
    /// Creates an executor that runs batches on `threads` participants
    /// (clamped to at least 1; 1 means strictly sequential, in-place
    /// execution). The `threads - 1` persistent workers are spawned lazily
    /// on the first parallel batch.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            threads,
            pool: Arc::new(Pool::new(threads)),
        }
    }

    /// Creates an executor sized from the environment: the `MVP_THREADS`
    /// variable when set to a positive integer, the machine's available
    /// parallelism otherwise.
    #[must_use]
    pub fn from_env() -> Self {
        let configured = std::env::var(THREADS_ENV_VAR).ok();
        Self::new(Self::parse_threads(configured.as_deref()))
    }

    /// The worker count `from_env` derives from an `MVP_THREADS` value
    /// (`None` = variable unset). Non-numeric values fall back to the
    /// available parallelism, like an unset variable. `0` parses but names
    /// no usable width — a zero-thread executor cannot run anything — so it
    /// falls back too, with a warning on stderr: silently treating an
    /// explicit `MVP_THREADS=0` as "all cores" is the exact opposite of
    /// what a user throttling a shared box asked for.
    #[must_use]
    pub fn parse_threads(env_value: Option<&str>) -> usize {
        let fallback =
            || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        match env_value.map(|v| v.trim().parse::<usize>()) {
            Some(Ok(0)) => {
                let threads = fallback();
                eprintln!(
                    "warning: {THREADS_ENV_VAR}=0 names no usable width; \
                     falling back to the available parallelism ({threads})"
                );
                threads
            }
            Some(Ok(n)) => n,
            Some(Err(_)) | None => fallback(),
        }
    }

    /// The process-wide shared executor (sized by [`Executor::from_env`]
    /// once, on first use). This is what [`multivliw`'s
    /// `Pipeline`](https://docs.rs/multivliw) and the bench drivers run on
    /// unless given an explicit executor — and because the pool is
    /// persistent, every batch in the process after the first reuses the
    /// same parked workers.
    #[must_use]
    pub fn global() -> Arc<Executor> {
        static GLOBAL: OnceLock<Arc<Executor>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Executor::from_env())))
    }

    /// Number of participants batches run on (the calling thread plus
    /// [`spawned_workers`](Executor::spawned_workers) pool workers).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of persistent worker threads the pool has spawned so far:
    /// `0` before the first parallel batch, `threads() - 1` afterwards
    /// (the calling thread is always the remaining participant).
    #[must_use]
    pub fn spawned_workers(&self) -> usize {
        self.pool.workers.get().map_or(0, Vec::len)
    }

    /// Number of parallel batches injected into the pool over its lifetime
    /// (sequential fast-path calls — 1-thread executors, trivial batches,
    /// nested maps — are not counted).
    #[must_use]
    pub fn batches_run(&self) -> u64 {
        self.pool.batches.load(Ordering::Relaxed)
    }

    /// Whether the calling thread is itself a batch participant (in which
    /// case any nested `map` runs inline; see the module docs).
    #[must_use]
    pub fn is_worker_thread() -> bool {
        IN_WORKER.with(std::cell::Cell::get)
    }

    /// Runs `f` over every item and returns the results **in input order**,
    /// regardless of how the jobs were interleaved across workers.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the smallest-indexed panicking job after the
    /// whole batch has run (deterministic for a deterministic batch; see
    /// the module docs). The pool stays usable afterwards.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// Races `items` against each other: every contender runs `run` with a
    /// shared poison flag, and a contender whose result satisfies `decided`
    /// raises the flag on completion so the rivals can abort cooperatively
    /// (the flag is advisory — `run` must poll it; nothing is pre-empted).
    ///
    /// Returns the index of the **lowest-indexed** decided contender (the
    /// race's deterministic tie-break: whenever several contenders decide,
    /// the winner is a property of the results, not of the scheduling) and
    /// *all* results, in input order — losers are not discarded, so the
    /// caller can charge every contender's work to a shared budget and
    /// cross-check rival verdicts.
    ///
    /// On a 1-thread executor the contenders run inline in input order, so
    /// contender 0 finishes (and, if it decides, poisons) before contender 1
    /// starts — a fully deterministic degenerate race.
    pub fn race<T, R, F, D>(&self, items: &[T], run: F, decided: D) -> (Option<usize>, Vec<R>)
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &AtomicBool) -> R + Sync,
        D: Fn(&R) -> bool + Sync,
    {
        let poison = AtomicBool::new(false);
        let results = self.map(items, |item| {
            let r = run(item, &poison);
            if decided(&r) {
                poison.store(true, Ordering::Relaxed);
            }
            r
        });
        let winner = results.iter().position(&decided);
        (winner, results)
    }

    /// Like [`map`](Executor::map), but the job also receives its input
    /// index (useful for seeding and labelling).
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Sequential paths: a 1-thread executor, a trivial batch, or a
        // nested call from inside a batch participant (see the module docs).
        // These still trace `exec.job` spans (deque -1: no deque was
        // involved) so a 1-thread trace shows the same per-job structure a
        // parallel one does; they are not counted as batches.
        if self.threads == 1 || items.len() <= 1 || Self::is_worker_thread() {
            return items
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    let _job = mvp_trace::span!("exec.job", job = i, deque = -1);
                    f(i, x)
                })
                .collect();
        }

        let queue = DequePool::new(items.len(), self.threads);
        let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

        // The batch always runs to completion, panic or not: draining every
        // job is what makes the re-raised panic *deterministic* (the
        // smallest-indexed panicking job of the whole batch, not of a
        // scheduling-dependent prefix). Jobs here are loop-sized, so
        // finishing a batch that is about to panic costs little.
        let runner = |deque: usize| {
            while let Some(idx) = queue.next_job(deque) {
                let _job = mvp_trace::span!("exec.job", job = idx, deque = deque);
                match catch_unwind(AssertUnwindSafe(|| f(idx, &items[idx]))) {
                    Ok(r) => *results[idx].lock().expect("result slot lock") = Some(r),
                    Err(payload) => {
                        let mut first = panicked.lock().expect("panic slot lock");
                        match &*first {
                            Some((prev, _)) if *prev <= idx => {}
                            _ => *first = Some((idx, payload)),
                        }
                    }
                }
            }
        };
        {
            let _batch = mvp_trace::span!("exec.batch", jobs = items.len(), threads = self.threads);
            self.pool.run_batch(&runner);
        }
        // The caller participated in the batch; hand its buffered events to
        // the central sink at the batch boundary (workers flush themselves).
        mvp_trace::flush_thread();

        if let Some((_, payload)) = panicked.into_inner().expect("panic slot lock") {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every job of a non-panicking batch ran")
            })
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A batch descriptor, allocated on the **calling thread's stack** for the
/// duration of one `run_batch` and published to workers through their CAS
/// inboxes.
///
/// The runner closure it points at borrows the caller's stack (items,
/// result slots, the job deques), so its lifetime is erased through a thin
/// context pointer plus a monomorphised trampoline rather than a trait
/// object. Soundness comes from the batch protocol: before `run_batch`
/// returns, the caller retracts every inbox no worker claimed and waits for
/// `detached` to reach the number of claimed inboxes, so no worker can
/// touch the descriptor (or anything it borrows) afterwards.
struct Batch {
    /// Type-erased pointer to the caller-stack runner closure.
    ctx: *const (),
    /// Monomorphised trampoline invoking the runner with a deque index.
    run: unsafe fn(*const (), usize),
    /// Number of workers that claimed this batch from their inbox and have
    /// since returned from it.
    detached: AtomicUsize,
    /// The calling thread, unparked by each detaching worker.
    caller: std::thread::Thread,
}

/// Invokes the runner closure behind `ctx`.
///
/// # Safety
///
/// `ctx` must point at a live `F` (guaranteed by the batch protocol: the
/// caller keeps the closure alive until every claimed worker detached).
unsafe fn run_trampoline<F: Fn(usize) + Sync>(ctx: *const (), deque: usize) {
    unsafe { (*ctx.cast::<F>())(deque) }
}

/// State shared between the pool handle and its `'static` worker threads.
#[derive(Debug)]
struct PoolShared {
    /// Set by `Pool::drop`; parked workers re-check it on every wake.
    shutdown: AtomicBool,
}

/// One persistent worker: its single-slot batch inbox and its join handle.
#[derive(Debug)]
struct Worker {
    /// Single-slot lock-free inbox: null when idle, otherwise a borrowed
    /// pointer to the injecting caller's stack [`Batch`].
    inbox: Arc<AtomicPtr<Batch>>,
    join: JoinHandle<()>,
}

/// The persistent parked-worker pool behind an [`Executor`] (shared by its
/// clones via `Arc`).
#[derive(Debug)]
struct Pool {
    threads: usize,
    shared: Arc<PoolShared>,
    /// Spawned lazily by the first parallel batch; `threads - 1` entries.
    workers: OnceLock<Vec<Worker>>,
    /// Lifetime count of parallel batches (introspection only).
    batches: AtomicU64,
}

impl Pool {
    fn new(threads: usize) -> Self {
        Self {
            threads,
            shared: Arc::new(PoolShared {
                shutdown: AtomicBool::new(false),
            }),
            workers: OnceLock::new(),
            batches: AtomicU64::new(0),
        }
    }

    /// The persistent workers, spawned on first use.
    fn spawned(&self) -> &[Worker] {
        self.workers.get_or_init(|| {
            (0..self.threads - 1)
                .map(|index| {
                    let inbox: Arc<AtomicPtr<Batch>> = Arc::new(AtomicPtr::new(ptr::null_mut()));
                    let worker_inbox = Arc::clone(&inbox);
                    let shared = Arc::clone(&self.shared);
                    let join = std::thread::Builder::new()
                        .name(format!("mvp-exec-{index}"))
                        .spawn(move || worker_main(index, &worker_inbox, &shared))
                        .expect("spawn executor worker thread");
                    Worker { inbox, join }
                })
                .collect()
        })
    }

    /// Runs one batch: publishes it to every idle worker's inbox (one CAS +
    /// `unpark` each), participates in the drain on deque 0, then retracts
    /// the inboxes no worker claimed and waits for the claimed workers to
    /// detach. On return no thread other than the caller references the
    /// batch, which is what lets `map_indexed` lend its stack frame to the
    /// `'static` workers.
    fn run_batch<F: Fn(usize) + Sync>(&self, runner: &F) {
        let workers = self.spawned();
        let batch = Batch {
            ctx: (runner as *const F).cast(),
            run: run_trampoline::<F>,
            detached: AtomicUsize::new(0),
            caller: std::thread::current(),
        };
        let batch_ptr: *mut Batch = (&batch as *const Batch).cast_mut();

        // Inject into every idle worker. A worker still draining an earlier
        // batch (a concurrent `map` on a clone of this executor) keeps its
        // old pointer and is skipped; the caller's own participation below
        // guarantees the batch drains regardless of how many workers join.
        let mut injected: Vec<&Worker> = Vec::with_capacity(workers.len());
        for worker in workers {
            let won = worker
                .inbox
                .compare_exchange(
                    ptr::null_mut(),
                    batch_ptr,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok();
            if won {
                injected.push(worker);
                worker.join.thread().unpark();
                mvp_trace::counter_handle!("exec.wakes", Runtime).incr();
            }
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        mvp_trace::counter_handle!("exec.batches", Runtime).incr();

        // The caller is the batch's first participant (deque 0); nested
        // maps issued by its jobs run inline, like on any worker.
        IN_WORKER.with(|w| w.set(true));
        runner(0);
        IN_WORKER.with(|w| w.set(false));

        // Retract every inbox that still holds this batch; a failed CAS
        // means the worker swapped the pointer out and *will* bump
        // `detached` once it returns from the (already drained) batch.
        let mut claimed = 0usize;
        for worker in injected {
            let retracted = worker
                .inbox
                .compare_exchange(
                    batch_ptr,
                    ptr::null_mut(),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok();
            if !retracted {
                claimed += 1;
            }
        }
        while batch.detached.load(Ordering::Acquire) < claimed {
            // Claimed workers are at worst finishing their last job; each
            // one unparks us right after detaching.
            std::thread::park();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(workers) = self.workers.take() {
            for worker in &workers {
                worker.join.thread().unpark();
            }
            for worker in workers {
                let _ = worker.join.join();
            }
        }
    }
}

/// The persistent worker loop: claim whatever batch is in the inbox, drain
/// it, detach; park when idle; exit on shutdown.
fn worker_main(index: usize, inbox: &AtomicPtr<Batch>, shared: &PoolShared) {
    IN_WORKER.with(|w| w.set(true));
    loop {
        let batch_ptr = inbox.swap(ptr::null_mut(), Ordering::Acquire);
        if !batch_ptr.is_null() {
            // SAFETY: the injecting caller keeps the batch (and everything
            // the runner borrows) alive until this worker's `detached`
            // increment below — it cannot retract a pointer we already
            // swapped out, so it waits for us instead.
            let batch = unsafe { &*batch_ptr };
            {
                let _span = mvp_trace::span!("exec.worker.batch", worker = index);
                // SAFETY: `ctx` points at the caller's live runner closure
                // (see above); worker `index` owns deque `index + 1` (the
                // caller owns deque 0).
                unsafe { (batch.run)(batch.ctx, index + 1) };
            }
            // Flush this worker's buffered events before it parks again —
            // a parked worker's thread-local buffer is unreachable from
            // `mvp_trace::drain`.
            mvp_trace::flush_thread();
            let caller = batch.caller.clone();
            batch.detached.fetch_add(1, Ordering::Release);
            // After the increment the batch may be gone; wake the caller
            // through the cloned handle only.
            caller.unpark();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        mvp_trace::counter_handle!("exec.parks", Runtime).incr();
        std::thread::park();
    }
}

/// One deque of pending job indices per batch participant.
///
/// Participants pop their own deque from the *front* (preserving the
/// roughly input-ordered walk that keeps related jobs together) and steal
/// from the *back* of the fullest victim; halving the victim's remaining
/// work would be fancier but single-index steals are plenty at this job
/// granularity — every job here schedules or simulates a whole loop.
#[derive(Debug)]
struct DequePool {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl DequePool {
    /// Distributes `jobs` indices over `workers` deques in contiguous
    /// blocks (block `w` starts at `w * jobs / workers`).
    fn new(jobs: usize, workers: usize) -> Self {
        let deques = (0..workers)
            .map(|w| {
                let start = w * jobs / workers;
                let end = (w + 1) * jobs / workers;
                Mutex::new((start..end).collect())
            })
            .collect();
        Self { deques }
    }

    /// Next job for `worker`: its own front, else stolen from the back of
    /// the victim with the most pending jobs. `None` when every deque is
    /// empty (the batch is drained; workers then detach and re-park).
    fn next_job(&self, worker: usize) -> Option<usize> {
        if let Some(idx) = self.deques[worker].lock().expect("deque lock").pop_front() {
            return Some(idx);
        }
        loop {
            let victim = self
                .deques
                .iter()
                .enumerate()
                .filter(|(v, _)| *v != worker)
                .map(|(v, d)| (d.lock().expect("deque lock").len(), v))
                .max()?;
            match victim {
                (0, _) => return None,
                (_, v) => {
                    // The victim may have drained between the census and the
                    // steal; retry the census rather than giving up.
                    if let Some(idx) = self.deques[v].lock().expect("deque lock").pop_back() {
                        mvp_trace::counter_handle!("exec.steals", Runtime).incr();
                        return Some(idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let exec = Executor::new(threads);
            assert_eq!(exec.threads(), threads);
            assert_eq!(exec.map(&items, |&x| x * 3 + 1), expected, "{threads}");
        }
    }

    #[test]
    fn map_indexed_passes_the_input_index() {
        let items = ["a", "b", "c"];
        let out = Executor::new(2).map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_batches_run_inline() {
        let exec = Executor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.map(&empty, |&x| x).is_empty());
        assert_eq!(exec.map(&[7u32], |&x| x + 1), vec![8]);
        // Inline batches never touch the pool: no workers, no batch count.
        assert_eq!(exec.spawned_workers(), 0);
        assert_eq!(exec.batches_run(), 0);
    }

    #[test]
    fn uneven_jobs_are_stolen_not_serialised() {
        // One straggler at index 0 plus many fast jobs: with stealing, the
        // fast jobs complete on other workers while the straggler runs. We
        // can't assert wall-clock here, but we can assert every job ran
        // exactly once and from more than one thread.
        let ran = AtomicUsize::new(0);
        let threads_seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        let items: Vec<u64> = (0..64).collect();
        let out = Executor::new(4).map(&items, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            threads_seen
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert!(threads_seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn workers_spawn_once_and_persist_across_batches() {
        let exec = Executor::new(4);
        assert_eq!(exec.spawned_workers(), 0, "spawn is lazy");

        let batch_threads = |batch: u64| -> std::collections::HashSet<std::thread::ThreadId> {
            let seen = Mutex::new(std::collections::HashSet::new());
            let items: Vec<u64> = (0..128).collect();
            exec.map(&items, |&x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                x + batch
            });
            seen.into_inner().unwrap()
        };

        let first = batch_threads(0);
        assert_eq!(exec.spawned_workers(), 3, "threads - 1 persistent workers");
        assert_eq!(exec.batches_run(), 1);

        // Every later batch draws from the same parked pool: the union of
        // participant thread ids never grows past threads().
        let mut all = first;
        for batch in 1..6 {
            all.extend(batch_threads(batch));
        }
        assert_eq!(exec.spawned_workers(), 3, "no re-spawn on later batches");
        assert_eq!(exec.batches_run(), 6);
        assert!(
            all.len() <= exec.threads(),
            "batches reuse the same workers: saw {} distinct threads",
            all.len()
        );
    }

    #[test]
    fn clones_share_the_pool() {
        let exec = Executor::new(3);
        let clone = exec.clone();
        let items: Vec<u32> = (0..32).collect();
        assert_eq!(clone.map(&items, |&x| x + 1).len(), 32);
        // The clone's batch ran on the original's pool.
        assert_eq!(exec.batches_run(), 1);
        assert_eq!(exec.spawned_workers(), clone.spawned_workers());
    }

    #[test]
    fn panics_propagate_with_the_smallest_index_winning() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4).map_indexed(&[0u8; 32], |i, _| {
                if i % 2 == 1 {
                    panic!("job {i} failed");
                }
                i
            });
        }));
        let payload = result.expect_err("batch must panic");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic payload is the job's format string");
        assert_eq!(message, "job 1 failed");
    }

    #[test]
    fn nested_maps_run_inline_on_the_worker() {
        let exec = Executor::new(4);
        assert!(!Executor::is_worker_thread());
        let out = exec.map(&[10u64, 20, 30, 40], |&x| {
            assert!(Executor::is_worker_thread());
            // The nested batch must not spawn further workers.
            exec.map(&[1u64, 2, 3], |&y| {
                assert!(Executor::is_worker_thread());
                x + y
            })
        });
        assert_eq!(
            out,
            vec![
                vec![11, 12, 13],
                vec![21, 22, 23],
                vec![31, 32, 33],
                vec![41, 42, 43]
            ]
        );
        assert!(!Executor::is_worker_thread());
    }

    #[test]
    fn race_returns_the_lowest_indexed_decided_contender() {
        let exec = Executor::new(4);
        // Contenders 1 and 3 decide; the winner must be 1 regardless of
        // which thread finished first.
        let (winner, results) =
            exec.race(&[0usize, 1, 2, 3], |&i, _poison| i, |&r| r == 1 || r == 3);
        assert_eq!(winner, Some(1));
        assert_eq!(results, vec![0, 1, 2, 3], "losers are returned too");
        // Nobody decides: no winner, all results intact.
        let (winner, results) = exec.race(&[5u32, 6], |&x, _| x, |_| false);
        assert_eq!(winner, None);
        assert_eq!(results, vec![5, 6]);
    }

    #[test]
    fn race_poisons_rivals_once_decided() {
        // Contender 0 decides instantly; contender 1 spins on the flag. If
        // the decider failed to poison, this test would hang.
        let exec = Executor::new(2);
        let (winner, results) = exec.race(
            &[0u32, 1],
            |&i, poison: &AtomicBool| {
                if i == 0 {
                    return true;
                }
                while !poison.load(Ordering::Relaxed) {
                    std::thread::yield_now();
                }
                false
            },
            |&r| r,
        );
        assert_eq!(winner, Some(0));
        assert_eq!(results, vec![true, false]);
    }

    #[test]
    fn a_single_threaded_race_runs_in_input_order_and_poisons_early() {
        let exec = Executor::new(1);
        // Contender 0 decides, so contender 1 must observe the poison flag
        // already raised when it runs (the sequential degenerate race).
        let (winner, results) = exec.race(
            &[0u32, 1],
            |&i, poison: &AtomicBool| {
                if i == 0 {
                    (i, false)
                } else {
                    (i, poison.load(Ordering::Relaxed))
                }
            },
            |&(i, _)| i == 0,
        );
        assert_eq!(winner, Some(0));
        assert!(results[1].1, "the second contender saw the poison flag");
    }

    #[test]
    fn parse_threads_honours_positive_integers_only() {
        assert_eq!(Executor::parse_threads(Some("3")), 3);
        assert_eq!(Executor::parse_threads(Some(" 12 ")), 12);
        let fallback = Executor::parse_threads(None);
        assert!(fallback >= 1);
        // An explicit 0 is rejected (with a stderr warning), like junk.
        assert_eq!(Executor::parse_threads(Some("0")), fallback);
        assert_eq!(Executor::parse_threads(Some(" 0 ")), fallback);
        assert_eq!(Executor::parse_threads(Some("many")), fallback);
        assert_eq!(Executor::parse_threads(Some("")), fallback);
        // Values usize::parse rejects outright: signs, decimals, overflow.
        assert_eq!(Executor::parse_threads(Some("-4")), fallback);
        assert_eq!(Executor::parse_threads(Some("+4")), 4, "parse accepts +");
        assert_eq!(Executor::parse_threads(Some("3.5")), fallback);
        assert_eq!(Executor::parse_threads(Some("0x8")), fallback);
        assert_eq!(
            Executor::parse_threads(Some("99999999999999999999999999")),
            fallback
        );
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn global_executor_is_shared() {
        let a = Executor::global();
        let b = Executor::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.threads() >= 1);
        assert_eq!(
            Executor::default().threads(),
            Executor::from_env().threads()
        );
    }

    #[test]
    fn deque_pool_hands_out_every_index_once() {
        let pool = DequePool::new(10, 3);
        let mut seen: Vec<usize> = Vec::new();
        // Worker 2 drains everything: its own block first, then steals.
        while let Some(idx) = pool.next_job(2) {
            seen.push(idx);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(pool.next_job(0), None);
    }
}
