//! The work-stealing execution core shared by every heavy path of the
//! workspace.
//!
//! All the batch-shaped work in this repository — per-loop pipeline runs,
//! optimality-gap oracle calls, figure grid sweeps, seeded fuzz cases — is
//! embarrassingly parallel but badly balanced: a tomcatv kernel or a
//! million-node exact probe can take orders of magnitude longer than its
//! batch neighbours. [`Executor::map`] runs such a batch on a pool of worker
//! threads with **per-worker deques and work stealing**: each worker starts
//! with a contiguous block of job indices, pops jobs from the front of its
//! own deque, and when it runs dry steals from the *back* of the fullest
//! victim, so stragglers are split instead of serialising the run.
//!
//! # Determinism
//!
//! The collect side is **ordered**: every job writes its result under its
//! original index, and `map` returns `Vec<R>` in input order no matter how
//! the jobs interleaved across workers. A batch of *pure* jobs therefore
//! produces bit-identical output for any thread count — `MVP_THREADS=1` and
//! `MVP_THREADS=8` runs of the pipeline, the bench drivers and the fuzz
//! harness emit byte-identical reports and CSVs (this is pinned by
//! `tests/executor_determinism.rs` at the workspace root).
//!
//! # Panic propagation
//!
//! A panicking job never deadlocks or poisons the batch: the batch runs to
//! completion regardless, and the panic payload of the smallest-indexed
//! panicking job — a property of the batch, not of the scheduling — is
//! re-raised on the caller's thread once every worker has parked. Compared
//! to a sequential `for` loop the only difference is that the jobs after
//! the failing one have also run.
//!
//! # Nesting
//!
//! `map` called from *inside* a worker runs the batch inline on that worker
//! (sequentially): a figure sweep parallelised over grid points would
//! otherwise multiply its thread count by every suite run it contains.
//! Balance still comes from the outermost batch, which is always the widest.
//!
//! # Sizing
//!
//! [`Executor::from_env`] honours the `MVP_THREADS` environment variable
//! (clamped to at least 1) and falls back to
//! [`std::thread::available_parallelism`]. [`Executor::global`] builds one
//! such executor per process, lazily, and is what the pipeline uses unless
//! an explicit executor is configured.
//!
//! # Example
//!
//! ```
//! use mvp_exec::Executor;
//!
//! let exec = Executor::new(4);
//! let squares = exec.map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable overriding the worker count of
/// [`Executor::from_env`] (and therefore of [`Executor::global`]).
pub const THREADS_ENV_VAR: &str = "MVP_THREADS";

thread_local! {
    /// Whether the current thread is an executor worker (see the module
    /// docs on nesting).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A fixed-width work-stealing thread pool with an ordered-collect API.
///
/// See the [module documentation](self) for the design; the behavioural
/// contract in one line: [`map`](Executor::map) over pure jobs is
/// observationally identical to `items.iter().map(f).collect()` — same
/// order, same panics — only faster.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor that runs batches on `threads` workers (clamped
    /// to at least 1; 1 means strictly sequential, in-place execution).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Creates an executor sized from the environment: the `MVP_THREADS`
    /// variable when set to a positive integer, the machine's available
    /// parallelism otherwise.
    #[must_use]
    pub fn from_env() -> Self {
        let configured = std::env::var(THREADS_ENV_VAR).ok();
        Self::new(Self::parse_threads(configured.as_deref()))
    }

    /// The worker count `from_env` derives from an `MVP_THREADS` value
    /// (`None` = variable unset). Non-numeric or zero values fall back to
    /// the available parallelism, like an unset variable.
    #[must_use]
    pub fn parse_threads(env_value: Option<&str>) -> usize {
        match env_value.and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// The process-wide shared executor (sized by [`Executor::from_env`]
    /// once, on first use). This is what [`multivliw`'s
    /// `Pipeline`](https://docs.rs/multivliw) and the bench drivers run on
    /// unless given an explicit executor.
    #[must_use]
    pub fn global() -> Arc<Executor> {
        static GLOBAL: OnceLock<Arc<Executor>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(Executor::from_env())))
    }

    /// Number of worker threads batches run on.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the calling thread is itself an executor worker (in which
    /// case any nested `map` runs inline; see the module docs).
    #[must_use]
    pub fn is_worker_thread() -> bool {
        IN_WORKER.with(std::cell::Cell::get)
    }

    /// Runs `f` over every item and returns the results **in input order**,
    /// regardless of how the jobs were interleaved across workers.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the smallest-indexed panicking job after the
    /// whole batch has run (deterministic for a deterministic batch; see
    /// the module docs).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// Like [`map`](Executor::map), but the job also receives its input
    /// index (useful for seeding and labelling).
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Sequential paths: a 1-thread executor, a trivial batch, or a
        // nested call from inside a worker (see the module docs).
        if self.threads == 1 || items.len() <= 1 || Self::is_worker_thread() {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }

        let workers = self.threads.min(items.len());
        let pool = DequePool::new(items.len(), workers);
        let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let pool = &pool;
                let results = &results;
                let panicked = &panicked;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    // The batch always runs to completion, panic or not:
                    // draining every job is what makes the re-raised panic
                    // *deterministic* (the smallest-indexed panicking job of
                    // the whole batch, not of a scheduling-dependent
                    // prefix). Jobs here are loop-sized, so finishing a
                    // batch that is about to panic costs little.
                    while let Some(idx) = pool.next_job(worker) {
                        match catch_unwind(AssertUnwindSafe(|| f(idx, &items[idx]))) {
                            Ok(r) => *results[idx].lock().expect("result slot lock") = Some(r),
                            Err(payload) => {
                                let mut first = panicked.lock().expect("panic slot lock");
                                match &*first {
                                    Some((prev, _)) if *prev <= idx => {}
                                    _ => *first = Some((idx, payload)),
                                }
                            }
                        }
                    }
                    IN_WORKER.with(|w| w.set(false));
                });
            }
        });

        if let Some((_, payload)) = panicked.into_inner().expect("panic slot lock") {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every job of a non-panicking batch ran")
            })
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

/// One deque of pending job indices per worker.
///
/// Workers pop their own deque from the *front* (preserving the roughly
/// input-ordered walk that keeps related jobs together) and steal from the
/// *back* of the fullest victim, halving the victim's remaining work would
/// be fancier but single-index steals are plenty at this job granularity —
/// every job here schedules or simulates a whole loop.
#[derive(Debug)]
struct DequePool {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl DequePool {
    /// Distributes `jobs` indices over `workers` deques in contiguous
    /// blocks (block `w` starts at `w * jobs / workers`).
    fn new(jobs: usize, workers: usize) -> Self {
        let deques = (0..workers)
            .map(|w| {
                let start = w * jobs / workers;
                let end = (w + 1) * jobs / workers;
                Mutex::new((start..end).collect())
            })
            .collect();
        Self { deques }
    }

    /// Next job for `worker`: its own front, else stolen from the back of
    /// the victim with the most pending jobs. `None` when every deque is
    /// empty (the batch is drained; workers then park).
    fn next_job(&self, worker: usize) -> Option<usize> {
        if let Some(idx) = self.deques[worker].lock().expect("deque lock").pop_front() {
            return Some(idx);
        }
        loop {
            let victim = self
                .deques
                .iter()
                .enumerate()
                .filter(|(v, _)| *v != worker)
                .map(|(v, d)| (d.lock().expect("deque lock").len(), v))
                .max()?;
            match victim {
                (0, _) => return None,
                (_, v) => {
                    // The victim may have drained between the census and the
                    // steal; retry the census rather than giving up.
                    if let Some(idx) = self.deques[v].lock().expect("deque lock").pop_back() {
                        return Some(idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let exec = Executor::new(threads);
            assert_eq!(exec.threads(), threads);
            assert_eq!(exec.map(&items, |&x| x * 3 + 1), expected, "{threads}");
        }
    }

    #[test]
    fn map_indexed_passes_the_input_index() {
        let items = ["a", "b", "c"];
        let out = Executor::new(2).map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_batches_run_inline() {
        let exec = Executor::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.map(&empty, |&x| x).is_empty());
        assert_eq!(exec.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_jobs_are_stolen_not_serialised() {
        // One straggler at index 0 plus many fast jobs: with stealing, the
        // fast jobs complete on other workers while the straggler runs. We
        // can't assert wall-clock here, but we can assert every job ran
        // exactly once and from more than one thread.
        let ran = AtomicUsize::new(0);
        let threads_seen: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        let items: Vec<u64> = (0..64).collect();
        let out = Executor::new(4).map(&items, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            threads_seen
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(out, items);
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert!(threads_seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn panics_propagate_with_the_smallest_index_winning() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Executor::new(4).map_indexed(&[0u8; 32], |i, _| {
                if i % 2 == 1 {
                    panic!("job {i} failed");
                }
                i
            });
        }));
        let payload = result.expect_err("batch must panic");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic payload is the job's format string");
        assert_eq!(message, "job 1 failed");
    }

    #[test]
    fn nested_maps_run_inline_on_the_worker() {
        let exec = Executor::new(4);
        assert!(!Executor::is_worker_thread());
        let out = exec.map(&[10u64, 20, 30, 40], |&x| {
            assert!(Executor::is_worker_thread());
            // The nested batch must not spawn further workers.
            exec.map(&[1u64, 2, 3], |&y| {
                assert!(Executor::is_worker_thread());
                x + y
            })
        });
        assert_eq!(
            out,
            vec![
                vec![11, 12, 13],
                vec![21, 22, 23],
                vec![31, 32, 33],
                vec![41, 42, 43]
            ]
        );
        assert!(!Executor::is_worker_thread());
    }

    #[test]
    fn parse_threads_honours_positive_integers_only() {
        assert_eq!(Executor::parse_threads(Some("3")), 3);
        assert_eq!(Executor::parse_threads(Some(" 12 ")), 12);
        let fallback = Executor::parse_threads(None);
        assert!(fallback >= 1);
        assert_eq!(Executor::parse_threads(Some("0")), fallback);
        assert_eq!(Executor::parse_threads(Some("many")), fallback);
        assert_eq!(Executor::parse_threads(Some("")), fallback);
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn global_executor_is_shared() {
        let a = Executor::global();
        let b = Executor::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.threads() >= 1);
        assert_eq!(
            Executor::default().threads(),
            Executor::from_env().threads()
        );
    }

    #[test]
    fn deque_pool_hands_out_every_index_once() {
        let pool = DequePool::new(10, 3);
        let mut seen: Vec<usize> = Vec::new();
        // Worker 2 drains everything: its own block first, then steals.
        while let Some(idx) = pool.next_job(2) {
            seen.push(idx);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(pool.next_job(0), None);
    }
}
