//! Property-style tests of the cache model and the locality analysis,
//! driven by a seeded RNG sweep (the workspace builds without `proptest`).

use mvp_cache::{CacheSim, LocalityAnalysis};
use mvp_ir::Loop;
use mvp_machine::CacheGeometry;
use mvp_testutil::SplitMix64;

/// Misses never exceed accesses, and re-accessing the same address
/// immediately always hits.
#[test]
fn cache_sim_counters_are_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0x1A2B);
    for _ in 0..64 {
        let n = rng.gen_range_inclusive(1, 199);
        let addresses: Vec<u64> = (0..n).map(|_| rng.next_u64() % 1_000_000).collect();
        let mut cache = CacheSim::new(CacheGeometry::direct_mapped(2048));
        for &a in &addresses {
            cache.access(a);
            assert!(cache.access(a), "immediate re-access of {a} must hit");
        }
        assert_eq!(cache.accesses(), 2 * addresses.len() as u64);
        assert!(cache.misses() <= addresses.len() as u64);
        assert!(cache.miss_ratio() <= 0.5 + 1e-12);
    }
}

/// A larger cache never produces more misses for the same single
/// streaming reference (no Belady anomaly for direct-mapped streams).
#[test]
fn larger_caches_do_not_hurt_single_streams() {
    let mut rng = SplitMix64::seed_from_u64(0x3C4D);
    for _ in 0..64 {
        let stride = rng.gen_range_inclusive(1, 63) as i64;
        let trip = rng.gen_range_inclusive(8, 255) as u64;

        let mut b = Loop::builder("stream");
        let i = b.dimension("I", trip);
        let a = b.array("A", 0, 1 << 20);
        let ld = b.load("LD", b.array_ref(a).stride(i, stride * 8).build());
        let l = b.build().unwrap();
        let analysis = LocalityAnalysis::with_window(&l, trip as usize);
        let small = analysis.miss_count(CacheGeometry::direct_mapped(1024), &[ld]);
        let large = analysis.miss_count(CacheGeometry::direct_mapped(8192), &[ld]);
        assert!(large <= small, "large cache missed more: {large} > {small}");
    }
}

/// The miss count of a reference set is bounded by its access count, and
/// adding a reference never reduces the total number of misses.
#[test]
fn miss_counts_are_bounded_and_monotone_in_the_reference_set() {
    let mut rng = SplitMix64::seed_from_u64(0x5E6F);
    for _ in 0..64 {
        let trip = rng.gen_range_inclusive(8, 127) as u64;
        let stride_a = rng.gen_range_inclusive(1, 7) as i64;
        let stride_b = rng.gen_range_inclusive(1, 7) as i64;
        let gap = rng.gen_index(8) as u64;

        let mut b = Loop::builder("pair");
        let i = b.dimension("I", trip);
        let arr_a = b.array("A", 0, 1 << 20);
        let arr_b = b.array("B", 4096 * gap + 512, 1 << 20);
        let ld_a = b.load("LDA", b.array_ref(arr_a).stride(i, stride_a * 8).build());
        let ld_b = b.load("LDB", b.array_ref(arr_b).stride(i, stride_b * 8).build());
        let l = b.build().unwrap();
        let geometry = CacheGeometry::direct_mapped(2048);
        let analysis = LocalityAnalysis::with_window(&l, trip as usize);

        let one = analysis.profile(geometry, &[ld_a]);
        assert!(one.total_misses <= one.total_accesses);
        assert_eq!(one.total_accesses, trip);

        let both = analysis.profile(geometry, &[ld_a, ld_b]);
        assert!(both.total_misses <= both.total_accesses);
        assert!(
            both.total_misses >= one.total_misses,
            "adding a reference must not reduce total misses"
        );

        // Per-op miss ratios are probabilities.
        for s in &both.per_op {
            assert!((0.0..=1.0).contains(&s.miss_ratio()));
        }
    }
}
