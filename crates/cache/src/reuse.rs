//! Closed-form reuse classification of affine references.
//!
//! This mirrors the reuse-vector terminology used in the CME literature:
//!
//! * **self-temporal** reuse: the reference touches the same address on
//!   consecutive innermost iterations (inner stride 0),
//! * **self-spatial** reuse: consecutive innermost iterations stay within the
//!   same cache block often enough to matter (0 < |stride| < block size),
//! * **group** reuse: two references to the same array whose addresses differ
//!   by a constant smaller than a block, so one can inherit the block the
//!   other fetched (the `LD1`/`LD3` pair of the motivating example).

use mvp_ir::{Loop, OpId};
use mvp_machine::CacheGeometry;
use std::fmt;

/// Kind of self-reuse a reference exhibits along the innermost loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReuseKind {
    /// Same address every iteration.
    SelfTemporal,
    /// Nearby addresses: several consecutive iterations share a block.
    SelfSpatial,
    /// Each iteration touches a different block.
    None,
}

impl fmt::Display for ReuseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReuseKind::SelfTemporal => "self-temporal",
            ReuseKind::SelfSpatial => "self-spatial",
            ReuseKind::None => "none",
        };
        f.write_str(s)
    }
}

/// Classifies the self-reuse of memory operation `op` along the innermost
/// loop of `l` for a cache with the given block size.
///
/// Returns [`ReuseKind::None`] for non-memory operations.
#[must_use]
pub fn self_reuse(l: &Loop, op: OpId, geometry: CacheGeometry) -> ReuseKind {
    let Some(r) = l.memory_ref_of(op) else {
        return ReuseKind::None;
    };
    let stride = r.inner_stride(l.nest());
    if stride == 0 {
        ReuseKind::SelfTemporal
    } else if stride.unsigned_abs() < geometry.block_bytes {
        ReuseKind::SelfSpatial
    } else {
        ReuseKind::None
    }
}

/// Whether memory operations `a` and `b` exhibit group reuse: they reference
/// the same array with identical strides and a constant address difference
/// smaller than one cache block, so scheduling them on the same cluster lets
/// one reuse the block fetched by the other.
#[must_use]
pub fn group_reuse(l: &Loop, a: OpId, b: OpId, geometry: CacheGeometry) -> bool {
    let (Some(ra), Some(rb)) = (l.memory_ref_of(a), l.memory_ref_of(b)) else {
        return false;
    };
    if ra.array != rb.array {
        return false;
    }
    // Same direction of travel in every dimension.
    let dims = ra.strides.len().max(rb.strides.len());
    for d in 0..dims {
        let sa = ra.strides.get(d).copied().unwrap_or(0);
        let sb = rb.strides.get(d).copied().unwrap_or(0);
        if sa != sb {
            return false;
        }
    }
    let delta = (ra.offset - rb.offset).unsigned_abs();
    delta < geometry.block_bytes
}

/// Expected miss ratio of a reference in isolation, from its self-reuse alone
/// (1 miss per block for spatial reuse, a single cold miss for temporal
/// reuse, 1.0 otherwise). This is the quick analytical estimate; the CME
/// estimator in [`crate::cme`] accounts for conflicts and group reuse too.
#[must_use]
pub fn isolated_miss_ratio(l: &Loop, op: OpId, geometry: CacheGeometry) -> f64 {
    let Some(r) = l.memory_ref_of(op) else {
        return 0.0;
    };
    match self_reuse(l, op, geometry) {
        ReuseKind::SelfTemporal => 0.0,
        ReuseKind::SelfSpatial => {
            let stride = r.inner_stride(l.nest()).unsigned_abs();
            stride as f64 / geometry.block_bytes as f64
        }
        ReuseKind::None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;

    fn geometry() -> CacheGeometry {
        CacheGeometry::direct_mapped(1024)
    }

    /// Loads with unit stride, large stride, zero stride and a group-reuse
    /// partner.
    fn sample_loop() -> (Loop, OpId, OpId, OpId, OpId, OpId) {
        let mut b = Loop::builder("reuse");
        let j = b.dimension("J", 4);
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 8192);
        let c = b.auto_array("C", 8192);
        let unit = b.load("UNIT", b.array_ref(a).stride(i, 8).build());
        let wide = b.load("WIDE", b.array_ref(a).stride(i, 128).build());
        let scalar = b.load("SCALAR", b.array_ref(c).stride(j, 8).build());
        let partner = b.load("PARTNER", b.array_ref(a).offset(8).stride(i, 8).build());
        let other_array = b.load("OTHER", b.array_ref(c).stride(i, 8).build());
        let l = b.build().unwrap();
        (l, unit, wide, scalar, partner, other_array)
    }

    #[test]
    fn self_reuse_classification() {
        let (l, unit, wide, scalar, _, _) = sample_loop();
        assert_eq!(self_reuse(&l, unit, geometry()), ReuseKind::SelfSpatial);
        assert_eq!(self_reuse(&l, wide, geometry()), ReuseKind::None);
        assert_eq!(self_reuse(&l, scalar, geometry()), ReuseKind::SelfTemporal);
    }

    #[test]
    fn group_reuse_requires_same_array_same_strides_and_small_delta() {
        let (l, unit, wide, scalar, partner, other_array) = sample_loop();
        let g = geometry();
        assert!(group_reuse(&l, unit, partner, g));
        assert!(group_reuse(&l, partner, unit, g));
        // Different stride: no group reuse.
        assert!(!group_reuse(&l, unit, wide, g));
        // Different array: no group reuse.
        assert!(!group_reuse(&l, unit, other_array, g));
        // Non-memory pairs never group-reuse.
        assert!(!group_reuse(&l, unit, scalar, g));
    }

    #[test]
    fn isolated_miss_ratio_matches_reuse_kind() {
        let (l, unit, wide, scalar, _, _) = sample_loop();
        let g = geometry();
        assert!((isolated_miss_ratio(&l, unit, g) - 0.25).abs() < 1e-12);
        assert_eq!(isolated_miss_ratio(&l, wide, g), 1.0);
        assert_eq!(isolated_miss_ratio(&l, scalar, g), 0.0);
    }

    #[test]
    fn non_memory_ops_have_no_reuse() {
        let mut b = Loop::builder("arith");
        let x = b.fp_op("X");
        let l = b.build().unwrap();
        assert_eq!(self_reuse(&l, x, geometry()), ReuseKind::None);
        assert_eq!(isolated_miss_ratio(&l, x, geometry()), 0.0);
    }

    #[test]
    fn display_of_reuse_kind() {
        assert_eq!(ReuseKind::SelfTemporal.to_string(), "self-temporal");
        assert_eq!(ReuseKind::SelfSpatial.to_string(), "self-spatial");
        assert_eq!(ReuseKind::None.to_string(), "none");
    }
}
