//! A small functional cache model (tag store only).
//!
//! Used by the locality estimator in [`crate::cme`] and by the cycle-level
//! simulator. It models hits and misses of a set-associative cache with LRU
//! replacement; it does not model timing, coherence or data — those live in
//! `mvp-sim`.

use mvp_machine::CacheGeometry;

/// Functional model of one cache: per-set LRU tag store.
#[derive(Debug, Clone)]
pub struct CacheSim {
    geometry: CacheGeometry,
    /// `sets[set]` holds the resident block numbers, most recently used last.
    sets: Vec<Vec<u64>>,
    accesses: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates an empty (cold) cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; validate geometries at
    /// configuration time with [`CacheGeometry::validate`].
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        geometry
            .validate()
            .expect("cache geometry must be validated before simulation");
        let sets =
            vec![Vec::with_capacity(geometry.associativity as usize); geometry.num_sets() as usize];
        Self {
            geometry,
            sets,
            accesses: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Whether the block containing `address` is currently resident (does not
    /// update LRU state or counters).
    #[must_use]
    pub fn contains(&self, address: u64) -> bool {
        let set = self.geometry.set_of(address) as usize;
        let block = self.geometry.block_of(address);
        self.sets[set].contains(&block)
    }

    /// Accesses `address`; returns `true` on a hit. Misses allocate the block
    /// (evicting the LRU block of the set if needed).
    pub fn access(&mut self, address: u64) -> bool {
        self.accesses += 1;
        let set = self.geometry.set_of(address) as usize;
        let block = self.geometry.block_of(address);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&b| b == block) {
            // Move to MRU position.
            let b = ways.remove(pos);
            ways.push(b);
            true
        } else {
            self.misses += 1;
            if ways.len() == self.geometry.associativity as usize {
                ways.remove(0);
            }
            ways.push(block);
            false
        }
    }

    /// Invalidates the block containing `address`, if resident. Returns
    /// whether a block was removed.
    pub fn invalidate(&mut self, address: u64) -> bool {
        let set = self.geometry.set_of(address) as usize;
        let block = self.geometry.block_of(address);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&b| b == block) {
            ways.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of accesses performed so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of misses observed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio observed so far (0.0 when no access has been made).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Forgets all resident blocks and resets the counters.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_1k() -> CacheSim {
        CacheSim::new(CacheGeometry::direct_mapped(1024))
    }

    #[test]
    fn sequential_accesses_miss_once_per_block() {
        let mut c = dm_1k();
        // 32-byte blocks, 8-byte elements: 1 miss then 3 hits, repeated.
        for e in 0..64u64 {
            c.access(e * 8);
        }
        assert_eq!(c.accesses(), 64);
        assert_eq!(c.misses(), 16);
        assert!((c.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ping_pong_between_conflicting_addresses_always_misses() {
        let mut c = dm_1k();
        // Two addresses exactly one cache-capacity apart share a set in a
        // direct-mapped cache and evict each other.
        for _ in 0..10 {
            assert!(!c.access(64));
            assert!(!c.access(64 + 1024));
        }
        assert_eq!(c.misses(), 20);
    }

    #[test]
    fn two_way_associativity_removes_the_ping_pong() {
        let geometry = CacheGeometry {
            capacity_bytes: 1024,
            block_bytes: 32,
            associativity: 2,
            mshr_entries: 10,
        };
        let mut c = CacheSim::new(geometry);
        c.access(64);
        c.access(64 + 512); // same set in a 2-way 1KB cache, different way
        for _ in 0..10 {
            assert!(c.access(64));
            assert!(c.access(64 + 512));
        }
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_way() {
        let geometry = CacheGeometry {
            capacity_bytes: 128,
            block_bytes: 32,
            associativity: 2,
            mshr_entries: 10,
        };
        // 2 sets of 2 ways. Set 0 holds blocks with (addr/32) even.
        let mut c = CacheSim::new(geometry);
        c.access(0); // block 0 -> set 0
        c.access(64); // block 2 -> set 0
        assert!(c.access(0)); // touch block 0: block 2 is now LRU
        c.access(128); // block 4 -> set 0, evicts block 2
        assert!(c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(128));
    }

    #[test]
    fn invalidate_removes_blocks() {
        let mut c = dm_1k();
        c.access(200);
        assert!(c.contains(200));
        assert!(c.invalidate(200));
        assert!(!c.contains(200));
        assert!(!c.invalidate(200));
        // A later access misses again.
        assert!(!c.access(200));
    }

    #[test]
    fn reset_clears_contents_and_counters() {
        let mut c = dm_1k();
        c.access(0);
        c.access(32);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.miss_ratio(), 0.0);
        assert!(!c.contains(0));
    }
}
