//! Cache-Miss-Equations-style miss estimation.
//!
//! [`LocalityAnalysis`] answers the two questions the RMCA scheduler asks of
//! the CME framework (Section 4.2 of the paper):
//!
//! * the number of misses incurred by a *set* of memory references for a
//!   particular cache configuration, and
//! * the miss ratio of a particular memory instruction within that set.
//!
//! Misses are counted exactly over a bounded window of the iteration space by
//! evaluating the affine references and replaying them through a functional
//! cache model ([`crate::CacheSim`]). This replaces the polyhedra counting of
//! the original CME solver; see `DESIGN.md` for the substitution rationale.
//! The window bound plays the role of the sampling scheme of Vera et al.: it
//! keeps the analysis cost at a small fraction of total compilation time.

use crate::sim_cache::CacheSim;
use mvp_ir::{Loop, OpId};
use mvp_machine::CacheGeometry;

/// Default number of iteration points evaluated per query.
pub const DEFAULT_WINDOW: usize = 1024;

/// Per-operation miss statistics within a profiled reference set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMissStats {
    /// The memory operation.
    pub op: OpId,
    /// Number of accesses evaluated.
    pub accesses: u64,
    /// Number of misses observed.
    pub misses: u64,
}

impl OpMissStats {
    /// Miss ratio of the operation (0.0 when it was never accessed).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Result of profiling a set of references against one cache geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissProfile {
    /// Total accesses evaluated across the whole set.
    pub total_accesses: u64,
    /// Total misses across the whole set.
    pub total_misses: u64,
    /// Per-operation breakdown, in the order the references were supplied.
    pub per_op: Vec<OpMissStats>,
}

impl MissProfile {
    /// Overall miss ratio of the set (0.0 when no accesses were evaluated).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_misses as f64 / self.total_accesses as f64
        }
    }

    /// Miss statistics of a particular operation, if it was part of the set.
    #[must_use]
    pub fn stats_of(&self, op: OpId) -> Option<OpMissStats> {
        self.per_op.iter().copied().find(|s| s.op == op)
    }
}

/// The locality analysis of one loop: estimates misses of reference subsets
/// for arbitrary cache geometries.
#[derive(Debug, Clone)]
pub struct LocalityAnalysis<'l> {
    l: &'l Loop,
    window: usize,
}

impl<'l> LocalityAnalysis<'l> {
    /// Creates an analysis with the default evaluation window
    /// ([`DEFAULT_WINDOW`] iteration points).
    #[must_use]
    pub fn new(l: &'l Loop) -> Self {
        Self {
            l,
            window: DEFAULT_WINDOW,
        }
    }

    /// Creates an analysis evaluating at most `window` iteration points per
    /// query. Larger windows are more precise and slower; `window` is clamped
    /// to at least 1.
    #[must_use]
    pub fn with_window(l: &'l Loop, window: usize) -> Self {
        Self {
            l,
            window: window.max(1),
        }
    }

    /// The loop being analysed.
    #[must_use]
    pub fn loop_body(&self) -> &'l Loop {
        self.l
    }

    /// The evaluation window (iteration points per query).
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Profiles the given memory operations against a cache of geometry
    /// `geometry`, as if they were the only references mapped to that cache.
    ///
    /// Non-memory operations in `refs` are ignored. References are replayed
    /// in program (operation-id) order within each iteration, which matches
    /// the in-order issue of the multiVLIWprocessor closely enough for miss
    /// ranking purposes.
    #[must_use]
    pub fn profile(&self, geometry: CacheGeometry, refs: &[OpId]) -> MissProfile {
        let mut ops: Vec<OpId> = refs
            .iter()
            .copied()
            .filter(|&op| self.l.op(op).is_memory())
            .collect();
        ops.sort_unstable();
        ops.dedup();

        let mut per_op: Vec<OpMissStats> = ops
            .iter()
            .map(|&op| OpMissStats {
                op,
                accesses: 0,
                misses: 0,
            })
            .collect();

        if ops.is_empty() {
            return MissProfile {
                total_accesses: 0,
                total_misses: 0,
                per_op,
            };
        }

        let mut cache = CacheSim::new(geometry);
        for iv in self.l.nest().iteration_vectors().take(self.window) {
            for (slot, &op) in ops.iter().enumerate() {
                let addr = self
                    .l
                    .address_of(op, &iv)
                    .expect("memory operations always have an address");
                let hit = cache.access(addr);
                per_op[slot].accesses += 1;
                if !hit {
                    per_op[slot].misses += 1;
                }
            }
        }

        MissProfile {
            total_accesses: cache.accesses(),
            total_misses: cache.misses(),
            per_op,
        }
    }

    /// Number of misses incurred by the set `refs` in a cache of geometry
    /// `geometry` (the first CME statistic of Section 4.2).
    #[must_use]
    pub fn miss_count(&self, geometry: CacheGeometry, refs: &[OpId]) -> u64 {
        self.profile(geometry, refs).total_misses
    }

    /// Miss ratio of `op` when it shares the cache with `companions` (the
    /// second CME statistic of Section 4.2). `op` is added to the set if not
    /// already present; returns 0.0 for non-memory operations.
    #[must_use]
    pub fn miss_ratio(&self, geometry: CacheGeometry, op: OpId, companions: &[OpId]) -> f64 {
        if !self.l.op(op).is_memory() {
            return 0.0;
        }
        let mut set: Vec<OpId> = companions.to_vec();
        if !set.contains(&op) {
            set.push(op);
        }
        self.profile(geometry, &set)
            .stats_of(op)
            .map_or(0.0, |s| s.miss_ratio())
    }

    /// Extra misses caused by adding `op` to the set `companions`:
    /// `misses(companions ∪ {op}) − misses(companions)`. This is the
    /// quantity the RMCA cluster-selection heuristic minimises.
    #[must_use]
    pub fn added_misses(&self, geometry: CacheGeometry, op: OpId, companions: &[OpId]) -> u64 {
        if !self.l.op(op).is_memory() {
            return 0;
        }
        let before = self.miss_count(geometry, companions);
        let mut set: Vec<OpId> = companions.to_vec();
        if !set.contains(&op) {
            set.push(op);
        }
        let after = self.miss_count(geometry, &set);
        after.saturating_sub(before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;

    fn geometry_1k() -> CacheGeometry {
        CacheGeometry::direct_mapped(1024)
    }

    /// The memory side of the Figure-3 loop: B and C placed a multiple of the
    /// cache capacity apart so B(i) and C(i) conflict, with the unrolled
    /// pairs LD1/LD3 (B) and LD2/LD4 (C) exhibiting group reuse.
    fn fig3_memory_loop() -> (Loop, [OpId; 4]) {
        let mut b = Loop::builder("fig3-mem");
        let i = b.dimension("I", 256);
        let cache_size = 1024u64;
        let arr_b = b.array("B", 0, 4096);
        let arr_c = b.array("C", 4 * cache_size, 4096);
        // The loop is unrolled by 2: each iteration touches B(2i), B(2i+1),
        // C(2i), C(2i+1) through four distinct load instructions.
        let ld1 = b.load("LD1", b.array_ref(arr_b).stride(i, 16).build());
        let ld2 = b.load("LD2", b.array_ref(arr_c).stride(i, 16).build());
        let ld3 = b.load("LD3", b.array_ref(arr_b).offset(8).stride(i, 16).build());
        let ld4 = b.load("LD4", b.array_ref(arr_c).offset(8).stride(i, 16).build());
        let l = b.build().unwrap();
        (l, [ld1, ld2, ld3, ld4])
    }

    #[test]
    fn single_unit_stride_load_misses_once_per_block() {
        let mut b = Loop::builder("stream");
        let i = b.dimension("I", 256);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let l = b.build().unwrap();
        let analysis = LocalityAnalysis::with_window(&l, 256);
        let profile = analysis.profile(geometry_1k(), &[ld]);
        assert_eq!(profile.total_accesses, 256);
        // 8-byte elements in 32-byte blocks: 25% miss ratio.
        assert_eq!(profile.total_misses, 64);
        assert!((analysis.miss_ratio(geometry_1k(), ld, &[]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conflicting_loads_pingpong_when_placed_together() {
        let (l, [ld1, ld2, ld3, ld4]) = fig3_memory_loop();
        let analysis = LocalityAnalysis::with_window(&l, 128);
        let g = geometry_1k();

        // Register-oriented partition (Figure 3a): {LD1, LD2} share a cache.
        // B(2i) and C(2i) map to the same set: every access misses.
        let together = analysis.profile(g, &[ld1, ld2]);
        assert_eq!(together.total_misses, together.total_accesses);

        // Locality-oriented partition (Figure 3b): {LD1, LD3} share a cache.
        // Group + spatial reuse: 1 miss per 32-byte block, i.e. 25% of the
        // 2-element (16-byte) accesses per instruction pair.
        let locality = analysis.profile(g, &[ld1, ld3]);
        assert!(locality.total_misses * 3 < locality.total_accesses);
        // Same for the other pair.
        let locality2 = analysis.profile(g, &[ld2, ld4]);
        assert_eq!(locality.total_misses, locality2.total_misses);

        // The misses of the locality-aware split are far fewer than the
        // register-oriented split, which is the whole point of RMCA.
        assert!(locality.total_misses * 2 < together.total_misses);
    }

    #[test]
    fn miss_ratio_of_trailing_group_reuse_load_is_low() {
        let (l, [ld1, _, ld3, _]) = fig3_memory_loop();
        let analysis = LocalityAnalysis::with_window(&l, 128);
        let g = geometry_1k();
        // LD3 reuses the block brought in by LD1 in the same iteration.
        let r3 = analysis.miss_ratio(g, ld3, &[ld1]);
        assert!(r3 < 0.05, "LD3 miss ratio {r3} should be ~0");
        // LD1 pays the block fetches: about one miss every two iterations
        // (16-byte stride in 32-byte blocks -> 50%).
        let r1 = analysis.miss_ratio(g, ld1, &[ld3]);
        assert!((r1 - 0.5).abs() < 0.1, "LD1 miss ratio {r1} should be ~0.5");
    }

    #[test]
    fn added_misses_prefers_the_group_reuse_cluster() {
        let (l, [ld1, ld2, ld3, _]) = fig3_memory_loop();
        let analysis = LocalityAnalysis::with_window(&l, 128);
        let g = geometry_1k();
        // Adding LD3 to a cluster that already holds LD1 is nearly free;
        // adding it to the cluster holding LD2 costs many conflict misses.
        let with_partner = analysis.added_misses(g, ld3, &[ld1]);
        let with_conflict = analysis.added_misses(g, ld3, &[ld2]);
        assert!(with_partner < with_conflict);
    }

    #[test]
    fn non_memory_ops_and_empty_sets_are_harmless() {
        let mut b = Loop::builder("mixed");
        let i = b.dimension("I", 16);
        let a = b.auto_array("A", 256);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        b.data_edge(ld, f, 0);
        let l = b.build().unwrap();
        let analysis = LocalityAnalysis::new(&l);
        let g = geometry_1k();
        assert_eq!(analysis.miss_count(g, &[]), 0);
        assert_eq!(analysis.miss_count(g, &[f]), 0);
        assert_eq!(analysis.miss_ratio(g, f, &[ld]), 0.0);
        assert_eq!(analysis.added_misses(g, f, &[ld]), 0);
        let profile = analysis.profile(g, &[f]);
        assert_eq!(profile.total_accesses, 0);
        assert_eq!(profile.miss_ratio(), 0.0);
    }

    #[test]
    fn duplicate_refs_are_counted_once() {
        let (l, [ld1, _, _, _]) = fig3_memory_loop();
        let analysis = LocalityAnalysis::with_window(&l, 64);
        let g = geometry_1k();
        let once = analysis.profile(g, &[ld1]);
        let twice = analysis.profile(g, &[ld1, ld1]);
        assert_eq!(once.total_accesses, twice.total_accesses);
        assert_eq!(once.total_misses, twice.total_misses);
    }

    #[test]
    fn window_limits_the_number_of_points_evaluated() {
        let (l, [ld1, _, _, _]) = fig3_memory_loop();
        let small = LocalityAnalysis::with_window(&l, 16);
        let profile = small.profile(geometry_1k(), &[ld1]);
        assert_eq!(profile.total_accesses, 16);
        assert_eq!(small.window(), 16);
        // Window is clamped to at least one point.
        assert_eq!(LocalityAnalysis::with_window(&l, 0).window(), 1);
    }
}
