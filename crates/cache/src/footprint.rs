//! Footprint statistics of reference sets.
//!
//! The footprint (number of distinct cache blocks touched) is a cheap
//! indicator of capacity pressure, used by the benchmark harness to report
//! why a kernel does or does not fit in the per-cluster cache slice.

use mvp_ir::{Loop, OpId};
use mvp_machine::CacheGeometry;
use std::collections::HashSet;

/// Number of distinct cache blocks touched by `refs` over at most `window`
/// iteration points of the loop nest.
#[must_use]
pub fn distinct_blocks(l: &Loop, refs: &[OpId], geometry: CacheGeometry, window: usize) -> u64 {
    let mut blocks: HashSet<u64> = HashSet::new();
    let mem_ops: Vec<OpId> = refs
        .iter()
        .copied()
        .filter(|&op| l.op(op).is_memory())
        .collect();
    if mem_ops.is_empty() {
        return 0;
    }
    for iv in l.nest().iteration_vectors().take(window.max(1)) {
        for &op in &mem_ops {
            if let Some(addr) = l.address_of(op, &iv) {
                blocks.insert(geometry.block_of(addr));
            }
        }
    }
    blocks.len() as u64
}

/// Footprint in bytes of `refs` over at most `window` iteration points.
#[must_use]
pub fn footprint_bytes(l: &Loop, refs: &[OpId], geometry: CacheGeometry, window: usize) -> u64 {
    distinct_blocks(l, refs, geometry, window) * geometry.block_bytes
}

/// Whether the footprint of `refs` over `window` iteration points fits in a
/// cache of the given geometry.
#[must_use]
pub fn fits_in_cache(l: &Loop, refs: &[OpId], geometry: CacheGeometry, window: usize) -> bool {
    footprint_bytes(l, refs, geometry, window) <= geometry.capacity_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;

    fn streaming_loop() -> (Loop, OpId, OpId) {
        let mut b = Loop::builder("footprint");
        let i = b.dimension("I", 128);
        let a = b.auto_array("A", 4096);
        let c = b.auto_array("C", 4096);
        let ld_a = b.load("LDA", b.array_ref(a).stride(i, 8).build());
        let ld_c = b.load("LDC", b.array_ref(c).stride(i, 8).build());
        let l = b.build().unwrap();
        (l, ld_a, ld_c)
    }

    #[test]
    fn distinct_blocks_counts_each_block_once() {
        let (l, ld_a, _) = streaming_loop();
        let g = CacheGeometry::direct_mapped(1024);
        // 128 iterations * 8 bytes = 1024 bytes = 32 blocks of 32 bytes.
        assert_eq!(distinct_blocks(&l, &[ld_a], g, 128), 32);
        assert_eq!(footprint_bytes(&l, &[ld_a], g, 128), 1024);
    }

    #[test]
    fn two_streams_double_the_footprint() {
        let (l, ld_a, ld_c) = streaming_loop();
        let g = CacheGeometry::direct_mapped(1024);
        assert_eq!(distinct_blocks(&l, &[ld_a, ld_c], g, 128), 64);
        assert!(fits_in_cache(&l, &[ld_a], g, 128));
        assert!(!fits_in_cache(&l, &[ld_a, ld_c], g, 128));
    }

    #[test]
    fn empty_or_non_memory_sets_have_zero_footprint() {
        let (l, _, _) = streaming_loop();
        let g = CacheGeometry::direct_mapped(1024);
        assert_eq!(distinct_blocks(&l, &[], g, 64), 0);
        assert_eq!(footprint_bytes(&l, &[], g, 64), 0);
        assert!(fits_in_cache(&l, &[], g, 64));
    }
}
