//! Data-locality analysis for the RMCA modulo scheduler.
//!
//! The paper drives the cluster assignment of memory operations with the
//! Cache Miss Equations (CME) framework of Ghosh, Martonosi & Malik, sped up
//! with the solver of Bermudo et al. and the sampling scheme of Vera et al.
//! The scheduler only ever asks two questions of that framework:
//!
//! 1. *how many misses* does a given **set** of memory references produce in
//!    a cache of a given geometry (the local cache of one cluster), and
//! 2. what is the *miss ratio* of one particular reference within that set.
//!
//! This crate answers exactly those questions. Instead of counting integer
//! points in the CME polyhedra it counts misses exactly over a bounded
//! (optionally sampled) window of the iteration space — the same quantity the
//! CME solver estimates, produced by direct evaluation of the affine
//! references. The substitution is documented in `DESIGN.md`; it preserves
//! the ranking of candidate clusters, which is all the scheduler consumes.
//!
//! The crate also provides a closed-form [`reuse`] classification
//! (self-temporal, self-spatial, group reuse) used for reporting and for
//! fast pre-filtering, and a simple functional [`sim_cache`] used by both the
//! estimator here and the cycle-level simulator.
//!
//! # Example
//!
//! ```
//! use mvp_cache::LocalityAnalysis;
//! use mvp_ir::Loop;
//! use mvp_machine::CacheGeometry;
//!
//! // DO I: load B(I), load C(I) with B and C mapping to the same sets.
//! let mut b = Loop::builder("pingpong");
//! let i = b.dimension("I", 512);
//! let cache = CacheGeometry::direct_mapped(1024);
//! let arr_b = b.array("B", 0, 4096);
//! let arr_c = b.array("C", 1024, 4096); // one cache-capacity away: conflicts
//! let ld1 = b.load("LD1", b.array_ref(arr_b).stride(i, 8).build());
//! let ld2 = b.load("LD2", b.array_ref(arr_c).stride(i, 8).build());
//! let l = b.build().unwrap();
//!
//! let analysis = LocalityAnalysis::new(&l);
//! // Together the two loads ping-pong: every access misses.
//! let together = analysis.miss_count(cache, &[ld1, ld2]);
//! // Alone, each load enjoys spatial reuse (1 miss per 4 elements).
//! let alone = analysis.miss_count(cache, &[ld1]) + analysis.miss_count(cache, &[ld2]);
//! assert!(together > 2 * alone);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cme;
pub mod footprint;
pub mod reuse;
pub mod sim_cache;

pub use cme::{LocalityAnalysis, MissProfile, OpMissStats};
pub use reuse::{group_reuse, self_reuse, ReuseKind};
pub use sim_cache::CacheSim;
