//! Miss-status handling registers (MSHR) of a non-blocking cache.
//!
//! Each local cache can track a bounded number of outstanding misses. A new
//! miss that finds the MSHR full waits for an entry (`NC_WaitingEntry`).
//! Secondary misses to a block that is already in flight merge with the
//! pending entry and simply wait for its completion — the effect the paper
//! notes when "an earlier miss has already started loading the relevant
//! cache line".

use std::collections::HashMap;

/// MSHR model of one cluster's non-blocking cache.
#[derive(Debug, Clone)]
pub struct Mshr {
    entries: usize,
    /// In-flight misses: block number → completion time.
    in_flight: HashMap<u64, u64>,
    wait_cycles: u64,
    merges: u64,
}

impl Mshr {
    /// Creates an MSHR with the given number of entries.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        Self::with_history(entries, 0, 0)
    }

    /// Creates an empty MSHR that keeps previously accumulated statistics
    /// (used when caches are flushed mid-simulation).
    #[must_use]
    pub fn with_history(entries: usize, wait_cycles: u64, merges: u64) -> Self {
        Self {
            entries: entries.max(1),
            in_flight: HashMap::new(),
            wait_cycles,
            merges,
        }
    }

    /// Drops entries that completed at or before `now`.
    fn expire(&mut self, now: u64) {
        self.in_flight.retain(|_, &mut done| done > now);
    }

    /// Completion time of an in-flight fetch of `block`, if any (a secondary
    /// miss can merge with it instead of allocating a new entry).
    pub fn pending_completion(&mut self, block: u64, now: u64) -> Option<u64> {
        self.expire(now);
        let done = self.in_flight.get(&block).copied();
        if done.is_some() {
            self.merges += 1;
        }
        done
    }

    /// Allocates an entry for a new miss of `block` issued at `now` that will
    /// complete `service_latency` cycles after it gets an entry. Returns
    /// `(entry_wait, completion_time)`.
    pub fn allocate(&mut self, block: u64, now: u64, service_latency: u64) -> (u64, u64) {
        self.expire(now);
        let mut start = now;
        if self.in_flight.len() >= self.entries {
            let earliest = self
                .in_flight
                .values()
                .copied()
                .min()
                .expect("MSHR is full, so it is non-empty");
            let wait = earliest.saturating_sub(now);
            self.wait_cycles += wait;
            start = now + wait;
            self.expire(start);
        }
        let completion = start + service_latency;
        self.in_flight.insert(block, completion);
        (start - now, completion)
    }

    /// Cycles a new miss arriving at `now` must wait before an MSHR entry is
    /// available (0 when the MSHR has a free entry). Does not allocate.
    pub fn entry_wait(&mut self, now: u64) -> u64 {
        self.expire(now);
        if self.in_flight.len() < self.entries {
            return 0;
        }
        let earliest = self
            .in_flight
            .values()
            .copied()
            .min()
            .expect("MSHR is full, so it is non-empty");
        earliest.saturating_sub(now)
    }

    /// Records an in-flight miss of `block` completing at `completion`,
    /// accounting `waited` cycles of entry wait.
    pub fn insert(&mut self, block: u64, completion: u64, waited: u64) {
        self.wait_cycles += waited;
        self.in_flight.insert(block, completion);
    }

    /// Total cycles spent waiting for a free entry.
    #[must_use]
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Number of secondary misses merged with an in-flight entry.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of misses currently outstanding at time `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.expire(now);
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_without_pressure_is_free() {
        let mut mshr = Mshr::new(4);
        let (wait, done) = mshr.allocate(10, 100, 12);
        assert_eq!(wait, 0);
        assert_eq!(done, 112);
        assert_eq!(mshr.outstanding(100), 1);
        assert_eq!(mshr.outstanding(112), 0);
    }

    #[test]
    fn full_mshr_waits_for_the_earliest_completion() {
        let mut mshr = Mshr::new(2);
        mshr.allocate(1, 0, 10); // completes at 10
        mshr.allocate(2, 0, 20); // completes at 20
        let (wait, done) = mshr.allocate(3, 5, 10);
        assert_eq!(wait, 5); // waits until time 10
        assert_eq!(done, 20);
        assert_eq!(mshr.wait_cycles(), 5);
    }

    #[test]
    fn secondary_miss_merges_with_in_flight_entry() {
        let mut mshr = Mshr::new(4);
        mshr.allocate(7, 0, 14);
        assert_eq!(mshr.pending_completion(7, 3), Some(14));
        assert_eq!(mshr.merges(), 1);
        // After completion the entry disappears.
        assert_eq!(mshr.pending_completion(7, 14), None);
    }

    #[test]
    fn zero_entry_request_is_clamped_to_one() {
        let mut mshr = Mshr::new(0);
        let (wait, done) = mshr.allocate(1, 0, 5);
        assert_eq!((wait, done), (0, 5));
        // The single entry is now busy; a second miss waits.
        let (wait2, _) = mshr.allocate(2, 1, 5);
        assert_eq!(wait2, 4);
    }
}
