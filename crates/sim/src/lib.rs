//! Cycle-level simulator of the multiVLIWprocessor.
//!
//! The simulator executes a modulo [`Schedule`](mvp_core::Schedule) of a
//! [`Loop`](mvp_ir::Loop) on a [`MachineConfig`](mvp_machine::MachineConfig)
//! and reports the cycle breakdown the paper's evaluation uses:
//!
//! ```text
//! NCYCLE_total = NCYCLE_compute + NCYCLE_stall
//! ```
//!
//! `NCYCLE_compute` is the static part (`NTIMES * (NITER + SC − 1) * II`);
//! `NCYCLE_stall` is accumulated dynamically from the events the compiler
//! could not know about (Section 2.2):
//!
//! * the level that actually serves each memory access — local cache, a
//!   remote cluster's cache (through the snoopy MSI protocol) or main
//!   memory,
//! * waiting for a free MSHR entry in the non-blocking local cache,
//! * waiting for a free memory bus (also used by coherence traffic),
//! * and the fact that consumers were scheduled assuming the optimistic
//!   latency of their producer loads.
//!
//! # Example
//!
//! ```
//! use mvp_core::{ModuloScheduler, RmcaScheduler};
//! use mvp_ir::Loop;
//! use mvp_machine::presets;
//! use mvp_sim::{simulate, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Loop::builder("stream");
//! let i = b.dimension("I", 128);
//! let a = b.auto_array("A", 8192);
//! let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
//! let f = b.fp_op("F");
//! b.data_edge(ld, f, 0);
//! let l = b.build()?;
//!
//! let machine = presets::two_cluster();
//! let schedule = RmcaScheduler::new().schedule(&l, &machine)?;
//! let stats = simulate(&l, &schedule, &machine, &SimOptions::new());
//! assert_eq!(stats.total_cycles(), stats.compute_cycles + stats.stall_cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod engine;
pub mod memory_system;
pub mod mshr;
pub mod msi;
pub mod options;
pub mod stats;

pub use engine::simulate;
pub use memory_system::{AccessOutcome, MemorySystem, ServiceLevel};
pub use msi::{CoherentCache, HitKind, MsiState};
pub use options::SimOptions;
pub use stats::SimStats;
