//! The distributed memory system: per-cluster coherent caches, MSHRs, memory
//! buses and main memory.
//!
//! A memory access issued by a cluster follows the paper's latency model
//! (Section 2.2):
//!
//! ```text
//! LAT = LAT_cache
//!     + MISS_LC * ( NC_WaitingEntry + NC_WaitingBus + LAT_MemoryBus
//!                   + if hit in a remote cache { LAT_cache } else { LAT_MainMemory } )
//! ```
//!
//! Coherence (snoopy MSI) transactions also occupy a memory bus, and
//! secondary misses to a line already being fetched merge with the pending
//! MSHR entry.

use crate::bus::MemoryBuses;
use crate::mshr::Mshr;
use crate::msi::{CoherentCache, HitKind, MsiState};
use mvp_machine::{ClusterId, MachineConfig};

/// Which level of the memory hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Hit in the local cache.
    LocalHit,
    /// The line was already being fetched; the access merged with the
    /// pending miss.
    InFlightMerge,
    /// A store hit a Shared line and had to invalidate remote copies.
    Upgrade,
    /// Miss served by another cluster's cache.
    RemoteCache,
    /// Miss served by main memory.
    MainMemory,
}

/// Timing and classification of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total latency of the access as seen by the issuing cluster.
    pub latency: u64,
    /// Level that served the access.
    pub level: ServiceLevel,
    /// Cycles spent waiting for a free memory bus.
    pub bus_wait: u64,
    /// Cycles spent waiting for a free MSHR entry.
    pub mshr_wait: u64,
}

/// Aggregate counters of the memory system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryCounters {
    /// Total accesses.
    pub accesses: u64,
    /// Local cache hits.
    pub local_hits: u64,
    /// Accesses merged with an in-flight miss.
    pub merges: u64,
    /// Store upgrades (Shared → Modified).
    pub upgrades: u64,
    /// Misses served by a remote cluster's cache.
    pub remote_fills: u64,
    /// Misses served by main memory.
    pub memory_fills: u64,
    /// Invalidation messages sent to remote caches.
    pub invalidations: u64,
    /// Cycles spent waiting for a free memory bus.
    pub bus_wait_cycles: u64,
    /// Cycles spent waiting for a free MSHR entry.
    pub mshr_wait_cycles: u64,
    /// Memory-bus transactions (fills, upgrades, coherence).
    pub bus_transactions: u64,
}

impl MemoryCounters {
    /// Total misses (remote fills + memory fills).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.remote_fills + self.memory_fills
    }

    /// Adds every counter of `other` into `self` (used to aggregate the
    /// per-loop counters of a batch run).
    pub fn accumulate(&mut self, other: &MemoryCounters) {
        // Exhaustive destructuring: adding a counter field without
        // aggregating it here becomes a compile error.
        let MemoryCounters {
            accesses,
            local_hits,
            merges,
            upgrades,
            remote_fills,
            memory_fills,
            invalidations,
            bus_wait_cycles,
            mshr_wait_cycles,
            bus_transactions,
        } = *other;
        self.accesses += accesses;
        self.local_hits += local_hits;
        self.merges += merges;
        self.upgrades += upgrades;
        self.remote_fills += remote_fills;
        self.memory_fills += memory_fills;
        self.invalidations += invalidations;
        self.bus_wait_cycles += bus_wait_cycles;
        self.mshr_wait_cycles += mshr_wait_cycles;
        self.bus_transactions += bus_transactions;
    }

    /// Local miss ratio (misses plus merges and upgrades over accesses).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.misses() + self.merges + self.upgrades) as f64 / self.accesses as f64
        }
    }
}

/// The whole distributed memory system of one multiVLIWprocessor.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    caches: Vec<CoherentCache>,
    mshrs: Vec<Mshr>,
    buses: MemoryBuses,
    lat_cache: u64,
    lat_memory: u64,
    counters: MemoryCounters,
    block_bytes: u64,
}

impl MemorySystem {
    /// Builds the memory system of `machine` (one cache + MSHR per cluster,
    /// the shared memory buses and main memory).
    #[must_use]
    pub fn new(machine: &MachineConfig) -> Self {
        let caches: Vec<CoherentCache> = machine
            .clusters()
            .map(|(_, c)| CoherentCache::new(c.cache))
            .collect();
        let mshrs = machine
            .clusters()
            .map(|(_, c)| Mshr::new(c.cache.mshr_entries))
            .collect();
        let block_bytes = machine.cluster(0).cache.block_bytes;
        Self {
            caches,
            mshrs,
            buses: MemoryBuses::new(machine.memory_buses),
            lat_cache: u64::from(machine.latencies.load_hit),
            lat_memory: u64::from(machine.latencies.main_memory),
            counters: MemoryCounters::default(),
            block_bytes,
        }
    }

    /// Aggregate counters observed so far.
    #[must_use]
    pub fn counters(&self) -> MemoryCounters {
        let mut c = self.counters;
        c.bus_wait_cycles = self.buses.wait_cycles();
        c.bus_transactions = self.buses.transactions();
        c.mshr_wait_cycles = self.mshrs.iter().map(Mshr::wait_cycles).sum();
        c
    }

    /// The per-cluster cache of `cluster` (read-only, for tests and reports).
    #[must_use]
    pub fn cache(&self, cluster: ClusterId) -> &CoherentCache {
        &self.caches[cluster]
    }

    /// Performs a memory access from `cluster` to `address` at time `now`.
    pub fn access(
        &mut self,
        cluster: ClusterId,
        address: u64,
        is_store: bool,
        now: u64,
    ) -> AccessOutcome {
        self.counters.accesses += 1;
        let block = address / self.block_bytes;

        match self.caches[cluster].lookup(block, is_store) {
            HitKind::Hit => {
                // The line may still be in flight from an earlier miss.
                if let Some(done) = self.mshrs[cluster].pending_completion(block, now) {
                    self.counters.merges += 1;
                    self.caches[cluster].touch(block, is_store);
                    return AccessOutcome {
                        latency: self.lat_cache.max(done.saturating_sub(now)),
                        level: ServiceLevel::InFlightMerge,
                        bus_wait: 0,
                        mshr_wait: 0,
                    };
                }
                self.counters.local_hits += 1;
                self.caches[cluster].touch(block, is_store);
                AccessOutcome {
                    latency: self.lat_cache,
                    level: ServiceLevel::LocalHit,
                    bus_wait: 0,
                    mshr_wait: 0,
                }
            }
            HitKind::UpgradeMiss => {
                // Store to a Shared line: invalidate every other copy over a
                // memory bus, then write locally.
                self.counters.upgrades += 1;
                let (bus_wait, _grant) = self.buses.request(now);
                self.invalidate_others(cluster, block);
                self.caches[cluster].touch(block, true);
                AccessOutcome {
                    latency: self.lat_cache + bus_wait + self.buses.latency(),
                    level: ServiceLevel::Upgrade,
                    bus_wait,
                    mshr_wait: 0,
                }
            }
            HitKind::Miss => self.handle_miss(cluster, block, is_store, now),
        }
    }

    fn handle_miss(
        &mut self,
        cluster: ClusterId,
        block: u64,
        is_store: bool,
        now: u64,
    ) -> AccessOutcome {
        // Secondary miss to a line already being fetched: merge.
        if let Some(done) = self.mshrs[cluster].pending_completion(block, now) {
            self.counters.merges += 1;
            // Make sure the line is (or will be) resident.
            let state = if is_store {
                MsiState::Modified
            } else {
                MsiState::Shared
            };
            self.caches[cluster].allocate(block, state);
            return AccessOutcome {
                latency: self.lat_cache.max(done.saturating_sub(now)),
                level: ServiceLevel::InFlightMerge,
                bus_wait: 0,
                mshr_wait: 0,
            };
        }

        // Primary miss: wait for an MSHR entry, then for a bus, then fetch
        // from a remote cache or main memory.
        let mshr_wait = self.mshrs[cluster].entry_wait(now);
        let after_entry = now + mshr_wait;
        let (bus_wait, _grant) = self.buses.request(after_entry);

        let remote = self
            .caches
            .iter()
            .enumerate()
            .any(|(c, cache)| c != cluster && cache.contains(block));
        let fill_latency = if remote {
            self.lat_cache
        } else {
            self.lat_memory
        };
        let level = if remote {
            self.counters.remote_fills += 1;
            ServiceLevel::RemoteCache
        } else {
            self.counters.memory_fills += 1;
            ServiceLevel::MainMemory
        };

        // Coherence actions at the remote copies.
        if remote {
            if is_store {
                self.invalidate_others(cluster, block);
            } else {
                for (c, cache) in self.caches.iter_mut().enumerate() {
                    if c != cluster {
                        cache.downgrade(block);
                    }
                }
            }
        }

        let latency = self.lat_cache + mshr_wait + bus_wait + self.buses.latency() + fill_latency;
        let completion = now + latency;
        self.mshrs[cluster].insert(block, completion, mshr_wait);

        let state = if is_store {
            MsiState::Modified
        } else {
            MsiState::Shared
        };
        self.caches[cluster].allocate(block, state);

        AccessOutcome {
            latency,
            level,
            bus_wait,
            mshr_wait,
        }
    }

    /// Empties every cluster's cache and MSHR (cold caches) while keeping the
    /// accumulated counters and bus state. Used to model loops whose data is
    /// not resident when the loop is re-entered.
    pub fn flush_caches(&mut self) {
        for (cache, mshr) in self.caches.iter_mut().zip(&mut self.mshrs) {
            let geometry = *cache.geometry();
            *cache = CoherentCache::new(geometry);
            let wait = mshr.wait_cycles();
            let merges = mshr.merges();
            *mshr = Mshr::with_history(geometry.mshr_entries, wait, merges);
        }
    }

    fn invalidate_others(&mut self, cluster: ClusterId, block: u64) {
        for (c, cache) in self.caches.iter_mut().enumerate() {
            if c != cluster && cache.invalidate(block) {
                self.counters.invalidations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::presets;

    fn system() -> MemorySystem {
        MemorySystem::new(&presets::two_cluster())
    }

    #[test]
    fn cold_miss_goes_to_main_memory_then_hits_locally() {
        let mut m = system();
        let a = m.access(0, 0x1000, false, 0);
        assert_eq!(a.level, ServiceLevel::MainMemory);
        // 2 (cache) + 1 (bus) + 10 (memory) with the realistic preset buses.
        assert_eq!(a.latency, 13);
        let b = m.access(0, 0x1008, false, 100);
        assert_eq!(b.level, ServiceLevel::LocalHit);
        assert_eq!(b.latency, 2);
        let c = m.counters();
        assert_eq!(c.accesses, 2);
        assert_eq!(c.memory_fills, 1);
        assert_eq!(c.local_hits, 1);
    }

    #[test]
    fn remote_cache_serves_misses_from_other_clusters() {
        let mut m = system();
        m.access(0, 0x2000, false, 0);
        let a = m.access(1, 0x2000, false, 100);
        assert_eq!(a.level, ServiceLevel::RemoteCache);
        // 2 (local) + 1 (bus) + 2 (remote cache).
        assert_eq!(a.latency, 5);
        assert_eq!(m.counters().remote_fills, 1);
        // Both caches now share the line.
        assert!(m.cache(0).contains(0x2000 / 32));
        assert!(m.cache(1).contains(0x2000 / 32));
    }

    #[test]
    fn stores_invalidate_remote_copies() {
        let mut m = system();
        m.access(0, 0x3000, false, 0);
        m.access(1, 0x3000, false, 50); // now shared in both
        let up = m.access(0, 0x3000, true, 100); // store hits Shared: upgrade
        assert_eq!(up.level, ServiceLevel::Upgrade);
        assert_eq!(m.counters().upgrades, 1);
        assert_eq!(m.counters().invalidations, 1);
        assert!(!m.cache(1).contains(0x3000 / 32));
        // A later load from cluster 1 misses again (coherence miss) and is
        // served by cluster 0's modified copy.
        let reload = m.access(1, 0x3000, false, 200);
        assert_eq!(reload.level, ServiceLevel::RemoteCache);
    }

    #[test]
    fn secondary_miss_merges_with_the_in_flight_fill() {
        let mut m = system();
        let first = m.access(0, 0x4000, false, 0);
        assert_eq!(first.level, ServiceLevel::MainMemory);
        // Same block, 3 cycles later: merge, latency is the remaining time.
        let second = m.access(0, 0x4008, false, 3);
        assert_eq!(second.level, ServiceLevel::InFlightMerge);
        assert_eq!(second.latency, first.latency - 3);
        assert_eq!(m.counters().merges, 1);
        assert_eq!(m.counters().memory_fills, 1);
    }

    #[test]
    fn bus_contention_adds_wait_cycles() {
        // Single memory bus with 4-cycle latency.
        let machine =
            presets::two_cluster().with_memory_buses(mvp_machine::BusConfig::finite(1, 4));
        let mut m = MemorySystem::new(&machine);
        let a = m.access(0, 0x5000, false, 0);
        let b = m.access(1, 0x9000, false, 1);
        assert_eq!(a.bus_wait, 0);
        assert_eq!(b.bus_wait, 3);
        assert_eq!(m.counters().bus_wait_cycles, 3);
        assert_eq!(m.counters().bus_transactions, 2);
    }

    #[test]
    fn miss_ratio_reflects_conflicting_streams() {
        let mut m = system();
        // Two addresses one cache-capacity (4 KB) apart ping-pong in the
        // 4 KB direct-mapped local cache of cluster 0.
        for t in 0..20 {
            m.access(0, 0x0, false, t * 50);
            m.access(0, 0x1000, false, t * 50 + 25);
        }
        let c = m.counters();
        assert_eq!(c.local_hits, 0);
        assert!(c.miss_ratio() > 0.99);
    }
}
