//! Per-cluster coherent L1 data caches with a snoopy MSI protocol.
//!
//! Each cluster owns a set-associative (direct-mapped in the paper's
//! configurations) cache whose lines carry an MSI state. The protocol is
//! managed entirely by the hardware: the scheduler never sees it, only the
//! latency consequences.

use mvp_machine::CacheGeometry;

/// MSI coherence state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsiState {
    /// The line is valid and possibly dirty; no other cache holds it.
    Modified,
    /// The line is valid and clean; other caches may hold it too.
    Shared,
    /// The line is not present (invalid lines are simply absent).
    Invalid,
}

/// Where a local cache lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitKind {
    /// Present locally with a state sufficient for the request.
    Hit,
    /// Present locally but only Shared while the request was a store: an
    /// upgrade (invalidation of remote copies) is required.
    UpgradeMiss,
    /// Not present locally.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: u64,
    state: MsiState,
    /// LRU timestamp: larger = more recently used.
    last_use: u64,
}

/// One cluster's coherent L1 data cache (tag + state store).
#[derive(Debug, Clone)]
pub struct CoherentCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<Line>>,
    tick: u64,
}

impl CoherentCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        geometry
            .validate()
            .expect("cache geometry must be validated before simulation");
        Self {
            geometry,
            sets: vec![Vec::new(); geometry.num_sets() as usize],
            tick: 0,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    fn set_index(&self, block: u64) -> usize {
        (block % self.geometry.num_sets()) as usize
    }

    /// State of the line holding `block`, or [`MsiState::Invalid`] if absent.
    #[must_use]
    pub fn state_of(&self, block: u64) -> MsiState {
        let set = self.set_index(block);
        self.sets[set]
            .iter()
            .find(|l| l.block == block)
            .map_or(MsiState::Invalid, |l| l.state)
    }

    /// Whether the cache currently holds `block` in any valid state.
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        self.state_of(block) != MsiState::Invalid
    }

    /// Looks up `block` for a load (`is_store == false`) or store
    /// (`is_store == true`) **without** allocating. Returns how the local
    /// lookup fared.
    #[must_use]
    pub fn lookup(&self, block: u64, is_store: bool) -> HitKind {
        match self.state_of(block) {
            MsiState::Invalid => HitKind::Miss,
            MsiState::Modified => HitKind::Hit,
            MsiState::Shared => {
                if is_store {
                    HitKind::UpgradeMiss
                } else {
                    HitKind::Hit
                }
            }
        }
    }

    /// Marks `block` as used (LRU update) and, for stores, upgrades its state
    /// to Modified. Call after a [`HitKind::Hit`] or once an upgrade
    /// completes.
    pub fn touch(&mut self, block: u64, is_store: bool) {
        self.tick += 1;
        let set = self.set_index(block);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.block == block) {
            line.last_use = self.tick;
            if is_store {
                line.state = MsiState::Modified;
            }
        }
    }

    /// Allocates `block` in the given state, evicting the LRU line of the set
    /// if the set is full. Returns the evicted block, if any (used by the
    /// memory system to write back / drop state).
    pub fn allocate(&mut self, block: u64, state: MsiState) -> Option<u64> {
        self.tick += 1;
        let ways = self.geometry.associativity as usize;
        let set = self.set_index(block);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.block == block) {
            line.state = state;
            line.last_use = self.tick;
            return None;
        }
        let mut evicted = None;
        if lines.len() >= ways {
            let lru = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            evicted = Some(lines.remove(lru).block);
        }
        lines.push(Line {
            block,
            state,
            last_use: self.tick,
        });
        evicted
    }

    /// Invalidates `block` (snoop-induced). Returns whether a valid copy was
    /// removed.
    pub fn invalidate(&mut self, block: u64) -> bool {
        let set = self.set_index(block);
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|l| l.block == block) {
            lines.remove(pos);
            true
        } else {
            false
        }
    }

    /// Downgrades `block` to Shared (a remote reader snooped it). Returns
    /// whether the block was present in Modified state.
    pub fn downgrade(&mut self, block: u64) -> bool {
        let set = self.set_index(block);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.block == block) {
            let was_modified = line.state == MsiState::Modified;
            line.state = MsiState::Shared;
            was_modified
        } else {
            false
        }
    }

    /// Number of valid lines currently resident.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CoherentCache {
        CoherentCache::new(CacheGeometry::direct_mapped(1024))
    }

    #[test]
    fn empty_cache_misses_everything() {
        let c = cache();
        assert_eq!(c.lookup(0, false), HitKind::Miss);
        assert_eq!(c.state_of(0), MsiState::Invalid);
        assert!(!c.contains(0));
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn allocate_then_hit_and_upgrade() {
        let mut c = cache();
        assert_eq!(c.allocate(5, MsiState::Shared), None);
        assert_eq!(c.lookup(5, false), HitKind::Hit);
        assert_eq!(c.lookup(5, true), HitKind::UpgradeMiss);
        c.touch(5, true);
        assert_eq!(c.state_of(5), MsiState::Modified);
        assert_eq!(c.lookup(5, true), HitKind::Hit);
    }

    #[test]
    fn direct_mapped_conflict_evicts_previous_block() {
        let mut c = cache(); // 32 sets
        c.allocate(3, MsiState::Shared);
        // Block 3 + 32 maps to the same set.
        let evicted = c.allocate(3 + 32, MsiState::Shared);
        assert_eq!(evicted, Some(3));
        assert!(!c.contains(3));
        assert!(c.contains(35));
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = cache();
        c.allocate(7, MsiState::Modified);
        assert!(c.downgrade(7));
        assert_eq!(c.state_of(7), MsiState::Shared);
        assert!(!c.downgrade(7)); // already shared
        assert!(c.invalidate(7));
        assert!(!c.invalidate(7));
        assert_eq!(c.state_of(7), MsiState::Invalid);
    }

    #[test]
    fn lru_is_respected_with_associativity() {
        let geometry = CacheGeometry {
            capacity_bytes: 128,
            block_bytes: 32,
            associativity: 2,
            mshr_entries: 10,
        };
        let mut c = CoherentCache::new(geometry);
        // Set 0 holds even block numbers for this 2-set cache.
        c.allocate(0, MsiState::Shared);
        c.allocate(2, MsiState::Shared);
        c.touch(0, false); // block 2 becomes LRU
        let evicted = c.allocate(4, MsiState::Shared);
        assert_eq!(evicted, Some(2));
        assert!(c.contains(0));
    }

    #[test]
    fn reallocating_a_resident_block_updates_state_without_eviction() {
        let mut c = cache();
        c.allocate(9, MsiState::Shared);
        let evicted = c.allocate(9, MsiState::Modified);
        assert_eq!(evicted, None);
        assert_eq!(c.state_of(9), MsiState::Modified);
        assert_eq!(c.resident_lines(), 1);
    }
}
