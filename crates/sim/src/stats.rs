//! Simulation statistics.

use crate::memory_system::MemoryCounters;
use std::fmt;

/// Result of simulating one schedule on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// `NCYCLE_compute`: cycles the processor spends executing scheduled work
    /// for the simulated iterations.
    pub compute_cycles: u64,
    /// `NCYCLE_stall`: cycles the (lockstep) processor is stalled waiting for
    /// memory values the compiler scheduled optimistically.
    pub stall_cycles: u64,
    /// Number of innermost-loop iterations simulated.
    pub iterations: u64,
    /// Number of times the innermost loop was entered.
    pub executions: u64,
    /// Initiation interval of the simulated schedule.
    pub ii: u32,
    /// Stage count of the simulated schedule.
    pub stage_count: u32,
    /// Memory-system counters.
    pub memory: MemoryCounters,
}

impl SimStats {
    /// `NCYCLE_total = NCYCLE_compute + NCYCLE_stall`.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// Fraction of the total cycles spent stalled.
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / total as f64
        }
    }

    /// Cycles per innermost-loop iteration (total cycles / iterations).
    #[must_use]
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / self.iterations as f64
        }
    }

    /// Total cycles normalised against a reference run (e.g. the Unified
    /// configuration), the y-axis of Figures 5 and 6.
    #[must_use]
    pub fn normalized_to(&self, reference: &SimStats) -> f64 {
        if reference.total_cycles() == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / reference.total_cycles() as f64
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total={} (compute={} + stall={}), {} iterations, II={}, SC={}, misses={}, local hits={}",
            self.total_cycles(),
            self.compute_cycles,
            self.stall_cycles,
            self.iterations,
            self.ii,
            self.stage_count,
            self.memory.misses(),
            self.memory.local_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(compute: u64, stall: u64) -> SimStats {
        SimStats {
            compute_cycles: compute,
            stall_cycles: stall,
            iterations: 100,
            executions: 1,
            ii: 3,
            stage_count: 4,
            memory: MemoryCounters::default(),
        }
    }

    #[test]
    fn totals_and_fractions() {
        let s = stats(300, 100);
        assert_eq!(s.total_cycles(), 400);
        assert!((s.stall_fraction() - 0.25).abs() < 1e-12);
        assert!((s.cycles_per_iteration() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn normalisation_against_a_reference() {
        let clustered = stats(300, 100);
        let unified = stats(320, 0);
        assert!((clustered.normalized_to(&unified) - 1.25).abs() < 1e-12);
        let zero = stats(0, 0);
        assert_eq!(clustered.normalized_to(&zero), 0.0);
        assert_eq!(zero.stall_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_the_breakdown() {
        let s = stats(300, 100);
        let text = s.to_string();
        assert!(text.contains("compute=300"));
        assert!(text.contains("stall=100"));
    }
}
