//! Simulation options.

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Upper bound on the total number of innermost-loop iterations simulated
    /// (across all executions of the loop). The paper runs SPECfp95 until 100
    /// million memory instructions; kernels in this reproduction are sized so
    /// their full trip counts finish in milliseconds, but a cap keeps
    /// experiment sweeps bounded regardless of workload configuration.
    pub max_inner_iterations: u64,
    /// Whether the local caches are flushed every time the innermost loop is
    /// re-entered (cold caches per execution). The default keeps caches warm,
    /// like the real machine would.
    pub flush_between_executions: bool,
}

impl SimOptions {
    /// Default options: effectively unbounded iterations, warm caches.
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_inner_iterations: u64::MAX,
            flush_between_executions: false,
        }
    }

    /// Returns a copy with a bound on the simulated innermost iterations.
    #[must_use]
    pub fn with_max_inner_iterations(mut self, max: u64) -> Self {
        self.max_inner_iterations = max.max(1);
        self
    }

    /// Returns a copy with cold caches at every loop entry.
    #[must_use]
    pub fn with_flush_between_executions(mut self, flush: bool) -> Self {
        self.flush_between_executions = flush;
        self
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_unbounded_and_warm() {
        let o = SimOptions::default();
        assert_eq!(o.max_inner_iterations, u64::MAX);
        assert!(!o.flush_between_executions);
    }

    #[test]
    fn builders_override_and_clamp() {
        let o = SimOptions::new()
            .with_max_inner_iterations(0)
            .with_flush_between_executions(true);
        assert_eq!(o.max_inner_iterations, 1);
        assert!(o.flush_between_executions);
    }
}
