//! The lockstep execution engine.
//!
//! The engine walks the iteration space of the loop nest, issuing every
//! operation of the modulo schedule at its scheduled cycle and accounting the
//! stalls that arise when a load takes longer than the latency the scheduler
//! assumed. Because all clusters run in lockstep, any such stall delays the
//! whole machine; the engine models this with a single global stall counter
//! that shifts every subsequent issue time.

use crate::memory_system::MemorySystem;
use crate::options::SimOptions;
use crate::stats::SimStats;
use mvp_core::Schedule;
use mvp_ir::{EdgeKind, Loop, OpId, OpKind};
use mvp_machine::MachineConfig;

/// Simulates `schedule` (produced for `machine`) executing `l`, and returns
/// the cycle breakdown.
///
/// # Panics
///
/// Panics if the schedule does not cover every operation of the loop (it was
/// produced for a different loop).
#[must_use]
pub fn simulate(
    l: &Loop,
    schedule: &Schedule,
    machine: &MachineConfig,
    options: &SimOptions,
) -> SimStats {
    assert_eq!(
        schedule.ops().len(),
        l.num_ops(),
        "schedule does not match the loop"
    );

    let ii = u64::from(schedule.ii());
    let sc = u64::from(schedule.stage_count());
    let niter = l.iterations();

    // Operations in issue order within one iteration.
    let mut issue_order: Vec<OpId> = l.op_ids().collect();
    issue_order.sort_by_key(|&op| (schedule.placement(op).cycle, op.index()));

    // Ring buffers of load completion times, indexed by iteration modulo the
    // largest dependence distance (+1).
    let max_distance = l.edges().iter().map(|e| e.distance).max().unwrap_or(0) as usize;
    let ring = max_distance + 1;
    let mut ready: Vec<Vec<u64>> = vec![vec![0; ring]; l.num_ops()];

    let mut memory = MemorySystem::new(machine);
    let mut stall_cycles: u64 = 0;
    let mut compute_cycles: u64 = 0;
    let mut iterations_done: u64 = 0;
    let mut executions: u64 = 0;

    // Outer iteration vectors (everything but the innermost dimension).
    let outer_dims = l.nest().num_dims().saturating_sub(1);
    let outer_vectors: Vec<Vec<u64>> = if outer_dims == 0 {
        vec![Vec::new()]
    } else {
        let mut outer_nest = mvp_ir::LoopNest::new();
        for d in &l.nest().dims()[..outer_dims] {
            outer_nest.push_dimension(d.name.clone(), d.trip_count);
        }
        outer_nest.iteration_vectors().collect()
    };

    'outer: for outer in outer_vectors {
        if iterations_done >= options.max_inner_iterations {
            break;
        }
        if options.flush_between_executions && executions > 0 {
            memory.flush_caches();
        }
        executions += 1;
        let exec_base = compute_cycles + stall_cycles;
        let stalls_at_exec_start = stall_cycles;
        let mut iters_this_exec: u64 = 0;
        // Loop-carried values do not survive a fresh execution of the loop.
        for r in &mut ready {
            r.iter_mut().for_each(|x| *x = 0);
        }

        for k in 0..niter.max(1) {
            if iterations_done >= options.max_inner_iterations {
                compute_cycles += (iters_this_exec + sc - 1) * ii;
                continue 'outer;
            }
            let mut iv: Vec<u64> = outer.clone();
            if l.nest().num_dims() > 0 {
                iv.push(k);
            }
            let base = exec_base + k * ii;

            for &op in &issue_order {
                let place = schedule.placement(op);
                // Issue time: the static position of the operation plus every
                // stall the lockstep machine has suffered since this
                // execution of the loop started.
                let mut issue =
                    base + u64::from(place.cycle) + (stall_cycles - stalls_at_exec_start);

                // Wait for operands produced by loads that are still in
                // flight (the scheduler assumed a shorter latency).
                for e in l.preds(op) {
                    if e.kind != EdgeKind::Data {
                        continue;
                    }
                    if l.op(e.src).kind != OpKind::Load {
                        continue;
                    }
                    let d = u64::from(e.distance);
                    if d > k {
                        continue; // value comes from the prologue: assume ready
                    }
                    let producer_iter = (k - d) as usize % ring;
                    let available = ready[e.src.index()][producer_iter];
                    if available > issue {
                        let stall = available - issue;
                        stall_cycles += stall;
                        issue += stall;
                    }
                }

                // Perform the memory access, if any.
                if l.op(op).is_memory() {
                    let address = l
                        .address_of(op, &iv)
                        .expect("memory operations always have an address");
                    let is_store = l.op(op).kind == OpKind::Store;
                    let outcome = memory.access(place.cluster, address, is_store, issue);
                    if l.op(op).is_load() {
                        ready[op.index()][(k as usize) % ring] = issue + outcome.latency;
                    }
                }
            }

            iterations_done += 1;
            iters_this_exec += 1;
        }
        compute_cycles += (iters_this_exec + sc - 1) * ii;
    }

    SimStats {
        compute_cycles,
        stall_cycles,
        iterations: iterations_done,
        executions,
        ii: schedule.ii(),
        stage_count: schedule.stage_count(),
        memory: memory.counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::{BaselineScheduler, ModuloScheduler, RmcaScheduler, SchedulerOptions};
    use mvp_machine::presets;

    /// A streaming loop whose loads always have consumers two cycles later:
    /// with hit-latency scheduling every cold/capacity miss stalls the
    /// machine, with miss-latency scheduling (threshold 0.0) the stalls
    /// disappear.
    fn streaming_loop(trip: u64) -> Loop {
        let mut b = Loop::builder("stream");
        let i = b.dimension("I", trip);
        // The two arrays are offset by half a cache so they do not conflict
        // in the 4 KB per-cluster caches of the 2-cluster preset.
        let a = b.array("A", 0, 64 * 1024);
        let c = b.array("C", 128 * 1024 + 2048, 64 * 1024);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(c).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn totals_are_compute_plus_stall() {
        let l = streaming_loop(200);
        let machine = presets::two_cluster();
        let s = BaselineScheduler::new().schedule(&l, &machine).unwrap();
        let stats = simulate(&l, &s, &machine, &SimOptions::new());
        assert_eq!(
            stats.total_cycles(),
            stats.compute_cycles + stats.stall_cycles
        );
        assert_eq!(stats.iterations, 200);
        assert_eq!(stats.executions, 1);
        assert_eq!(stats.compute_cycles, s.compute_cycles(1, 200));
        assert!(stats.memory.accesses >= 400);
    }

    #[test]
    fn hit_latency_scheduling_stalls_and_miss_latency_scheduling_does_not() {
        let l = streaming_loop(512);
        let machine = presets::two_cluster();

        let hit = BaselineScheduler::new().schedule(&l, &machine).unwrap();
        let hit_stats = simulate(&l, &hit, &machine, &SimOptions::new());
        // Every 4th iteration brings a new block from memory: stalls happen.
        assert!(hit_stats.stall_cycles > 0, "{hit_stats}");

        let opts = SchedulerOptions::new().with_threshold(0.0);
        let miss = BaselineScheduler::with_options(opts)
            .schedule(&l, &machine)
            .unwrap();
        let miss_stats = simulate(&l, &miss, &machine, &SimOptions::new());
        // Binding prefetching hides (almost) the whole miss latency.
        assert!(
            miss_stats.stall_cycles * 10 < hit_stats.stall_cycles,
            "miss-scheduled stalls {} should be far below hit-scheduled stalls {}",
            miss_stats.stall_cycles,
            hit_stats.stall_cycles
        );
        // The compute part grows (longer schedule, possibly larger SC).
        assert!(miss_stats.compute_cycles >= hit_stats.compute_cycles);
    }

    #[test]
    fn iteration_cap_limits_the_simulation() {
        let l = streaming_loop(1000);
        let machine = presets::unified();
        let s = RmcaScheduler::new().schedule(&l, &machine).unwrap();
        let stats = simulate(
            &l,
            &s,
            &machine,
            &SimOptions::new().with_max_inner_iterations(64),
        );
        assert_eq!(stats.iterations, 64);
        assert_eq!(stats.compute_cycles, s.compute_cycles(1, 64));
    }

    #[test]
    fn unified_machine_has_no_remote_fills() {
        let l = streaming_loop(256);
        let machine = presets::unified();
        let s = BaselineScheduler::new().schedule(&l, &machine).unwrap();
        let stats = simulate(&l, &s, &machine, &SimOptions::new());
        assert_eq!(stats.memory.remote_fills, 0);
        assert_eq!(stats.memory.invalidations, 0);
    }

    #[test]
    fn nested_loops_re_enter_the_kernel() {
        let mut b = Loop::builder("nested");
        let j = b.dimension("J", 3);
        let i = b.dimension("I", 50);
        let a = b.auto_array("A", 64 * 1024);
        let ld = b.load("LD", b.array_ref(a).stride(j, 4096).stride(i, 8).build());
        let f = b.fp_op("F");
        b.data_edge(ld, f, 0);
        let l = b.build().unwrap();
        let machine = presets::two_cluster();
        let s = BaselineScheduler::new().schedule(&l, &machine).unwrap();
        let stats = simulate(&l, &s, &machine, &SimOptions::new());
        assert_eq!(stats.executions, 3);
        assert_eq!(stats.iterations, 150);
        assert_eq!(stats.compute_cycles, s.compute_cycles(3, 50));
        // Flushing between executions can only increase misses.
        let cold = simulate(
            &l,
            &s,
            &machine,
            &SimOptions::new().with_flush_between_executions(true),
        );
        assert!(cold.memory.misses() >= stats.memory.misses());
    }
}
