//! Memory-bus arbitration model.
//!
//! The clusters' local caches and main memory are connected by one or more
//! memory buses. A transaction (miss request + fill, or a coherence
//! invalidation) occupies a bus for the bus latency; when every bus is busy
//! the requester waits (`NC_WaitingBus` in the paper's latency model).
//!
//! The model is slot based: time is divided into windows of one bus latency,
//! and each window can start at most as many transactions as there are
//! buses. This makes the model insensitive to the order in which requests
//! are presented (the execution engine walks the iteration space iteration by
//! iteration, so overlapping iterations can present their requests slightly
//! out of time order) while still capturing both occasional contention and
//! sustained saturation.

use mvp_machine::{BusConfig, BusCount};
use std::collections::HashMap;

/// Arbitrated set of memory buses.
#[derive(Debug, Clone)]
pub struct MemoryBuses {
    latency: u64,
    /// Transactions each window may start; `None` = unbounded buses.
    capacity: Option<usize>,
    /// Number of transactions already booked per window.
    windows: HashMap<u64, usize>,
    transactions: u64,
    wait_cycles: u64,
}

impl MemoryBuses {
    /// Creates the bus model from a machine's memory-bus configuration.
    #[must_use]
    pub fn new(config: BusConfig) -> Self {
        let capacity = match config.count {
            BusCount::Finite(n) => Some(n.max(1)),
            BusCount::Unbounded => None,
        };
        Self {
            latency: u64::from(config.latency.max(1)),
            capacity,
            windows: HashMap::new(),
            transactions: 0,
            wait_cycles: 0,
        }
    }

    /// Latency of one bus transaction.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Requests a bus at time `now`. Returns `(wait, grant_time)`: the cycles
    /// spent waiting for a free bus and the time at which the transaction
    /// starts.
    pub fn request(&mut self, now: u64) -> (u64, u64) {
        self.transactions += 1;
        let Some(capacity) = self.capacity else {
            return (0, now);
        };
        let mut window = now / self.latency;
        loop {
            let used = self.windows.entry(window).or_insert(0);
            if *used < capacity {
                *used += 1;
                let grant = now.max(window * self.latency);
                let wait = grant - now;
                self.wait_cycles += wait;
                return (wait, grant);
            }
            window += 1;
        }
    }

    /// Total transactions issued so far.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total cycles spent waiting for a free bus.
    #[must_use]
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::BusConfig;

    #[test]
    fn unbounded_buses_never_wait() {
        let mut buses = MemoryBuses::new(BusConfig::unbounded(4));
        for t in 0..10 {
            let (wait, grant) = buses.request(t);
            assert_eq!(wait, 0);
            assert_eq!(grant, t);
        }
        assert_eq!(buses.transactions(), 10);
        assert_eq!(buses.wait_cycles(), 0);
    }

    #[test]
    fn single_bus_serialises_back_to_back_requests() {
        let mut buses = MemoryBuses::new(BusConfig::finite(1, 4));
        let (w1, g1) = buses.request(0);
        assert_eq!((w1, g1), (0, 0));
        // Second request at time 1 falls in the same 4-cycle window, which is
        // already full: it waits for the next window.
        let (w2, g2) = buses.request(1);
        assert_eq!((w2, g2), (3, 4));
        // Third at time 10: a fresh window, no wait.
        let (w3, g3) = buses.request(10);
        assert_eq!((w3, g3), (0, 10));
        assert_eq!(buses.wait_cycles(), 3);
    }

    #[test]
    fn two_buses_overlap_two_requests() {
        let mut buses = MemoryBuses::new(BusConfig::finite(2, 4));
        assert_eq!(buses.request(0), (0, 0));
        assert_eq!(buses.request(0), (0, 0));
        // The third request waits for the next window.
        assert_eq!(buses.request(0), (4, 4));
        assert_eq!(buses.latency(), 4);
    }

    #[test]
    fn out_of_order_requests_do_not_penalise_earlier_times() {
        let mut buses = MemoryBuses::new(BusConfig::finite(1, 1));
        // A request far in the future...
        assert_eq!(buses.request(100), (0, 100));
        // ...must not delay a request that happens earlier in simulated time.
        assert_eq!(buses.request(5), (0, 5));
        assert_eq!(buses.wait_cycles(), 0);
    }

    #[test]
    fn sustained_overload_accumulates_wait() {
        // One bus, latency 2: capacity is one transaction per 2 cycles, but
        // we submit one per cycle — waits must grow.
        let mut buses = MemoryBuses::new(BusConfig::finite(1, 2));
        let mut total_wait = 0;
        for t in 0..20 {
            let (wait, _) = buses.request(t);
            total_wait += wait;
        }
        assert!(total_wait > 0);
        assert_eq!(buses.wait_cycles(), total_wait);
    }
}
