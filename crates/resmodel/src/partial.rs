//! The incremental modulo-constraint kernel: a partial schedule that grows
//! and shrinks one placement (or one bus transfer) at a time, answering
//! every legality question in O(delta) — the degree of the operation being
//! touched — instead of re-deriving global state.
//!
//! [`PartialSchedule`] is the single source of truth for placement legality
//! in this workspace: the heuristic assign-and-schedule engine, the list
//! scheduler's modulo publication and the exact branch-and-bound search all
//! reserve through it (the independent validator of `mvp-core` deliberately
//! does *not* — it re-derives every rule from scratch so it can serve as a
//! differential oracle against this kernel).
//!
//! # Rule map
//!
//! Every rule the kernel enforces maps one-to-one onto a violation of the
//! `mvp_core::validate` oracle and onto a constraint of the paper's
//! Section 4 scheduling discipline:
//!
//! | kernel rule (API) | validator counterpart | paper constraint |
//! |---|---|---|
//! | at most `fu_count` occupants per (cluster, unit kind, `cycle % II`) ([`PartialSchedule::try_reserve_op`]) | `FuOversubscribed` | modulo reservation table, §4.1 |
//! | placements carry the hit latency, or the miss latency for miss-scheduled loads ([`PartialSchedule::try_reserve_op`]) | `LatencyMismatch`, `MissScheduledNonLoad` | binding prefetching, §4.3 |
//! | `cycle(dst) + II·distance ≥ cycle(src) + latency (+ bus latency when clusters differ)` ([`PartialSchedule::neighbour_bounds`]) | `DependenceViolated` | dependence constraint incl. inter-cluster copy, §2.1/§4.1 |
//! | a transfer starts after the producer completes and ends before the consumer starts, modulo II ([`PartialSchedule::transfer_pairs`], [`PartialSchedule::transfer_serves_edge`]) | `CommunicationOutsideWindow` | register-bus communication window, §2.1 |
//! | on finite bus sets, one transfer per (bus, modulo row) for the full bus latency; transfers longer than the II are rejected ([`PartialSchedule::reserve_transfer_at`], [`PartialSchedule::reserve_transfer_earliest`]) | `BusOverlap`, `BusOutOfRange` | finite register-bus occupancy, §2.1 |
//! | every cross-cluster data edge carries at least one transfer ([`PartialSchedule::all_cross_edges_covered`]) | `MissingCommunication`, `SpuriousCommunication` | one copy per iteration, §2.1 |
//! | incremental MaxLive lower bound per cluster ([`PartialSchedule::pressure_exceeded`]), exact recomputation at freeze ([`PartialSchedule::freeze`]) | `RegisterFileOverflow`, `RegisterPressureMismatch` | register-file capacity, §4.2 |
//!
//! # Incrementality
//!
//! [`place`](PartialSchedule::place) / [`unplace`](PartialSchedule::unplace)
//! (and the finer-grained reserve/release pairs beneath them) cost
//! O(degree) each: functional-unit rows and bus rows are occupancy stacks,
//! and the MaxLive lower bound is maintained as a running per-cluster total
//! with per-operation lifetime maxima, so a search that places and unplaces
//! millions of candidates never recomputes pressure over the whole loop.
//! Releases must follow reservation order (LIFO), which every client —
//! depth-first search, probe-and-undo heuristics — naturally satisfies;
//! debug builds assert it.

use crate::lifetime;
use crate::model::ResModel;
use crate::schedule::{Communication, PlacedOp, Schedule};
use mvp_ir::{EdgeKind, OpId};
use mvp_machine::ClusterId;

/// Identifier recorded in kernel occupancy slots. Purely informational for
/// the kernel itself; conflict reports return the *maximum* token in the
/// way, which lets search clients use decision levels as tokens and
/// backjump to the deepest implicated level.
pub type Token = u32;

/// Identifier of one reserved bus transfer (its position in the transfer
/// stack). Only the most recent transfer can be released.
pub type TransferId = usize;

/// One committed placement inside a [`PartialSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placed {
    /// Cluster the operation is placed in.
    pub cluster: ClusterId,
    /// Signed start cycle. [`PartialSchedule::freeze`] shifts the whole
    /// schedule by a multiple of the II so exported cycles are non-negative
    /// (which keeps every modulo row intact).
    pub cycle: i64,
    /// Latency this placement assumes (hit latency, or the miss latency for
    /// miss-scheduled loads).
    pub latency: u32,
    /// Whether the placement is a miss-scheduled load (binding prefetching).
    pub miss_scheduled: bool,
    /// Token the placement was reserved with.
    pub token: Token,
}

/// Why a placement attempt was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlaceError {
    /// Every functional unit of the operation's kind in the target cluster
    /// is busy in the target modulo row (or the cluster has no unit of the
    /// kind at all). `conflict` is the maximum occupant token, `None` when
    /// the cluster has no unit of the kind.
    FuBusy {
        /// Maximum token among the occupants in the way.
        conflict: Option<Token>,
    },
    /// The assumed latency does not match the machine's latency table for
    /// this operation (hit latency, or miss latency for miss-scheduled
    /// loads).
    LatencyMismatch,
    /// A non-load operation was flagged as miss-scheduled.
    MissScheduledNonLoad,
    /// The start cycle violates a dependence towards an already-placed
    /// neighbour (outside the [`NeighbourBounds`] window).
    OutsideWindow,
    /// A register-bus transfer towards an already-placed neighbour could
    /// not be reserved inside its window.
    TransferFailed,
}

/// Start-cycle bounds imposed on one operation by its already-placed
/// neighbours, as computed by [`PartialSchedule::neighbour_bounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighbourBounds {
    /// Earliest legal start cycle (`None` when no placed predecessor
    /// constrains the operation beyond the caller's initial bound).
    pub lo: Option<i64>,
    /// Latest legal start cycle (`None` when no placed successor constrains
    /// the operation beyond the caller's initial bound).
    pub hi: Option<i64>,
    /// Maximum token among the neighbours that tightened either bound
    /// (`None` when only the caller's initial window applies). Search
    /// clients use this for conflict-driven backjumping.
    pub culprit: Option<Token>,
}

impl NeighbourBounds {
    /// Whether `cycle` lies inside the window.
    #[must_use]
    pub fn admits(&self, cycle: i64) -> bool {
        self.lo.is_none_or(|lo| cycle >= lo) && self.hi.is_none_or(|hi| cycle <= hi)
    }
}

/// One cross-cluster register transfer implied by a placement: the merged
/// (producer, consumer) pair with its start-cycle window, as computed by
/// [`PartialSchedule::transfer_pairs`]. Parallel data edges between the same
/// pair share one transfer whose window is intersected over the edges (the
/// one-copy-per-iteration reading).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPair {
    /// Operation producing the value.
    pub src: OpId,
    /// Operation consuming the value.
    pub dst: OpId,
    /// Cluster the value leaves.
    pub from: ClusterId,
    /// Cluster the value enters.
    pub to: ClusterId,
    /// Earliest legal start cycle (producer completion).
    pub lo: i64,
    /// Latest legal start cycle (consumer start minus the bus latency,
    /// minimised over parallel edges).
    pub hi: i64,
    /// Token of the already-placed neighbour that implies the transfer.
    pub neighbour_token: Token,
}

/// Handle returned by the composite [`PartialSchedule::place`]: names the
/// placed operation and the transfers booked with it, so
/// [`unplace`](PartialSchedule::unplace) can undo exactly that delta.
#[derive(Debug)]
#[must_use = "dropping a PlaceHandle keeps the placement; pass it to unplace() to undo"]
pub struct PlaceHandle {
    op: OpId,
    transfers: usize,
}

impl PlaceHandle {
    /// The placed operation.
    #[must_use]
    pub fn op(&self) -> OpId {
        self.op
    }

    /// Number of bus transfers booked with the placement.
    #[must_use]
    pub fn num_transfers(&self) -> usize {
        self.transfers
    }
}

/// A transfer record on the reservation stack (signed start cycle; shifted
/// to non-negative at freeze).
#[derive(Debug, Clone, Copy)]
struct CommRec {
    src: OpId,
    dst: OpId,
    from: ClusterId,
    to: ClusterId,
    start: i64,
    bus: usize,
    token: Token,
}

/// Undo information for one placement's pressure delta.
#[derive(Debug, Default, Clone)]
struct PressureFrame {
    /// `(producer, previous max lifetime)` for every producer whose
    /// lifetime maximum this placement changed (including the placed
    /// operation itself).
    producer_old_life: Vec<(OpId, Option<i64>)>,
    /// `(producer, consuming cluster)` for every cross-cluster copy count
    /// this placement incremented.
    copy_increments: Vec<(OpId, ClusterId)>,
}

/// The incremental modulo-constraint kernel: one partial schedule at a
/// fixed II over a [`ResModel`], supporting O(delta) reserve/release of
/// operation placements and register-bus transfers, per-rule legality
/// queries, and a [`freeze`](PartialSchedule::freeze) exporter.
///
/// See the [module documentation](self) for the rule map and the
/// incrementality contract.
#[derive(Debug)]
pub struct PartialSchedule<'r, 'l, 'm> {
    model: &'r ResModel<'l, 'm>,
    ii: u32,
    placements: Vec<Option<Placed>>,
    placed_count: usize,
    /// Occupant tokens per (cluster, unit kind, modulo row).
    fu_rows: Vec<[Vec<Vec<Token>>; 3]>,
    /// Occupant token per (bus, modulo row); `None` for unbounded bus sets.
    bus_rows: Option<Vec<Vec<Option<Token>>>>,
    /// Reservation stack of bus transfers.
    comms: Vec<CommRec>,
    /// Incremental per-cluster MaxLive lower bound over the placed prefix.
    pressure: Vec<u32>,
    /// Current maximum lifetime of each producing operation's value over
    /// its placed consumers.
    max_life: Vec<Option<i64>>,
    /// Cross-cluster copy counts per producer: `(cluster, edges)` — a
    /// cluster holds one copy register while any placed consumer edge
    /// reaches it.
    copy_counts: Vec<Vec<(ClusterId, u32)>>,
    /// Per-operation pressure undo frames.
    frames: Vec<Option<PressureFrame>>,
}

/// Registers a value of the given maximum lifetime occupies: one per II the
/// value stays alive, with same-cycle consumption still pinning one
/// register. `None` (no placed consumer yet) alone contributes nothing —
/// the *final-pressure floor* for such producers is layered on top by
/// [`PartialSchedule::producer_regs`].
fn regs(life: Option<i64>, ii: i64) -> u32 {
    match life {
        None => 0,
        Some(0) => 1,
        Some(l) => ((l + ii - 1) / ii) as u32,
    }
}

impl<'r, 'l, 'm> PartialSchedule<'r, 'l, 'm> {
    /// Creates an empty partial schedule at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics when `ii` is zero (no modulo table exists).
    #[must_use]
    pub fn new(model: &'r ResModel<'l, 'm>, ii: u32) -> Self {
        assert!(ii > 0, "a modulo schedule needs a positive II");
        let n = model.num_ops();
        let rows = ii as usize;
        Self {
            model,
            ii,
            placements: vec![None; n],
            placed_count: 0,
            fu_rows: (0..model.machine.num_clusters())
                .map(|_| {
                    [
                        vec![Vec::new(); rows],
                        vec![Vec::new(); rows],
                        vec![Vec::new(); rows],
                    ]
                })
                .collect(),
            bus_rows: model.num_buses.map(|b| vec![vec![None; rows]; b]),
            comms: Vec::new(),
            pressure: vec![0; model.machine.num_clusters()],
            max_life: vec![None; n],
            copy_counts: vec![Vec::new(); n],
            frames: vec![None; n],
        }
    }

    /// The model this schedule is built over.
    #[must_use]
    pub fn model(&self) -> &'r ResModel<'l, 'm> {
        self.model
    }

    /// The initiation interval.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of operations currently placed.
    #[must_use]
    pub fn num_placed(&self) -> usize {
        self.placed_count
    }

    /// Number of bus transfers currently reserved.
    #[must_use]
    pub fn num_transfers(&self) -> usize {
        self.comms.len()
    }

    /// The current placement of `op`, if any.
    #[must_use]
    pub fn placement(&self, op: OpId) -> Option<&Placed> {
        self.placements[op.index()].as_ref()
    }

    /// Highest cluster index any placed operation occupies (symmetry
    /// breaking over interchangeable clusters keys off this).
    #[must_use]
    pub fn max_used_cluster(&self) -> Option<ClusterId> {
        self.placements.iter().flatten().map(|p| p.cluster).max()
    }

    /// Highest bus index any reserved transfer occupies (`None` on an empty
    /// or unbounded bus set).
    #[must_use]
    pub fn max_used_bus(&self) -> Option<usize> {
        self.bus_rows.as_ref().and_then(|rows| {
            rows.iter()
                .enumerate()
                .filter(|(_, r)| r.iter().any(Option::is_some))
                .map(|(b, _)| b)
                .max()
        })
    }

    fn row_of(&self, cycle: i64) -> usize {
        cycle.rem_euclid(i64::from(self.ii)) as usize
    }

    /// Start-cycle bounds imposed on `op` in `cluster` by its already-placed
    /// neighbours, tightened from the caller's initial window. Predecessors
    /// raise the lower bound by `cycle + latency (+ bus latency when
    /// clusters differ) − II·distance`; successors lower the upper bound
    /// symmetrically (the validator's `DependenceViolated` rule, solved for
    /// the free endpoint). `culprit` accumulates the maximum token among
    /// every neighbour that strictly tightened a bound.
    ///
    /// Self-loop edges are excluded: both endpoints shift together, so they
    /// constrain the *II*, not the start cycle — query
    /// [`self_edges_admit`](Self::self_edges_admit) for that rule.
    #[must_use]
    pub fn neighbour_bounds(
        &self,
        op: OpId,
        cluster: ClusterId,
        assumed_latency: u32,
        init_lo: Option<i64>,
        init_hi: Option<i64>,
    ) -> NeighbourBounds {
        let ii = i64::from(self.ii);
        let bus_lat = i64::from(self.model.bus_latency);
        let mut lo = init_lo;
        let mut hi = init_hi;
        let mut culprit: Option<Token> = None;
        for e in self.model.l.preds(op) {
            if e.src == op {
                continue; // self-loop: both endpoints move together
            }
            let Some(p) = self.placements[e.src.index()] else {
                continue;
            };
            let lat = if e.kind == EdgeKind::Data {
                i64::from(p.latency)
            } else {
                1
            };
            let comm = if e.kind == EdgeKind::Data && p.cluster != cluster {
                bus_lat
            } else {
                0
            };
            let bound = p.cycle + lat + comm - ii * i64::from(e.distance);
            if lo.is_none_or(|x| bound > x) {
                lo = Some(bound);
                culprit = culprit.max(Some(p.token));
            }
        }
        for e in self.model.l.succs(op) {
            if e.dst == op {
                continue;
            }
            let Some(s) = self.placements[e.dst.index()] else {
                continue;
            };
            let lat = if e.kind == EdgeKind::Data {
                i64::from(assumed_latency)
            } else {
                1
            };
            let comm = if e.kind == EdgeKind::Data && s.cluster != cluster {
                bus_lat
            } else {
                0
            };
            let bound = s.cycle + ii * i64::from(e.distance) - lat - comm;
            if hi.is_none_or(|x| bound < x) {
                hi = Some(bound);
                culprit = culprit.max(Some(s.token));
            }
        }
        NeighbourBounds { lo, hi, culprit }
    }

    /// Whether every self-loop edge of `op` is satisfied at this II with
    /// the given assumed latency. A self-loop shifts with its own
    /// placement, so the validator's `DependenceViolated` rule degenerates
    /// to a pure II constraint: `II · distance ≥ latency` (1 for
    /// memory-ordering edges; the bus term never applies — one operation
    /// occupies one cluster). The builders discharge this rule up front via
    /// `RecMII` / window propagation, so it is primarily a replay/oracle
    /// query.
    #[must_use]
    pub fn self_edges_admit(&self, op: OpId, assumed_latency: u32) -> bool {
        let ii = i64::from(self.ii);
        self.model.l.preds(op).filter(|e| e.src == op).all(|e| {
            let lat = if e.kind == EdgeKind::Data {
                i64::from(assumed_latency)
            } else {
                1
            };
            ii * i64::from(e.distance) >= lat
        })
    }

    /// Reserves the functional-unit slot for `op` in `cluster` at `cycle`
    /// and commits the placement — *without* checking dependences or
    /// booking transfers (search clients enumerate those as separate
    /// decisions; the composite [`place`](Self::place) does everything at
    /// once). O(1) plus the O(degree) pressure delta.
    ///
    /// # Errors
    ///
    /// [`PlaceError::FuBusy`] when every unit of the kind is occupied in the
    /// modulo row (carrying the maximum occupant token),
    /// [`PlaceError::LatencyMismatch`] / [`PlaceError::MissScheduledNonLoad`]
    /// when the assumed latency breaks the machine's latency table.
    pub fn try_reserve_op(
        &mut self,
        op: OpId,
        cluster: ClusterId,
        cycle: i64,
        assumed_latency: u32,
        miss_scheduled: bool,
        token: Token,
    ) -> Result<(), PlaceError> {
        debug_assert!(
            self.placements[op.index()].is_none(),
            "{op} is already placed"
        );
        if miss_scheduled && !self.model.l.op(op).is_load() {
            return Err(PlaceError::MissScheduledNonLoad);
        }
        if assumed_latency != self.model.expected_latency(op, miss_scheduled) {
            return Err(PlaceError::LatencyMismatch);
        }
        let kind = self.model.fu_kind[op.index()].index();
        let capacity = self.model.fu_count[cluster][kind];
        let row = self.row_of(cycle);
        let occupants = &self.fu_rows[cluster][kind][row];
        if occupants.len() >= capacity {
            return Err(PlaceError::FuBusy {
                conflict: occupants.iter().copied().max(),
            });
        }
        self.fu_rows[cluster][kind][row].push(token);
        self.placements[op.index()] = Some(Placed {
            cluster,
            cycle,
            latency: assumed_latency,
            miss_scheduled,
            token,
        });
        self.placed_count += 1;
        self.add_pressure(op);
        #[cfg(debug_assertions)]
        self.debug_check_pressure();
        Ok(())
    }

    /// Releases the placement of `op` (the inverse of
    /// [`try_reserve_op`](Self::try_reserve_op)). Transfers booked while
    /// `op` was placed must be released first.
    ///
    /// # Panics
    ///
    /// Panics when `op` is not placed.
    pub fn release_op(&mut self, op: OpId) {
        let p = self.placements[op.index()].expect("release_op on an unplaced operation");
        debug_assert!(
            !self.comms.iter().any(|c| c.src == op || c.dst == op),
            "transfers touching {op} must be released before the placement"
        );
        self.remove_pressure(op);
        let kind = self.model.fu_kind[op.index()].index();
        let row = self.row_of(p.cycle);
        let popped = self.fu_rows[p.cluster][kind][row].pop();
        debug_assert_eq!(popped, Some(p.token), "FU releases must be LIFO");
        self.placements[op.index()] = None;
        self.placed_count -= 1;
    }

    /// Places `op` with every legality rule enforced at once: dependence
    /// window, functional-unit slot, latency legality, and one register-bus
    /// transfer per cross-cluster data edge towards an already-placed
    /// neighbour (incoming transfers first, then outgoing, each booked at
    /// the earliest free start cycle on the lowest free bus). On failure the
    /// kernel state is left exactly as before the call.
    ///
    /// # Errors
    ///
    /// Any [`PlaceError`]; see [`try_reserve_op`](Self::try_reserve_op) and
    /// [`reserve_transfer_earliest`](Self::reserve_transfer_earliest).
    pub fn place(
        &mut self,
        op: OpId,
        cluster: ClusterId,
        cycle: i64,
        assumed_latency: u32,
        miss_scheduled: bool,
        token: Token,
    ) -> Result<PlaceHandle, PlaceError> {
        let bounds = self.neighbour_bounds(op, cluster, assumed_latency, None, None);
        self.place_in_window(
            op,
            cluster,
            cycle,
            assumed_latency,
            miss_scheduled,
            token,
            &bounds,
        )
    }

    /// [`place`](Self::place) with a caller-supplied dependence window.
    ///
    /// [`place`](Self::place) recomputes
    /// [`neighbour_bounds`](Self::neighbour_bounds) — an O(degree) walk
    /// over the operation's edges — on *every* call, but a scheduler probing many candidate
    /// cycles for one `(op, cluster, latency)` choice faces the same window
    /// each time: no neighbour moves between candidates. This variant lets
    /// the caller compute the window once per choice and sweep the
    /// candidate cycles against it, which is the list schedulers' hottest
    /// placement loop.
    ///
    /// `bounds` must come from [`neighbour_bounds`](Self::neighbour_bounds)
    /// for the same `(op, cluster, assumed_latency)` against the *current*
    /// kernel state (no placements or releases in between), possibly
    /// tightened by an initial window; debug builds re-derive the window
    /// and assert the cycle is genuinely legal.
    ///
    /// # Errors
    ///
    /// Any [`PlaceError`]; see [`place`](Self::place).
    #[allow(clippy::too_many_arguments)]
    pub fn place_in_window(
        &mut self,
        op: OpId,
        cluster: ClusterId,
        cycle: i64,
        assumed_latency: u32,
        miss_scheduled: bool,
        token: Token,
        bounds: &NeighbourBounds,
    ) -> Result<PlaceHandle, PlaceError> {
        if !bounds.admits(cycle) {
            return Err(PlaceError::OutsideWindow);
        }
        debug_assert!(
            self.neighbour_bounds(op, cluster, assumed_latency, None, None)
                .admits(cycle),
            "stale caller window admitted cycle {cycle} for {op}"
        );
        self.try_reserve_op(op, cluster, cycle, assumed_latency, miss_scheduled, token)?;

        let ii = i64::from(self.ii);
        let bus_lat = i64::from(self.model.bus_latency);
        let l = self.model.l;
        let mut booked: Vec<TransferId> = Vec::new();
        let mut ok = true;
        // Incoming transfers: a value produced in another cluster must
        // reach this cluster before `cycle`.
        for e in l.preds(op) {
            if e.kind != EdgeKind::Data {
                continue;
            }
            let Some(p) = self.placements[e.src.index()] else {
                continue;
            };
            if p.cluster == cluster {
                continue;
            }
            let ready = p.cycle + i64::from(p.latency) - ii * i64::from(e.distance);
            let start_max = cycle - bus_lat;
            match self
                .reserve_transfer_earliest(e.src, op, p.cluster, cluster, ready, start_max, token)
            {
                Some(id) => booked.push(id),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        // Outgoing transfers: the value produced here must reach already
        // placed consumers in other clusters before their start cycle.
        if ok {
            for e in l.succs(op) {
                if e.kind != EdgeKind::Data {
                    continue;
                }
                let Some(s) = self.placements[e.dst.index()] else {
                    continue;
                };
                if s.cluster == cluster || e.dst == op {
                    continue;
                }
                let ready = cycle + i64::from(assumed_latency);
                let deadline = s.cycle + ii * i64::from(e.distance);
                let start_max = deadline - bus_lat;
                match self.reserve_transfer_earliest(
                    op, e.dst, cluster, s.cluster, ready, start_max, token,
                ) {
                    Some(id) => booked.push(id),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok {
            for id in booked.into_iter().rev() {
                self.release_transfer(id);
            }
            self.release_op(op);
            return Err(PlaceError::TransferFailed);
        }
        Ok(PlaceHandle {
            op,
            transfers: booked.len(),
        })
    }

    /// Undoes a [`place`](Self::place): releases the booked transfers and
    /// the placement. Must be called in reverse placement order (LIFO).
    pub fn unplace(&mut self, handle: PlaceHandle) {
        for _ in 0..handle.transfers {
            self.release_transfer(self.comms.len() - 1);
        }
        self.release_op(handle.op);
    }

    /// Reserves one register-bus transfer whose start cycle must lie in
    /// `[start_min, start_max]`, greedily: start cycles are tried earliest
    /// first (at most II of them — only II distinct modulo rows exist) and
    /// buses lowest-index first. Unbounded bus sets always succeed at
    /// `start_min` on bus 0; finite sets reject transfers longer than the II
    /// outright (they would overlap their own next-iteration instance).
    /// Returns the transfer id, or `None` when no (start, bus) fits.
    #[allow(clippy::too_many_arguments)]
    pub fn reserve_transfer_earliest(
        &mut self,
        src: OpId,
        dst: OpId,
        from: ClusterId,
        to: ClusterId,
        start_min: i64,
        start_max: i64,
        token: Token,
    ) -> Option<TransferId> {
        if start_max < start_min {
            return None;
        }
        let ii = i64::from(self.ii);
        let Some(num_buses) = self.bus_rows.as_ref().map(Vec::len) else {
            self.comms.push(CommRec {
                src,
                dst,
                from,
                to,
                start: start_min,
                bus: 0,
                token,
            });
            return Some(self.comms.len() - 1);
        };
        if i64::from(self.model.bus_latency) > ii {
            return None;
        }
        let span = self.model.bus_latency as usize;
        let tries = (start_max - start_min + 1).min(ii);
        for offset in 0..tries {
            let start = start_min + offset;
            let rows: Vec<usize> = (0..span).map(|o| self.row_of(start + o as i64)).collect();
            for bus in 0..num_buses {
                let table = self.bus_rows.as_ref().expect("finite bus set");
                if rows.iter().all(|&r| table[bus][r].is_none()) {
                    let table = self.bus_rows.as_mut().expect("finite bus set");
                    for &r in &rows {
                        table[bus][r] = Some(token);
                    }
                    self.comms.push(CommRec {
                        src,
                        dst,
                        from,
                        to,
                        start,
                        bus,
                        token,
                    });
                    return Some(self.comms.len() - 1);
                }
            }
        }
        None
    }

    /// Reserves one register-bus transfer at an explicit (start, bus)
    /// choice — the primitive search clients enumerate over.
    ///
    /// # Errors
    ///
    /// `Err(max occupant token)` when some row of the transfer window is
    /// occupied on that bus; `Err(None)` when the bus is out of range or the
    /// transfer is longer than the II (never legal on a finite bus set).
    #[allow(clippy::too_many_arguments)]
    pub fn reserve_transfer_at(
        &mut self,
        src: OpId,
        dst: OpId,
        from: ClusterId,
        to: ClusterId,
        start: i64,
        bus: usize,
        token: Token,
    ) -> Result<TransferId, Option<Token>> {
        let ii = i64::from(self.ii);
        if let Some(num_buses) = self.bus_rows.as_ref().map(Vec::len) {
            if bus >= num_buses {
                return Err(None);
            }
            if i64::from(self.model.bus_latency) > ii {
                return Err(None);
            }
            let span = self.model.bus_latency as usize;
            let rows: Vec<usize> = (0..span).map(|o| self.row_of(start + o as i64)).collect();
            let table = self.bus_rows.as_ref().expect("finite bus set");
            if let Some(max) = rows.iter().filter_map(|&r| table[bus][r]).max() {
                return Err(Some(max));
            }
            let table = self.bus_rows.as_mut().expect("finite bus set");
            for &r in &rows {
                table[bus][r] = Some(token);
            }
        }
        self.comms.push(CommRec {
            src,
            dst,
            from,
            to,
            start,
            bus,
            token,
        });
        Ok(self.comms.len() - 1)
    }

    /// Releases the most recent transfer (LIFO).
    ///
    /// # Panics
    ///
    /// Panics when `id` is not the most recent reservation.
    pub fn release_transfer(&mut self, id: TransferId) {
        assert_eq!(id, self.comms.len() - 1, "transfer releases must be LIFO");
        let rec = self.comms.pop().expect("transfer stack is non-empty");
        if let Some(table) = self.bus_rows.as_mut() {
            let ii = i64::from(self.ii);
            for o in 0..self.model.bus_latency as usize {
                let r = (rec.start + o as i64).rem_euclid(ii) as usize;
                debug_assert_eq!(table[rec.bus][r], Some(rec.token));
                table[rec.bus][r] = None;
            }
        }
    }

    /// The cross-cluster transfers implied by the (already committed)
    /// placement of `op`: one per (producer, consumer) pair with a placed
    /// neighbour in another cluster, the start window intersected over
    /// parallel edges. The windows are non-empty whenever the
    /// [`neighbour_bounds`](Self::neighbour_bounds) admitted the cycle.
    #[must_use]
    pub fn transfer_pairs(&self, op: OpId) -> Vec<TransferPair> {
        let p = self.placements[op.index()].expect("transfer_pairs on an unplaced operation");
        let (cluster, t) = (p.cluster, p.cycle);
        let ii = i64::from(self.ii);
        let bus_lat = i64::from(self.model.bus_latency);
        let mut pairs: Vec<TransferPair> = Vec::new();
        let merge = |pairs: &mut Vec<TransferPair>, pair: TransferPair| {
            if let Some(existing) = pairs
                .iter_mut()
                .find(|x| x.src == pair.src && x.dst == pair.dst)
            {
                existing.hi = existing.hi.min(pair.hi);
            } else {
                pairs.push(pair);
            }
        };
        for e in self.model.l.preds(op) {
            if e.kind != EdgeKind::Data || e.src == op {
                continue;
            }
            let Some(s) = self.placements[e.src.index()] else {
                continue;
            };
            if s.cluster != cluster {
                merge(
                    &mut pairs,
                    TransferPair {
                        src: e.src,
                        dst: op,
                        from: s.cluster,
                        to: cluster,
                        lo: s.cycle + i64::from(s.latency),
                        hi: t + ii * i64::from(e.distance) - bus_lat,
                        neighbour_token: s.token,
                    },
                );
            }
        }
        for e in self.model.l.succs(op) {
            if e.kind != EdgeKind::Data || e.dst == op {
                continue;
            }
            let Some(d) = self.placements[e.dst.index()] else {
                continue;
            };
            if d.cluster != cluster {
                merge(
                    &mut pairs,
                    TransferPair {
                        src: op,
                        dst: e.dst,
                        from: cluster,
                        to: d.cluster,
                        lo: t + i64::from(p.latency),
                        hi: d.cycle + ii * i64::from(e.distance) - bus_lat,
                        neighbour_token: d.token,
                    },
                );
            }
        }
        pairs
    }

    /// Whether a transfer for (`src`, `dst`) starting at a cycle congruent
    /// to `start` (modulo II) can begin after the producer completes and
    /// finish before the consumer starts for *some* data edge between the
    /// pair — the kernel's version of the validator's
    /// `CommunicationOutsideWindow` rule. Both endpoints must be placed in
    /// the recorded clusters.
    #[must_use]
    pub fn transfer_serves_edge(
        &self,
        src: OpId,
        dst: OpId,
        from: ClusterId,
        to: ClusterId,
        start: i64,
    ) -> bool {
        let (Some(p), Some(d)) = (self.placements[src.index()], self.placements[dst.index()])
        else {
            return false;
        };
        if p.cluster == d.cluster || from != p.cluster || to != d.cluster {
            return false;
        }
        let ii = i64::from(self.ii);
        let bus_lat = i64::from(self.model.bus_latency);
        self.model
            .l
            .edges()
            .iter()
            .filter(|e| e.kind == EdgeKind::Data && e.src == src && e.dst == dst)
            .any(|e| {
                let lo = p.cycle + i64::from(p.latency);
                let hi = d.cycle + ii * i64::from(e.distance) - bus_lat;
                if hi < lo {
                    return false;
                }
                if hi - lo + 1 >= ii {
                    return true; // the window spans every modulo row
                }
                let offset = (start.rem_euclid(ii) - lo.rem_euclid(ii)).rem_euclid(ii);
                lo + offset <= hi
            })
    }

    /// Whether every cross-cluster data edge between placed endpoints is
    /// covered by at least one reserved transfer (the validator's
    /// `MissingCommunication` rule over the placed prefix).
    #[must_use]
    pub fn all_cross_edges_covered(&self) -> bool {
        self.model.l.edges().iter().all(|e| {
            if e.kind != EdgeKind::Data {
                return true;
            }
            let (Some(p), Some(d)) = (
                self.placements[e.src.index()],
                self.placements[e.dst.index()],
            ) else {
                return true;
            };
            if p.cluster == d.cluster {
                return true;
            }
            self.comms.iter().any(|c| c.src == e.src && c.dst == e.dst)
        })
    }

    /// Incremental per-cluster MaxLive lower bound over the placed prefix:
    /// every placed value's maximum lifetime over its placed consumers,
    /// `ceil(lifetime / II)` registers in the producing cluster — with a
    /// floor of one register per placed producer that has any successor,
    /// matching the final `lifetime::register_pressure` semantics, which
    /// charge a register even for same-cycle consumption — plus one copy
    /// register per cluster receiving the value over a bus. Placing more
    /// operations can only lengthen lifetimes and add copies, so the bound
    /// is monotone — exceeding a register file here is final for the whole
    /// subtree of a search.
    #[must_use]
    pub fn pressure_lower_bound(&self) -> &[u32] {
        &self.pressure
    }

    /// Whether the incremental MaxLive lower bound already exceeds some
    /// cluster's register file (the validator's `RegisterFileOverflow` rule
    /// as a monotone prefix bound).
    #[must_use]
    pub fn pressure_exceeded(&self) -> bool {
        self.pressure
            .iter()
            .zip(&self.model.register_file)
            .any(|(&used, &cap)| used > cap)
    }

    /// The pressure lower bound recomputed from scratch over the placed
    /// prefix — the non-incremental reference the O(delta) updates must
    /// agree with (debug builds assert the agreement on every reserve).
    #[must_use]
    pub fn recomputed_pressure_lower_bound(&self) -> Vec<u32> {
        let num_clusters = self.model.machine.num_clusters();
        let mut pressure = vec![0u32; num_clusters];
        let ii = i64::from(self.ii);
        for op in self.model.l.op_ids() {
            let Some(p) = self.placements[op.index()] else {
                continue;
            };
            if !self.model.l.op(op).kind.produces_value() {
                continue;
            }
            let mut lifetime: Option<i64> = None;
            let mut copied_to: Vec<ClusterId> = Vec::new();
            for e in self.model.l.succs(op) {
                if e.kind != EdgeKind::Data {
                    continue;
                }
                let Some(u) = self.placements[e.dst.index()] else {
                    continue;
                };
                let life = (u.cycle + ii * i64::from(e.distance) - p.cycle).max(0);
                lifetime = Some(lifetime.map_or(life, |x| x.max(life)));
                if u.cluster != p.cluster && !copied_to.contains(&u.cluster) {
                    copied_to.push(u.cluster);
                    pressure[u.cluster] += 1;
                }
            }
            pressure[p.cluster] += self.producer_regs(op, lifetime);
        }
        pressure
    }

    /// Registers a *placed* producer pins in its cluster under the final
    /// MaxLive semantics: `ceil(lifetime / II)` over its placed consumers,
    /// with a floor of one whole register the moment the producer is
    /// placed. `lifetime::register_pressure` charges every value-producing
    /// operation with at least one successor a register even when its
    /// longest lifetime is zero, so any completion of a prefix that places
    /// such a producer pays at least one register in its cluster — the
    /// floor keeps the incremental bound monotone *and* final-consistent
    /// before any consumer lands.
    fn producer_regs(&self, op: OpId, life: Option<i64>) -> u32 {
        let base = regs(life, i64::from(self.ii));
        let l = self.model.l;
        if l.op(op).kind.produces_value() && l.succs(op).next().is_some() {
            base.max(1)
        } else {
            base
        }
    }

    #[cfg(debug_assertions)]
    fn debug_check_pressure(&self) {
        debug_assert_eq!(
            self.pressure,
            self.recomputed_pressure_lower_bound(),
            "incremental pressure diverged from the batch recomputation"
        );
    }

    /// O(degree) pressure delta for placing `op` (called from
    /// [`try_reserve_op`](Self::try_reserve_op)).
    fn add_pressure(&mut self, op: OpId) {
        let ii = i64::from(self.ii);
        let p = self.placements[op.index()].expect("op placed");
        let mut frame = PressureFrame::default();

        // The placed operation as producer: its value's lifetime over
        // already-placed consumers (including a self-loop consumer).
        if self.model.l.op(op).kind.produces_value() {
            let mut life: Option<i64> = None;
            for e in self.model.l.succs(op) {
                if e.kind != EdgeKind::Data {
                    continue;
                }
                let Some(u) = self.placements[e.dst.index()] else {
                    continue;
                };
                let this = (u.cycle + ii * i64::from(e.distance) - p.cycle).max(0);
                life = Some(life.map_or(this, |x| x.max(this)));
                if u.cluster != p.cluster {
                    self.bump_copy(&mut frame, op, u.cluster);
                }
            }
            debug_assert!(self.max_life[op.index()].is_none());
            // Even with no placed consumer yet (`life == None`) the
            // producer pays its final-pressure floor; the contribution is
            // undone by `remove_pressure` directly, not via the frame.
            let inc = self.producer_regs(op, life);
            self.pressure[p.cluster] += inc;
            self.max_life[op.index()] = life;
        }

        // The placed operation as consumer: it may extend the lifetime of
        // already-placed producers and add copy registers in its cluster.
        for e in self.model.l.preds(op) {
            if e.kind != EdgeKind::Data || e.src == op {
                continue;
            }
            let Some(d) = self.placements[e.src.index()] else {
                continue;
            };
            if !self.model.l.op(e.src).kind.produces_value() {
                continue;
            }
            let this = (p.cycle + ii * i64::from(e.distance) - d.cycle).max(0);
            let old = self.max_life[e.src.index()];
            if old.is_none_or(|x| this > x) {
                let dec = self.producer_regs(e.src, old);
                let inc = self.producer_regs(e.src, Some(this));
                self.pressure[d.cluster] -= dec;
                self.pressure[d.cluster] += inc;
                self.max_life[e.src.index()] = Some(this);
                frame.producer_old_life.push((e.src, old));
            }
            if d.cluster != p.cluster {
                self.bump_copy(&mut frame, e.src, p.cluster);
            }
        }
        self.frames[op.index()] = Some(frame);
    }

    fn bump_copy(&mut self, frame: &mut PressureFrame, producer: OpId, cluster: ClusterId) {
        let counts = &mut self.copy_counts[producer.index()];
        if let Some(entry) = counts.iter_mut().find(|(c, _)| *c == cluster) {
            entry.1 += 1;
        } else {
            counts.push((cluster, 1));
            self.pressure[cluster] += 1;
        }
        frame.copy_increments.push((producer, cluster));
    }

    /// Inverse of [`add_pressure`](Self::add_pressure); the placement of
    /// `op` must still be committed while this runs.
    fn remove_pressure(&mut self, op: OpId) {
        let frame = self.frames[op.index()]
            .take()
            .expect("placed operations carry a pressure frame");
        for &(producer, old) in frame.producer_old_life.iter().rev() {
            let cluster = self.placements[producer.index()]
                .expect("producers outlive their consumers under LIFO release")
                .cluster;
            let current = self.max_life[producer.index()];
            let dec = self.producer_regs(producer, current);
            let inc = self.producer_regs(producer, old);
            self.pressure[cluster] -= dec;
            self.pressure[cluster] += inc;
            self.max_life[producer.index()] = old;
        }
        for &(producer, cluster) in frame.copy_increments.iter().rev() {
            let counts = &mut self.copy_counts[producer.index()];
            let idx = counts
                .iter()
                .position(|(c, _)| *c == cluster)
                .expect("copy increments are balanced");
            counts[idx].1 -= 1;
            if counts[idx].1 == 0 {
                counts.swap_remove(idx);
                self.pressure[cluster] -= 1;
            }
        }
        // The operation's own producer contribution (floor included): its
        // consumer edges were recorded in *their* frames, so what is left
        // in `max_life[op]` is exactly what `add_pressure` charged.
        if self.model.l.op(op).kind.produces_value() {
            let p = self.placements[op.index()].expect("op still committed");
            let life = self.max_life[op.index()].take();
            let dec = self.producer_regs(op, life);
            self.pressure[p.cluster] -= dec;
        }
    }

    /// The committed placements as public [`PlacedOp`]s, in operation-id
    /// order. Every operation must be placed at a non-negative cycle (use
    /// [`freeze`](Self::freeze) for schedules built with signed cycles).
    ///
    /// # Panics
    ///
    /// Panics when an operation is unplaced or placed at a negative cycle.
    #[must_use]
    pub fn placed_ops(&self) -> Vec<PlacedOp> {
        self.placements
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let p = p.expect("every operation is placed");
                let cycle = u32::try_from(p.cycle).expect("cycles are non-negative");
                PlacedOp {
                    op: OpId::from_index(i),
                    cluster: p.cluster,
                    cycle,
                    stage: cycle / self.ii,
                    row: cycle % self.ii,
                    assumed_latency: p.latency,
                    miss_scheduled: p.miss_scheduled,
                }
            })
            .collect()
    }

    /// The reserved transfers as public [`Communication`]s, in reservation
    /// order. Start cycles must be non-negative (see
    /// [`freeze`](Self::freeze) for the shifting exporter).
    ///
    /// # Panics
    ///
    /// Panics when a transfer starts at a negative cycle.
    #[must_use]
    pub fn communications(&self) -> Vec<Communication> {
        self.comms
            .iter()
            .map(|c| Communication {
                src: c.src,
                dst: c.dst,
                from_cluster: c.from,
                to_cluster: c.to,
                start_cycle: u32::try_from(c.start).expect("transfer starts are non-negative"),
                bus: c.bus,
            })
            .collect()
    }

    /// Exports the complete partial schedule as a [`Schedule`]: shifts every
    /// cycle by a multiple of the II so the minimum cycle is non-negative
    /// (rotating all modulo rows in lockstep, which preserves every
    /// functional-unit, bus, dependence and lifetime relation), recomputes
    /// the exact MaxLive register pressure the validator recomputes, and
    /// assembles the placements and transfers.
    ///
    /// # Panics
    ///
    /// Panics when some operation is still unplaced.
    #[must_use]
    pub fn freeze(&self, scheduler_name: &str) -> Schedule {
        assert_eq!(
            self.placed_count,
            self.model.num_ops(),
            "freeze needs a complete schedule"
        );
        let ii_i = i64::from(self.ii);
        let min_cycle = self
            .placements
            .iter()
            .flatten()
            .map(|p| p.cycle)
            .chain(self.comms.iter().map(|c| c.start))
            .min()
            .unwrap_or(0);
        let shift = min_cycle.div_euclid(ii_i) * ii_i;

        let placed: Vec<PlacedOp> = self
            .placements
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let p = p.expect("every operation is placed");
                let cycle = (p.cycle - shift) as u32;
                PlacedOp {
                    op: OpId::from_index(i),
                    cluster: p.cluster,
                    cycle,
                    stage: cycle / self.ii,
                    row: cycle % self.ii,
                    assumed_latency: p.latency,
                    miss_scheduled: p.miss_scheduled,
                }
            })
            .collect();
        let communications: Vec<Communication> = self
            .comms
            .iter()
            .map(|c| Communication {
                src: c.src,
                dst: c.dst,
                from_cluster: c.from,
                to_cluster: c.to,
                start_cycle: (c.start - shift) as u32,
                bus: c.bus,
            })
            .collect();
        let pressure = lifetime::register_pressure(
            self.model.l,
            &placed,
            self.ii,
            self.model.machine.num_clusters(),
        );
        Schedule::new(
            self.model.machine.name.clone(),
            scheduler_name,
            self.ii,
            placed,
            communications,
            pressure,
        )
    }

    /// The exact MaxLive register pressure of the complete schedule (what
    /// the validator recomputes) — a convenience for clients that check the
    /// final `RegisterFileOverflow` rule before exporting.
    ///
    /// # Panics
    ///
    /// Panics when some operation is still unplaced or placed at a negative
    /// cycle.
    #[must_use]
    pub fn final_pressure(&self) -> Vec<u32> {
        lifetime::register_pressure(
            self.model.l,
            &self.placed_ops(),
            self.ii,
            self.model.machine.num_clusters(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;
    use mvp_machine::presets;

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    fn op(i: usize) -> OpId {
        OpId::from_index(i)
    }

    #[test]
    fn place_unplace_round_trips_to_the_empty_state() {
        let l = chain();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 2);
        let h0 = ps.place(op(0), 0, 0, 2, false, 0).unwrap();
        let h1 = ps.place(op(1), 1, 3, 2, false, 1).unwrap();
        assert_eq!(ps.num_placed(), 2);
        assert_eq!(h1.num_transfers(), 1, "LD -> F crosses clusters");
        assert_eq!(ps.num_transfers(), 1);
        assert!(ps.all_cross_edges_covered());
        ps.unplace(h1);
        ps.unplace(h0);
        assert_eq!(ps.num_placed(), 0);
        assert_eq!(ps.num_transfers(), 0);
        assert_eq!(ps.pressure_lower_bound(), &[0, 0]);
        assert_eq!(ps.max_used_cluster(), None);
        assert_eq!(ps.max_used_bus(), None);
    }

    #[test]
    fn fu_rows_reject_oversubscription_with_the_max_token() {
        // The motivating machine has one memory unit per cluster: LD and ST
        // in the same modulo row of cluster 0 collide.
        let l = chain();
        let machine = presets::motivating_example_machine();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 2);
        ps.try_reserve_op(op(0), 0, 0, 2, false, 7).unwrap();
        let err = ps.try_reserve_op(op(2), 0, 4, 1, false, 9).unwrap_err();
        assert_eq!(err, PlaceError::FuBusy { conflict: Some(7) });
        // Another row is free.
        ps.try_reserve_op(op(2), 0, 5, 1, false, 9).unwrap();
        ps.release_op(op(2));
        ps.release_op(op(0));
    }

    #[test]
    fn latency_rules_match_the_validator() {
        let l = chain();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 4);
        // Wrong latency on a hit-scheduled load.
        assert_eq!(
            ps.try_reserve_op(op(0), 0, 0, 3, false, 0).unwrap_err(),
            PlaceError::LatencyMismatch
        );
        // Miss-scheduling a non-load.
        assert_eq!(
            ps.try_reserve_op(op(1), 0, 0, 2, true, 0).unwrap_err(),
            PlaceError::MissScheduledNonLoad
        );
        // Miss-scheduled loads must carry the miss latency.
        let miss = machine.load_miss_latency();
        ps.try_reserve_op(op(0), 0, 0, miss, true, 0).unwrap();
        assert_eq!(ps.placement(op(0)).unwrap().latency, miss);
    }

    #[test]
    fn neighbour_bounds_include_the_bus_latency() {
        let l = chain();
        let machine = presets::two_cluster(); // bus latency 1
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 4);
        ps.try_reserve_op(op(0), 0, 0, 2, false, 3).unwrap();
        // Same cluster: F may start at LD + latency = 2.
        let same = ps.neighbour_bounds(op(1), 0, 2, None, None);
        assert_eq!((same.lo, same.hi, same.culprit), (Some(2), None, Some(3)));
        // Other cluster: one extra cycle for the bus hop.
        let cross = ps.neighbour_bounds(op(1), 1, 2, None, None);
        assert_eq!(cross.lo, Some(3));
        assert!(cross.admits(3) && !cross.admits(2));
        // Initial windows tighten only when a neighbour beats them.
        let wide = ps.neighbour_bounds(op(1), 0, 2, Some(5), Some(9));
        assert_eq!((wide.lo, wide.culprit), (Some(5), None));
    }

    #[test]
    fn self_edges_constrain_the_ii_alone() {
        // A 2-cycle accumulator recurrence: II=1 wraps onto itself, II=2
        // admits it — independent of where the op is placed.
        let mut b = Loop::builder("acc");
        let x = b.fp_op("X");
        b.data_edge(x, x, 1);
        let l = b.build().unwrap();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let tight = PartialSchedule::new(&model, 1);
        assert!(!tight.self_edges_admit(x, 2));
        // Neighbour bounds deliberately ignore the self-loop.
        assert_eq!(tight.neighbour_bounds(x, 0, 2, None, None).lo, None);
        let roomy = PartialSchedule::new(&model, 2);
        assert!(roomy.self_edges_admit(x, 2));
    }

    #[test]
    fn place_rejects_cycles_outside_the_window() {
        let l = chain();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 4);
        let _h = ps.place(op(0), 0, 0, 2, false, 0).unwrap();
        assert_eq!(
            ps.place(op(1), 0, 1, 2, false, 1).unwrap_err(),
            PlaceError::OutsideWindow
        );
    }

    #[test]
    fn transfer_reservation_is_start_major_bus_minor_and_lifo() {
        let l = chain();
        let machine = presets::two_cluster(); // 2 buses, latency 1
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 2);
        let a = ps
            .reserve_transfer_earliest(op(0), op(1), 0, 1, 0, 3, 1)
            .unwrap();
        let b = ps
            .reserve_transfer_earliest(op(0), op(1), 0, 1, 0, 3, 2)
            .unwrap();
        // Same start row, second transfer lands on the next bus.
        let comms = ps.communications();
        assert_eq!((comms[a].start_cycle, comms[a].bus), (0, 0));
        assert_eq!((comms[b].start_cycle, comms[b].bus), (0, 1));
        // Both buses busy in row 0: an explicit reservation reports the max
        // token in the way.
        assert_eq!(
            ps.reserve_transfer_at(op(1), op(2), 1, 0, 2, 0, 3),
            Err(Some(1))
        );
        // The earliest-fit reservation slides to row 1 instead.
        let c = ps
            .reserve_transfer_earliest(op(1), op(2), 1, 0, 0, 3, 3)
            .unwrap();
        assert_eq!(ps.communications()[c].start_cycle, 1);
        assert_eq!(ps.max_used_bus(), Some(1));
        ps.release_transfer(c);
        ps.release_transfer(b);
        ps.release_transfer(a);
        assert_eq!(ps.num_transfers(), 0);
    }

    #[test]
    fn transfers_longer_than_the_ii_are_rejected_on_finite_buses() {
        let l = chain();
        let machine = presets::motivating_example_machine(); // bus latency 2
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 1);
        assert_eq!(
            ps.reserve_transfer_earliest(op(0), op(1), 0, 1, 0, 5, 0),
            None
        );
        assert_eq!(
            ps.reserve_transfer_at(op(0), op(1), 0, 1, 0, 0, 0),
            Err(None)
        );
    }

    #[test]
    fn incremental_pressure_matches_the_batch_recomputation() {
        // A value consumed two stages later plus a cross-cluster consumer:
        // exercises lifetime growth, copy registers and LIFO undo.
        let mut b = Loop::builder("spread");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        let z = b.fp_op("Z");
        b.data_edge(x, y, 0);
        b.data_edge(x, z, 1);
        let l = b.build().unwrap();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 2);
        ps.try_reserve_op(x, 0, 0, 2, false, 0).unwrap();
        // No consumer placed yet, but X's value will pin at least one
        // register in any completion: the final-pressure floor.
        assert_eq!(ps.pressure_lower_bound(), &[1, 0]);
        ps.try_reserve_op(y, 0, 5, 2, false, 1).unwrap();
        // X alive 5 cycles at II=2 -> 3 registers.
        assert_eq!(ps.pressure_lower_bound(), &[3, 0]);
        ps.try_reserve_op(z, 1, 2, 2, false, 2).unwrap();
        // Carried use at cycle 2 + II = 4 < 5: lifetime unchanged, one copy
        // register in cluster 1.
        assert_eq!(ps.pressure_lower_bound(), &[3, 1]);
        assert_eq!(
            ps.pressure_lower_bound(),
            ps.recomputed_pressure_lower_bound().as_slice()
        );
        ps.release_op(z);
        assert_eq!(ps.pressure_lower_bound(), &[3, 0]);
        ps.release_op(y);
        assert_eq!(ps.pressure_lower_bound(), &[1, 0]);
        ps.release_op(x);
        assert_eq!(ps.pressure_lower_bound(), &[0, 0]);
    }

    #[test]
    fn placed_producers_pay_the_final_pressure_floor() {
        // LD -> F -> ST: every value-producing op with a successor pins one
        // register the moment it is placed — `lifetime::register_pressure`
        // charges even same-cycle consumption a register, so the floor is a
        // sound (and tighter) prefix bound. The store produces no value and
        // stays free.
        let l = chain();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 1);
        ps.try_reserve_op(op(1), 0, 2, 2, false, 0).unwrap();
        assert_eq!(ps.pressure_lower_bound(), &[1, 0]);
        ps.try_reserve_op(op(0), 0, 0, 2, false, 1).unwrap();
        // LD's value: consumed at cycle 2, lifetime 2 at II=1 -> 2 regs,
        // plus F's floor.
        assert_eq!(ps.pressure_lower_bound(), &[3, 0]);
        ps.try_reserve_op(op(2), 0, 4, 1, false, 2).unwrap();
        // F -> ST lifetime 2 replaces F's floor; ST itself adds nothing.
        assert_eq!(ps.pressure_lower_bound(), &[4, 0]);
        assert_eq!(
            ps.pressure_lower_bound(),
            ps.recomputed_pressure_lower_bound().as_slice()
        );
        ps.release_op(op(2));
        assert_eq!(ps.pressure_lower_bound(), &[3, 0]);
        ps.release_op(op(0));
        assert_eq!(ps.pressure_lower_bound(), &[1, 0]);
        ps.release_op(op(1));
        assert_eq!(ps.pressure_lower_bound(), &[0, 0]);
    }

    #[test]
    fn pressure_exceeded_is_a_monotone_prefix_bound() {
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        let machine = MachineConfig::builder("tiny-regs")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 2, 2, CacheGeometry::direct_mapped(1024)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        let mut b = Loop::builder("fat");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        let l = b.build().unwrap();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut ps = PartialSchedule::new(&model, 1);
        ps.try_reserve_op(x, 0, 0, 2, false, 0).unwrap();
        assert!(!ps.pressure_exceeded());
        // Y at cycle 6: X alive 6 cycles at II=1 -> 6 registers > file of 2.
        ps.try_reserve_op(y, 0, 6, 2, false, 1).unwrap();
        assert!(ps.pressure_exceeded());
    }

    #[test]
    fn freeze_normalizes_negative_cycles_by_a_multiple_of_the_ii() {
        let l = chain();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let ii = 3;
        let mut ps = PartialSchedule::new(&model, ii);
        let _a = ps.place(op(0), 0, -4, 2, false, 0).unwrap();
        let _b = ps.place(op(1), 0, -2, 2, false, 1).unwrap();
        let _c = ps.place(op(2), 0, 0, 1, false, 2).unwrap();
        let s = ps.freeze("test");
        // Shift is a multiple of the II (-4 -> row 2 stays row 2).
        assert_eq!(s.ii(), ii);
        assert_eq!(s.placement(op(0)).cycle, 2);
        assert_eq!(s.placement(op(0)).row, 2);
        assert_eq!(s.placement(op(1)).cycle, 4);
        assert_eq!(s.placement(op(2)).cycle, 6);
        assert_eq!(s.scheduler_name, "test");
    }

    #[test]
    fn transfer_windows_wrap_modulo_ii() {
        let l = chain();
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let ii = 8;
        let mut ps = PartialSchedule::new(&model, ii);
        ps.try_reserve_op(op(0), 0, 0, 2, false, 0).unwrap();
        ps.try_reserve_op(op(1), 1, 5, 2, false, 1).unwrap();
        // The LD -> F window is [2, 4]: congruent starts serve the edge,
        // others do not.
        assert!(ps.transfer_serves_edge(op(0), op(1), 0, 1, 2));
        assert!(ps.transfer_serves_edge(op(0), op(1), 0, 1, 2 + i64::from(ii)));
        assert!(!ps.transfer_serves_edge(op(0), op(1), 0, 1, 5));
        // Wrong clusters or co-located endpoints never match.
        assert!(!ps.transfer_serves_edge(op(0), op(1), 1, 0, 2));
        assert!(!ps.all_cross_edges_covered());
    }
}
