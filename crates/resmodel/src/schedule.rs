//! The result of modulo scheduling: operation placements, inter-cluster
//! communications and the derived static metrics (II, SC, compute cycles).

use mvp_ir::{Loop, OpId};
use mvp_machine::ClusterId;
use std::fmt;

/// Placement of one operation in the modulo schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedOp {
    /// The operation.
    pub op: OpId,
    /// Cluster the operation executes in.
    pub cluster: ClusterId,
    /// Absolute cycle within the flat (single-iteration) schedule.
    pub cycle: u32,
    /// Stage of the software pipeline (`cycle / II`).
    pub stage: u32,
    /// Row of the modulo reservation table (`cycle % II`).
    pub row: u32,
    /// Latency the scheduler assumed for this operation (hit latency, or the
    /// cache-miss latency for miss-scheduled loads).
    pub assumed_latency: u32,
    /// Whether the operation (a load) was scheduled with the cache-miss
    /// latency (binding prefetching).
    pub miss_scheduled: bool,
}

/// One inter-cluster register communication of the kernel (one per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Communication {
    /// Operation producing the value.
    pub src: OpId,
    /// Operation consuming the value.
    pub dst: OpId,
    /// Cluster the value leaves.
    pub from_cluster: ClusterId,
    /// Cluster the value enters.
    pub to_cluster: ClusterId,
    /// Absolute cycle at which the bus transfer starts.
    pub start_cycle: u32,
    /// Bus used for the transfer (0 when the register-bus set is unbounded).
    pub bus: usize,
}

/// A complete modulo schedule of one loop on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Name of the machine configuration the schedule targets.
    pub machine_name: String,
    /// Name of the scheduler that produced it (`"baseline"`, `"rmca"`, ...).
    pub scheduler_name: String,
    ii: u32,
    stage_count: u32,
    ops: Vec<PlacedOp>,
    communications: Vec<Communication>,
    /// Estimated register requirement per cluster (MaxLive approximation).
    register_pressure: Vec<u32>,
}

impl Schedule {
    /// Assembles a schedule from its parts. `ops` must contain one placement
    /// per operation of the loop, in operation-id order.
    #[must_use]
    pub fn new(
        machine_name: impl Into<String>,
        scheduler_name: impl Into<String>,
        ii: u32,
        ops: Vec<PlacedOp>,
        communications: Vec<Communication>,
        register_pressure: Vec<u32>,
    ) -> Self {
        let last_cycle = ops.iter().map(|p| p.cycle).max().unwrap_or(0);
        let stage_count = last_cycle / ii.max(1) + 1;
        Self {
            machine_name: machine_name.into(),
            scheduler_name: scheduler_name.into(),
            ii,
            stage_count,
            ops,
            communications,
            register_pressure,
        }
    }

    /// The initiation interval (II): cycles between the start of consecutive
    /// iterations in the kernel.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// The stage count (SC): how many iterations overlap in the kernel; also
    /// determines the length of the prologue and epilogue.
    #[must_use]
    pub fn stage_count(&self) -> u32 {
        self.stage_count
    }

    /// Placement of every operation, in operation-id order.
    #[must_use]
    pub fn ops(&self) -> &[PlacedOp] {
        &self.ops
    }

    /// Placement of operation `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` does not belong to the scheduled loop.
    #[must_use]
    pub fn placement(&self, op: OpId) -> &PlacedOp {
        &self.ops[op.index()]
    }

    /// All inter-cluster register communications (one instance per kernel
    /// iteration each).
    #[must_use]
    pub fn communications(&self) -> &[Communication] {
        &self.communications
    }

    /// Number of inter-cluster register communications per iteration.
    #[must_use]
    pub fn num_communications(&self) -> usize {
        self.communications.len()
    }

    /// Estimated register requirement of each cluster.
    #[must_use]
    pub fn register_pressure(&self) -> &[u32] {
        &self.register_pressure
    }

    /// Number of operations assigned to `cluster`.
    #[must_use]
    pub fn ops_in_cluster(&self, cluster: ClusterId) -> usize {
        self.ops.iter().filter(|p| p.cluster == cluster).count()
    }

    /// Workload balance across `num_clusters` clusters: the ratio between the
    /// least-loaded and the most-loaded cluster (1.0 = perfectly balanced;
    /// 1.0 by convention for single-cluster machines or empty schedules).
    #[must_use]
    pub fn balance(&self, num_clusters: usize) -> f64 {
        if num_clusters <= 1 || self.ops.is_empty() {
            return 1.0;
        }
        let counts: Vec<usize> = (0..num_clusters).map(|c| self.ops_in_cluster(c)).collect();
        let max = *counts.iter().max().unwrap_or(&0);
        let min = *counts.iter().min().unwrap_or(&0);
        if max == 0 {
            1.0
        } else {
            min as f64 / max as f64
        }
    }

    /// `NCYCLE_compute` of the paper's cycle model for a loop executed
    /// `ntimes` times with `niter` iterations each:
    /// `ntimes * ((niter + SC − 1) * II)`.
    #[must_use]
    pub fn compute_cycles(&self, ntimes: u64, niter: u64) -> u64 {
        ntimes * ((niter + u64::from(self.stage_count) - 1) * u64::from(self.ii))
    }

    /// `NCYCLE_compute` using the trip counts recorded in the loop nest.
    #[must_use]
    pub fn compute_cycles_of(&self, l: &Loop) -> u64 {
        self.compute_cycles(l.times_executed(), l.iterations())
    }

    /// Loads that were scheduled with the cache-miss latency.
    pub fn miss_scheduled_loads(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops.iter().filter(|p| p.miss_scheduled).map(|p| p.op)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: II={}, SC={}, {} ops, {} communications/iter",
            self.scheduler_name,
            self.machine_name,
            self.ii,
            self.stage_count,
            self.ops.len(),
            self.communications.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placed(op: usize, cluster: ClusterId, cycle: u32, ii: u32) -> PlacedOp {
        PlacedOp {
            op: OpId::from_index(op),
            cluster,
            cycle,
            stage: cycle / ii,
            row: cycle % ii,
            assumed_latency: 2,
            miss_scheduled: false,
        }
    }

    #[test]
    fn stage_count_follows_the_last_cycle() {
        let ii = 3;
        let ops = vec![
            placed(0, 0, 0, ii),
            placed(1, 0, 5, ii),
            placed(2, 1, 9, ii),
        ];
        let s = Schedule::new("m", "test", ii, ops, vec![], vec![0, 0]);
        // Last cycle 9 -> stage 3 -> SC = 4 (matching Figure 3a: II=3, SC=4).
        assert_eq!(s.ii(), 3);
        assert_eq!(s.stage_count(), 4);
    }

    #[test]
    fn compute_cycles_matches_the_paper_formula() {
        let ii = 3;
        let ops = vec![placed(0, 0, 0, ii), placed(1, 0, 9, ii)];
        let s = Schedule::new("m", "test", ii, ops, vec![], vec![0]);
        assert_eq!(s.stage_count(), 4);
        // NTIMES * (N + SC - 1) * II = 10 * (100 + 3) * 3
        assert_eq!(s.compute_cycles(10, 100), 10 * 103 * 3);
    }

    #[test]
    fn balance_and_cluster_occupancy() {
        let ii = 2;
        let ops = vec![
            placed(0, 0, 0, ii),
            placed(1, 0, 1, ii),
            placed(2, 0, 2, ii),
            placed(3, 1, 1, ii),
        ];
        let s = Schedule::new("m", "test", ii, ops, vec![], vec![2, 1]);
        assert_eq!(s.ops_in_cluster(0), 3);
        assert_eq!(s.ops_in_cluster(1), 1);
        assert!((s.balance(2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.balance(1), 1.0);
        assert_eq!(s.register_pressure(), &[2, 1]);
    }

    #[test]
    fn ii_of_one_packs_one_stage_per_cycle() {
        // II=1 is the densest possible kernel: every cycle is its own stage
        // and `compute_cycles` degenerates to `ntimes * (niter + SC - 1)`.
        let ii = 1;
        let ops = vec![placed(0, 0, 0, ii), placed(1, 0, 3, ii)];
        let s = Schedule::new("m", "test", ii, ops, vec![], vec![1]);
        assert_eq!(s.stage_count(), 4);
        assert_eq!(s.placement(OpId::from_index(1)).stage, 3);
        assert_eq!(s.placement(OpId::from_index(1)).row, 0);
        assert_eq!(s.compute_cycles(1, 100), 103);
        assert_eq!(s.compute_cycles(7, 1), 7 * 4);
    }

    #[test]
    fn single_op_single_cluster_is_the_degenerate_schedule() {
        // One operation at cycle 0: SC=1, so every execution costs exactly
        // niter * II and the balance convention for one cluster is 1.0.
        let ii = 2;
        let s = Schedule::new("m", "test", ii, vec![placed(0, 0, 0, ii)], vec![], vec![0]);
        assert_eq!(s.stage_count(), 1);
        assert_eq!(s.compute_cycles(3, 50), 3 * 50 * 2);
        assert_eq!(s.balance(1), 1.0);
        assert_eq!(s.ops_in_cluster(0), 1);
        assert_eq!(s.ops_in_cluster(1), 0);
    }

    #[test]
    fn balance_handles_empty_and_unused_clusters() {
        let ii = 2;
        // Zero-communication schedule concentrated in cluster 0 of a
        // 4-cluster machine: min/max over *all* clusters is 0.
        let ops = vec![placed(0, 0, 0, ii), placed(1, 0, 1, ii)];
        let s = Schedule::new("m", "test", ii, ops, vec![], vec![2, 0, 0, 0]);
        assert_eq!(s.num_communications(), 0);
        assert_eq!(s.balance(4), 0.0);
        // Convention: single-cluster machines and empty schedules are
        // perfectly balanced.
        let empty = Schedule::new("m", "test", ii, vec![], vec![], vec![0]);
        assert_eq!(empty.balance(4), 1.0);
        assert_eq!(empty.balance(1), 1.0);
        assert_eq!(empty.stage_count(), 1);
    }

    #[test]
    fn miss_scheduled_loads_are_filtered_from_placements() {
        let ii = 3;
        let mut hit = placed(0, 0, 0, ii);
        hit.miss_scheduled = false;
        let mut missed = placed(1, 1, 1, ii);
        missed.miss_scheduled = true;
        missed.assumed_latency = 12;
        let s = Schedule::new("m", "test", ii, vec![hit, missed], vec![], vec![1, 1]);
        let missed_ops: Vec<OpId> = s.miss_scheduled_loads().collect();
        assert_eq!(missed_ops, vec![OpId::from_index(1)]);
        assert_eq!(s.placement(OpId::from_index(1)).assumed_latency, 12);
        // Zero-communication loop: nothing to report.
        assert_eq!(s.num_communications(), 0);
        assert!(s.communications().is_empty());
    }

    #[test]
    fn communications_are_reported() {
        let ii = 4;
        let ops = vec![placed(0, 0, 0, ii), placed(1, 1, 6, ii)];
        let comms = vec![Communication {
            src: OpId::from_index(0),
            dst: OpId::from_index(1),
            from_cluster: 0,
            to_cluster: 1,
            start_cycle: 2,
            bus: 0,
        }];
        let s = Schedule::new("m", "test", ii, ops, comms, vec![1, 1]);
        assert_eq!(s.num_communications(), 1);
        assert_eq!(s.communications()[0].to_cluster, 1);
        assert!(s.to_string().contains("1 communications/iter"));
        assert_eq!(s.miss_scheduled_loads().count(), 0);
    }
}
