//! `mvp-resmodel` — the shared **incremental modulo-constraint kernel** of
//! the multiVLIW reproduction.
//!
//! Every scheduler in this workspace enforces the same rule set — modulo
//! functional-unit reservation, bus-aware dependence distances,
//! communication windows, finite-bus occupancy, MaxLive register pressure —
//! and before this crate each of them carried a private implementation of
//! those rules. Following the single-constraint-model discipline of the
//! exact-scheduling literature (Tirelli et al.'s SAT-based exact modulo
//! scheduling, Roorda's SMT-based optimal software pipelining), this crate
//! centralises the rules behind one incremental kernel that heuristic and
//! exact engines both consume:
//!
//! * [`ResModel`] — the static constraint model of one (loop, machine)
//!   pair: latencies, unit kinds and counts, bus configuration, register
//!   files, counting certificates.
//! * [`PartialSchedule`] — the dynamic kernel: `place` / `unplace` with
//!   O(delta) feasibility deltas and LIFO (trail-style) undo, per-rule
//!   query APIs (functional-unit slot occupancy, dependence windows
//!   including the bus latency, communication windows, bus capacity,
//!   incremental MaxLive), and a [`freeze`](PartialSchedule::freeze)
//!   exporter producing a [`Schedule`].
//! * [`AcyclicFuTable`] / [`AcyclicBusTable`] — the absolute-cycle
//!   (non-modulo) counterparts the list scheduler builds on.
//! * [`schedule`] / [`lifetime`] — the schedule artifact
//!   ([`Schedule`], [`PlacedOp`], [`Communication`]) and the MaxLive
//!   register-pressure model, re-exported by `mvp-core`.
//!
//! The independent legality oracle (`mvp_core::validate`) deliberately does
//! **not** build on this crate: it re-derives every rule from the finished
//! schedule alone, so randomized differential testing can hold the kernel
//! and the oracle against each other. The [`partial`] module documentation
//! maps every kernel rule to its `Violation` counterpart and to the paper's
//! Section-4 constraints.
//!
//! # Example
//!
//! ```
//! use mvp_resmodel::{PartialSchedule, ResModel};
//! use mvp_ir::Loop;
//! use mvp_machine::presets;
//!
//! let mut b = Loop::builder("demo");
//! let x = b.fp_op("X");
//! let y = b.fp_op("Y");
//! b.data_edge(x, y, 0);
//! let l = b.build().expect("valid loop");
//! let machine = presets::two_cluster();
//!
//! let model = ResModel::new(&l, &machine).expect("valid model");
//! let mut ps = PartialSchedule::new(&model, 1);
//! let first = ps.place(x, 0, 0, 2, false, 0).expect("cycle 0 is free");
//! let _second = ps.place(y, 0, 2, 2, false, 1).expect("after the latency");
//! let schedule = ps.freeze("demo");
//! assert_eq!(schedule.ii(), 1);
//! assert_eq!(first.num_transfers(), 0); // co-located: no bus transfer
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod acyclic;
pub mod error;
pub mod lifetime;
pub mod model;
pub mod partial;
pub mod schedule;

pub use acyclic::{AcyclicBusTable, AcyclicFuTable, BusCheckpoint};
pub use error::ModelError;
pub use model::ResModel;
pub use partial::{
    NeighbourBounds, PartialSchedule, PlaceError, PlaceHandle, Placed, Token, TransferId,
    TransferPair,
};
pub use schedule::{Communication, PlacedOp, Schedule};
