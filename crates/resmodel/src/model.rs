//! The shared constraint model: everything any scheduler needs to know about
//! one (loop, machine) pair, precomputed once.
//!
//! [`ResModel`] is the *static* half of the constraint kernel: per-operation
//! latencies and unit kinds, per-cluster unit counts and register files, the
//! register-bus configuration, and the derived counting facts (operations
//! per unit kind, cluster homogeneity). The *dynamic* half — which slot is
//! taken by whom right now — lives in
//! [`PartialSchedule`](crate::PartialSchedule).

use crate::error::ModelError;
use mvp_ir::{DepEdge, EdgeKind, Loop, OpId};
use mvp_machine::{BusCount, FuKind, MachineConfig};

/// Precomputed constraint-model facts for one (loop, machine) pair, shared
/// by every scheduler front-end (heuristic engines, list scheduling, exact
/// search) and by every [`PartialSchedule`](crate::PartialSchedule) built
/// from it.
#[derive(Debug)]
pub struct ResModel<'l, 'm> {
    /// The loop being scheduled.
    pub l: &'l Loop,
    /// The target machine.
    pub machine: &'m MachineConfig,
    /// Per-operation cache-hit latency. Schedulers that apply the Section-4.3
    /// miss-latency scheme pass the miss latency per placement instead; the
    /// kernel checks either against the machine's latency table (the
    /// validator's `LatencyMismatch` rule).
    pub latency: Vec<u32>,
    /// Per-operation functional-unit kind.
    pub fu_kind: Vec<FuKind>,
    /// Functional units of each kind per cluster (`fu_count[cluster][kind]`).
    pub fu_count: Vec<[usize; 3]>,
    /// Register-file capacity per cluster.
    pub register_file: Vec<u32>,
    /// Register-bus latency in cycles.
    pub bus_latency: u32,
    /// Number of register buses, or `None` for an unbounded bus set (on
    /// which no occupancy rule ever conflicts).
    pub num_buses: Option<usize>,
    /// The machine's load-miss latency (the latency miss-scheduled loads
    /// must carry).
    pub miss_latency: u32,
    /// Whether all clusters are identical, which makes cluster labels
    /// interchangeable and enables symmetry breaking in exact search.
    pub homogeneous: bool,
    /// Number of operations of each functional-unit kind, for the
    /// resource-count (`ResMII`) infeasibility certificate.
    pub ops_per_kind: [usize; 3],
}

impl<'l, 'm> ResModel<'l, 'm> {
    /// Builds the model, validating the machine and checking that every
    /// operation kind has at least one unit somewhere.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Machine`] for an invalid machine and
    /// [`ModelError::MissingResources`] when the loop uses a functional-unit
    /// kind the machine lacks (no II can ever work).
    pub fn new(l: &'l Loop, machine: &'m MachineConfig) -> Result<Self, ModelError> {
        machine.validate()?;
        let latency: Vec<u32> = l
            .ops()
            .iter()
            .map(|o| o.kind.hit_latency(&machine.latencies))
            .collect();
        let fu_kind: Vec<FuKind> = l.ops().iter().map(|o| o.kind.fu_kind()).collect();
        let fu_count: Vec<[usize; 3]> = machine
            .clusters()
            .map(|(_, c)| FuKind::ALL.map(|k| c.fu_count(k)))
            .collect();
        let register_file: Vec<u32> = machine
            .clusters()
            .map(|(_, c)| c.register_file_size as u32)
            .collect();
        let mut ops_per_kind = [0usize; 3];
        for k in &fu_kind {
            ops_per_kind[k.index()] += 1;
        }
        for kind in FuKind::ALL {
            if ops_per_kind[kind.index()] > 0 && machine.total_fu_count(kind) == 0 {
                return Err(ModelError::MissingResources {
                    reason: "the loop needs a functional-unit kind the machine does not provide"
                        .into(),
                });
            }
        }
        let homogeneous = machine
            .clusters()
            .map(|(_, c)| c)
            .all(|c| c == machine.cluster(0));
        Ok(Self {
            l,
            machine,
            latency,
            fu_kind,
            fu_count,
            register_file,
            bus_latency: machine.register_buses.latency,
            num_buses: match machine.register_buses.count {
                BusCount::Finite(n) => Some(n),
                BusCount::Unbounded => None,
            },
            miss_latency: machine.load_miss_latency(),
            homogeneous,
            ops_per_kind,
        })
    }

    /// Number of operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.l.num_ops()
    }

    /// Dependence weight of edge `e` at initiation interval `ii`, *without*
    /// the register-bus term: `t_dst − t_src ≥ weight`. This is the
    /// cluster-independent relaxation used for window propagation; placement
    /// queries re-check each edge exactly (adding the bus latency when the
    /// endpoints land in different clusters), matching the validator's
    /// `DependenceViolated` rule.
    #[must_use]
    pub fn edge_weight(&self, e: &DepEdge, ii: u32) -> i64 {
        let lat = if e.kind == EdgeKind::Data {
            i64::from(self.latency[e.src.index()])
        } else {
            1
        };
        lat - i64::from(ii) * i64::from(e.distance)
    }

    /// The exact start-to-start requirement of edge `e` when `src` is placed
    /// in `src_cluster` and `dst` in `dst_cluster` (the validator's
    /// `value_ready − consumer_iteration_base`): latency plus the bus latency
    /// for cross-cluster data edges, minus the iteration offset.
    #[must_use]
    pub fn exact_edge_weight(
        &self,
        e: &DepEdge,
        ii: u32,
        src_cluster: usize,
        dst_cluster: usize,
    ) -> i64 {
        let mut w = self.edge_weight(e, ii);
        if e.kind == EdgeKind::Data && src_cluster != dst_cluster {
            w += i64::from(self.bus_latency);
        }
        w
    }

    /// The resource-count certificate (the `ResMII` bound, per unit kind):
    /// `ii` is infeasible whenever some kind must issue more operations per
    /// II than the machine has unit-slots, i.e. `ops > units × ii` — the
    /// counting argument behind the validator's `FuOversubscribed` rule.
    #[must_use]
    pub fn resource_infeasible(&self, ii: u32) -> bool {
        FuKind::ALL.into_iter().any(|kind| {
            let units = self.machine.total_fu_count(kind) as u64;
            self.ops_per_kind[kind.index()] as u64 > units * u64::from(ii)
        })
    }

    /// The latency a placement of `op` must carry: the hit latency, or the
    /// machine's miss latency when the load is miss-scheduled (the
    /// validator's `LatencyMismatch` rule).
    #[must_use]
    pub fn expected_latency(&self, op: OpId, miss_scheduled: bool) -> u32 {
        if miss_scheduled {
            self.miss_latency
        } else {
            self.latency[op.index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::presets;

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn model_captures_machine_and_loop_shape() {
        let l = chain();
        let machine = presets::two_cluster();
        let m = ResModel::new(&l, &machine).unwrap();
        assert_eq!(m.num_ops(), 3);
        assert_eq!(m.latency, vec![2, 2, 1]);
        assert_eq!(m.num_buses, Some(2));
        assert_eq!(m.bus_latency, 1);
        assert!(m.homogeneous);
        assert_eq!(m.ops_per_kind, [0, 1, 2]);
        assert_eq!(m.register_file, vec![32, 32]);
        assert_eq!(m.miss_latency, machine.load_miss_latency());
    }

    #[test]
    fn missing_unit_kinds_fail_fast() {
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        let machine = MachineConfig::builder("no-mem")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 0, 32, CacheGeometry::direct_mapped(4096)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        let l = chain();
        assert!(matches!(
            ResModel::new(&l, &machine),
            Err(ModelError::MissingResources { .. })
        ));
    }

    #[test]
    fn edge_weights_follow_the_validator_rules() {
        let l = chain();
        let machine = presets::two_cluster();
        let m = ResModel::new(&l, &machine).unwrap();
        let e = l.edges()[0]; // LD -> F, data, distance 0
        assert_eq!(m.edge_weight(&e, 3), 2);
        assert_eq!(m.exact_edge_weight(&e, 3, 0, 0), 2);
        assert_eq!(m.exact_edge_weight(&e, 3, 0, 1), 3); // + bus latency 1
        let carried = DepEdge::data(e.src, e.dst, 2);
        assert_eq!(m.edge_weight(&carried, 3), 2 - 6);
    }

    #[test]
    fn resource_certificate_matches_res_mii() {
        let l = chain();
        let machine = presets::motivating_example_machine();
        let m = ResModel::new(&l, &machine).unwrap();
        // 2 memory ops on 2 memory units: infeasible only below II=1.
        assert!(!m.resource_infeasible(1));
    }

    #[test]
    fn expected_latency_distinguishes_miss_scheduled_loads() {
        let l = chain();
        let machine = presets::two_cluster();
        let m = ResModel::new(&l, &machine).unwrap();
        let ld = OpId::from_index(0);
        assert_eq!(m.expected_latency(ld, false), 2);
        assert_eq!(m.expected_latency(ld, true), machine.load_miss_latency());
    }
}
