//! Register lifetime / pressure estimation.
//!
//! Modulo scheduling fails (and the II is increased) when a cluster would
//! need more registers than its local file provides. The estimate used here
//! is the standard MaxLive-style approximation: every value produced by an
//! operation lives from its definition until its last use (across iterations
//! for loop-carried consumers), and a lifetime of `L` cycles occupies
//! `ceil(L / II)` registers because that many instances of the value are
//! alive simultaneously in the kernel. Values received over a register bus
//! additionally occupy one register in the consuming cluster.

use crate::schedule::PlacedOp;
use mvp_ir::{EdgeKind, Loop, OpId};
use mvp_machine::ClusterId;

/// Lifetime (in cycles) of the value produced by `op`, from its definition to
/// its last use, under the given placements. Returns 0 for operations that
/// produce no value or whose value is never consumed.
#[must_use]
pub fn value_lifetime(l: &Loop, placements: &[PlacedOp], op: OpId, ii: u32) -> u32 {
    if !l.op(op).kind.produces_value() {
        return 0;
    }
    let def = &placements[op.index()];
    let mut last_use = None;
    for edge in l.succs(op) {
        if edge.kind != EdgeKind::Data {
            continue;
        }
        let user = &placements[edge.dst.index()];
        let use_cycle = i64::from(user.cycle) + i64::from(ii) * i64::from(edge.distance);
        let lifetime = (use_cycle - i64::from(def.cycle)).max(0) as u32;
        last_use = Some(last_use.map_or(lifetime, |l: u32| l.max(lifetime)));
    }
    last_use.unwrap_or(0)
}

/// Estimated number of registers needed in each of `num_clusters` clusters.
#[must_use]
pub fn register_pressure(
    l: &Loop,
    placements: &[PlacedOp],
    ii: u32,
    num_clusters: usize,
) -> Vec<u32> {
    let mut pressure = vec![0u32; num_clusters];
    let ii = ii.max(1);
    for op in l.op_ids() {
        let def = &placements[op.index()];
        let lifetime = value_lifetime(l, placements, op, ii);
        if lifetime == 0 && l.op(op).kind.produces_value() && l.succs(op).next().is_some() {
            // Value consumed in the same cycle it is produced still needs one
            // register for at least one II.
            pressure[def.cluster] += 1;
            continue;
        }
        if lifetime > 0 {
            pressure[def.cluster] += lifetime.div_ceil(ii);
        }
        // Consumers in other clusters hold a copy received over the bus.
        let mut copied_to: Vec<ClusterId> = Vec::new();
        for edge in l.succs(op) {
            if edge.kind != EdgeKind::Data {
                continue;
            }
            let user = &placements[edge.dst.index()];
            if user.cluster != def.cluster && !copied_to.contains(&user.cluster) {
                copied_to.push(user.cluster);
                pressure[user.cluster] += 1;
            }
        }
    }
    pressure
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;

    fn place(op: usize, cluster: ClusterId, cycle: u32, ii: u32) -> PlacedOp {
        PlacedOp {
            op: OpId::from_index(op),
            cluster,
            cycle,
            stage: cycle / ii,
            row: cycle % ii,
            assumed_latency: 2,
            miss_scheduled: false,
        }
    }

    /// producer -> consumer chain within a single cluster.
    fn chain_loop() -> Loop {
        let mut b = Loop::builder("chain");
        let a = b.fp_op("A");
        let c = b.fp_op("C");
        b.data_edge(a, c, 0);
        b.build().unwrap()
    }

    #[test]
    fn short_lifetime_needs_one_register() {
        let l = chain_loop();
        let ii = 4;
        let placements = vec![place(0, 0, 0, ii), place(1, 0, 2, ii)];
        assert_eq!(value_lifetime(&l, &placements, OpId::from_index(0), ii), 2);
        assert_eq!(register_pressure(&l, &placements, ii, 1), vec![1]);
    }

    #[test]
    fn long_lifetime_needs_multiple_registers() {
        let l = chain_loop();
        let ii = 2;
        // Value defined at cycle 0, used at cycle 7: alive for 7 cycles,
        // ceil(7/2) = 4 overlapping instances.
        let placements = vec![place(0, 0, 0, ii), place(1, 0, 7, ii)];
        assert_eq!(value_lifetime(&l, &placements, OpId::from_index(0), ii), 7);
        assert_eq!(register_pressure(&l, &placements, ii, 1), vec![4]);
    }

    #[test]
    fn loop_carried_uses_extend_the_lifetime() {
        let mut b = Loop::builder("carried");
        let a = b.fp_op("A");
        let c = b.fp_op("C");
        b.data_edge(a, c, 2);
        let l = b.build().unwrap();
        let ii = 3;
        let placements = vec![place(0, 0, 1, ii), place(1, 0, 2, ii)];
        // Use happens 2 iterations later: 2 + 2*3 - 1 = 7 cycles.
        assert_eq!(value_lifetime(&l, &placements, OpId::from_index(0), ii), 7);
    }

    #[test]
    fn cross_cluster_consumers_add_pressure_to_both_clusters() {
        let l = chain_loop();
        let ii = 4;
        let placements = vec![place(0, 0, 0, ii), place(1, 1, 6, ii)];
        let p = register_pressure(&l, &placements, ii, 2);
        // Producer cluster holds the value, consumer cluster holds the copy.
        assert_eq!(p, vec![2, 1]);
    }

    #[test]
    fn stores_and_dead_values_need_no_registers() {
        let mut b = Loop::builder("store");
        let i = b.dimension("I", 8);
        let arr = b.auto_array("A", 256);
        let ld = b.load("LD", b.array_ref(arr).stride(i, 8).build());
        let st = b.store("ST", b.array_ref(arr).stride(i, 8).build());
        b.data_edge(ld, st, 0);
        let l = b.build().unwrap();
        let ii = 2;
        let placements = vec![place(0, 0, 0, ii), place(1, 0, 2, ii)];
        // The store produces nothing; the load's value lives 2 cycles.
        assert_eq!(value_lifetime(&l, &placements, st, ii), 0);
        assert_eq!(register_pressure(&l, &placements, ii, 1), vec![1]);
    }

    #[test]
    fn same_cycle_consumption_still_occupies_one_register() {
        let l = chain_loop();
        let ii = 4;
        let placements = vec![place(0, 0, 3, ii), place(1, 0, 3, ii)];
        assert_eq!(register_pressure(&l, &placements, ii, 1), vec![1]);
    }
}
