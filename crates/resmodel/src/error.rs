//! Errors raised while building the constraint model.

use mvp_machine::MachineError;
use std::error::Error;
use std::fmt;

/// Errors raised while building a [`ResModel`](crate::ResModel) for a
/// (loop, machine) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The loop uses a functional-unit kind the machine does not provide, so
    /// no placement of every operation can ever exist.
    MissingResources {
        /// Human-readable description of the missing resource.
        reason: String,
    },
    /// The machine configuration is invalid.
    Machine(MachineError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::MissingResources { reason } => {
                write!(f, "loop cannot be scheduled on this machine: {reason}")
            }
            ModelError::Machine(e) => write!(f, "invalid machine configuration: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Machine(e) => Some(e),
            ModelError::MissingResources { .. } => None,
        }
    }
}

impl From<MachineError> for ModelError {
    fn from(e: MachineError) -> Self {
        ModelError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: ModelError = MachineError::NoClusters.into();
        assert!(e.to_string().contains("invalid machine"));
        assert!(e.source().is_some());
        let m = ModelError::MissingResources {
            reason: "no memory units".into(),
        };
        assert!(m.to_string().contains("no memory units"));
        assert!(m.source().is_none());
    }
}
