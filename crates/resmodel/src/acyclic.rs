//! Absolute-cycle (non-modulo) reservations for list scheduling.
//!
//! The non-pipelined list scheduler places one iteration of the loop in
//! unbounded absolute time and derives the published II afterwards, so its
//! resource rules are the acyclic counterparts of the modulo kernel's: a
//! functional unit serves one operation per absolute cycle (the
//! `FuOversubscribed` rule with an II larger than the whole schedule) and a
//! register bus is busy for the full bus latency from a transfer's start
//! (the `BusOverlap` rule, likewise). Tables grow on demand, so a free slot
//! always exists and every reservation eventually succeeds — exactly the
//! list scheduler's always-succeeds contract.
//!
//! The functional-unit and bus tables are separate types on purpose: a
//! scheduler evaluating candidate clusters only *tentatively books bus
//! transfers* per candidate, so the [`AcyclicBusTable`] keeps a trail of
//! its reservations — take a [`checkpoint`](AcyclicBusTable::checkpoint)
//! before probing a candidate, [`rollback`](AcyclicBusTable::rollback)
//! after, and [`reserve_at`](AcyclicBusTable::reserve_at) the winner's
//! recorded transfers once the choice is made — while the read-only
//! [`AcyclicFuTable`] queries need no undo at all. Probing this way costs
//! O(transfers probed) per candidate instead of cloning the whole
//! occupancy table per candidate cluster.

use crate::model::ResModel;
use mvp_machine::{ClusterId, FuKind};

/// Absolute-cycle functional-unit occupancy (one counter per cluster, unit
/// kind and cycle; grows on demand).
#[derive(Debug, Clone)]
pub struct AcyclicFuTable {
    /// Units of each kind per cluster.
    capacity: Vec<[usize; 3]>,
    /// Operations issued per (cluster, kind, absolute cycle).
    used: Vec<[Vec<usize>; 3]>,
}

impl AcyclicFuTable {
    /// Creates empty tables for the model's machine.
    #[must_use]
    pub fn new(model: &ResModel<'_, '_>) -> Self {
        Self {
            capacity: model.fu_count.clone(),
            used: vec![[Vec::new(), Vec::new(), Vec::new()]; model.machine.num_clusters()],
        }
    }

    /// First cycle `>= from` with a free unit of `kind` in `cluster`.
    /// Always exists: absolute time beyond the current occupancy is free.
    #[must_use]
    pub fn first_free(&self, cluster: ClusterId, kind: FuKind, from: u32) -> u32 {
        let capacity = self.capacity[cluster][kind.index()];
        let used = &self.used[cluster][kind.index()];
        let mut t = from;
        while (t as usize) < used.len() && used[t as usize] >= capacity {
            t += 1;
        }
        t
    }

    /// Reserves one issue slot of `kind` in `cluster` at `cycle`.
    pub fn reserve(&mut self, cluster: ClusterId, kind: FuKind, cycle: u32) {
        let used = &mut self.used[cluster][kind.index()];
        if used.len() <= cycle as usize {
            used.resize(cycle as usize + 1, 0);
        }
        used[cycle as usize] += 1;
    }
}

/// Absolute-cycle register-bus occupancy (grows on demand; a no-op for
/// unbounded bus sets). Candidate transfers are booked directly on the
/// table and undone through the reservation trail
/// ([`checkpoint`](Self::checkpoint) / [`rollback`](Self::rollback)), so
/// probing a candidate never copies the occupancy bitmaps.
#[derive(Debug, Clone)]
pub struct AcyclicBusTable {
    latency: u32,
    /// Per bus, per absolute cycle. Empty when the bus set is unbounded.
    busy: Vec<Vec<bool>>,
    unbounded: bool,
    /// Every reservation made so far, in order (`(bus, start)`); rollback
    /// pops the tail and clears exactly the bits each reservation set.
    /// Stays empty for unbounded bus sets, which reserve nothing.
    trail: Vec<(usize, u32)>,
}

/// A position in an [`AcyclicBusTable`]'s reservation trail, as returned by
/// [`AcyclicBusTable::checkpoint`] and consumed by
/// [`AcyclicBusTable::rollback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusCheckpoint(usize);

impl AcyclicBusTable {
    /// Creates an empty table for the model's machine.
    #[must_use]
    pub fn new(model: &ResModel<'_, '_>) -> Self {
        Self {
            latency: model.bus_latency,
            busy: match model.num_buses {
                Some(n) => vec![Vec::new(); n],
                None => Vec::new(),
            },
            unbounded: model.num_buses.is_none(),
            trail: Vec::new(),
        }
    }

    fn window_free(&self, bus: usize, start: u32) -> bool {
        (0..self.latency).all(|d| {
            !self.busy[bus]
                .get((start + d) as usize)
                .copied()
                .unwrap_or(false)
        })
    }

    /// Reserves the earliest transfer window starting at or after
    /// `earliest` on any bus (start-major, lowest bus first); returns
    /// `(bus, start_cycle)`. Always succeeds: absolute time beyond the
    /// current occupancy is free, and unbounded bus sets never conflict.
    pub fn reserve_earliest(&mut self, earliest: u32) -> (usize, u32) {
        if self.unbounded {
            return (0, earliest);
        }
        let mut start = earliest;
        loop {
            for bus in 0..self.busy.len() {
                if self.window_free(bus, start) {
                    self.mark(bus, start);
                    return (bus, start);
                }
            }
            start += 1;
        }
    }

    /// Re-reserves a window previously returned by
    /// [`reserve_earliest`](Self::reserve_earliest) and undone by
    /// [`rollback`](Self::rollback) — how a scheduler commits the winning
    /// candidate's probed transfers without re-searching. The window must
    /// currently be free (debug-asserted); a no-op for unbounded bus sets.
    pub fn reserve_at(&mut self, bus: usize, start: u32) {
        if self.unbounded {
            return;
        }
        debug_assert!(
            self.window_free(bus, start),
            "reserve_at({bus}, {start}) on an occupied window"
        );
        self.mark(bus, start);
    }

    fn mark(&mut self, bus: usize, start: u32) {
        let end = (start + self.latency) as usize;
        if self.busy[bus].len() < end {
            self.busy[bus].resize(end, false);
        }
        for d in 0..self.latency {
            self.busy[bus][(start + d) as usize] = true;
        }
        self.trail.push((bus, start));
    }

    /// The current trail position: reservations made after this point are
    /// undone by passing it to [`rollback`](Self::rollback).
    #[must_use]
    pub fn checkpoint(&self) -> BusCheckpoint {
        BusCheckpoint(self.trail.len())
    }

    /// Undoes every reservation made since `mark`, restoring the table to
    /// its exact state at [`checkpoint`](Self::checkpoint) time (each
    /// reservation's window was free when it was booked, so clearing its
    /// bits is an exact inverse).
    pub fn rollback(&mut self, mark: BusCheckpoint) {
        while self.trail.len() > mark.0 {
            let (bus, start) = self.trail.pop().expect("trail is non-empty above the mark");
            for d in 0..self.latency {
                self.busy[bus][(start + d) as usize] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;
    use mvp_machine::presets;

    fn tiny() -> Loop {
        let mut b = Loop::builder("tiny");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.build().unwrap()
    }

    #[test]
    fn fu_slots_fill_and_spill_to_later_cycles() {
        let l = tiny();
        let machine = presets::motivating_example_machine(); // 1 fp unit/cluster
        let model = ResModel::new(&l, &machine).unwrap();
        let mut fu = AcyclicFuTable::new(&model);
        assert_eq!(fu.first_free(0, FuKind::Float, 0), 0);
        fu.reserve(0, FuKind::Float, 0);
        assert_eq!(fu.first_free(0, FuKind::Float, 0), 1);
        // The other cluster is unaffected.
        assert_eq!(fu.first_free(1, FuKind::Float, 0), 0);
    }

    #[test]
    fn transfers_pick_the_earliest_window_lowest_bus() {
        let l = tiny();
        let machine = presets::motivating_example_machine(); // 1 bus, latency 2
        let model = ResModel::new(&l, &machine).unwrap();
        let mut bus = AcyclicBusTable::new(&model);
        assert_eq!(bus.reserve_earliest(3), (0, 3));
        // Cycles 3-4 are busy: the next request slides to cycle 5.
        assert_eq!(bus.reserve_earliest(3), (0, 5));
    }

    #[test]
    fn rollback_restores_the_exact_pre_probe_state() {
        let l = tiny();
        let machine = presets::motivating_example_machine(); // 1 bus, latency 2
        let model = ResModel::new(&l, &machine).unwrap();
        let mut bus = AcyclicBusTable::new(&model);
        assert_eq!(bus.reserve_earliest(0), (0, 0));

        // Probe: two tentative transfers, then undo both.
        let mark = bus.checkpoint();
        assert_eq!(bus.reserve_earliest(0), (0, 2));
        assert_eq!(bus.reserve_earliest(0), (0, 4));
        bus.rollback(mark);

        // The probe left no trace: the same requests land identically, and
        // a nested probe rolls back to its own mark only.
        let mark2 = bus.checkpoint();
        assert_eq!(mark, mark2);
        assert_eq!(bus.reserve_earliest(0), (0, 2));
        let inner = bus.checkpoint();
        assert_eq!(bus.reserve_earliest(0), (0, 4));
        bus.rollback(inner);
        assert_eq!(bus.reserve_earliest(0), (0, 4));
    }

    #[test]
    fn reserve_at_commits_a_probed_window() {
        let l = tiny();
        let machine = presets::motivating_example_machine();
        let model = ResModel::new(&l, &machine).unwrap();
        let mut bus = AcyclicBusTable::new(&model);
        let mark = bus.checkpoint();
        let (b, start) = bus.reserve_earliest(3);
        bus.rollback(mark);
        bus.reserve_at(b, start);
        // The committed window really is occupied again.
        assert_eq!(bus.reserve_earliest(3), (0, 5));
    }

    #[test]
    fn unbounded_buses_never_slide() {
        let l = tiny();
        let machine =
            presets::two_cluster().with_register_buses(mvp_machine::BusConfig::unbounded(2));
        let model = ResModel::new(&l, &machine).unwrap();
        let mut bus = AcyclicBusTable::new(&model);
        let mark = bus.checkpoint();
        for i in 0..10 {
            assert_eq!(bus.reserve_earliest(i), (0, i));
        }
        // Unbounded sets reserve nothing, so the trail stays empty and
        // rollback / commit are no-ops.
        assert_eq!(bus.checkpoint(), mark);
        bus.rollback(mark);
        bus.reserve_at(0, 3);
        assert_eq!(bus.reserve_earliest(3), (0, 3));
    }
}
