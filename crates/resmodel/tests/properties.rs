//! Property-style tests of the incremental constraint kernel, driven by a
//! seeded RNG sweep (the workspace builds without `proptest`).
//!
//! The round-trip properties here took over from the retired
//! `mvp-machine` modulo-reservation-table tests: capacity rules are now
//! enforced by [`PartialSchedule`], so that is where the properties live.

use mvp_ir::{Loop, OpId};
use mvp_machine::presets;
use mvp_resmodel::{PartialSchedule, PlaceError, ResModel};
use mvp_testutil::SplitMix64;

/// A loop of `n` independent loads (no edges): every placement decision is
/// purely a functional-unit capacity question.
fn independent_loads(n: usize) -> Loop {
    let mut b = Loop::builder("loads");
    let i = b.dimension("I", 64);
    for k in 0..n {
        let a = b.auto_array(format!("A{k}"), 4096);
        b.load(format!("LD{k}"), b.array_ref(a).stride(i, 8).build());
    }
    b.build().unwrap()
}

/// A functional-unit row never accepts more reservations than the cluster
/// has units of that kind, the conflict always names the maximum occupant
/// token, and releasing restores the capacity.
#[test]
fn fu_row_capacity_is_respected() {
    let mut rng = SplitMix64::seed_from_u64(0xE55E);
    let machine = presets::two_cluster(); // 2 memory units per cluster
    let l = independent_loads(8);
    let model = ResModel::new(&l, &machine).unwrap();
    for _ in 0..128 {
        let ii = rng.gen_range_inclusive(1, 11) as u32;
        let cycle = rng.gen_index(200) as i64;
        let extra = rng.gen_range_inclusive(1, 3) as i64;

        let mut ps = PartialSchedule::new(&model, ii);
        let capacity = 2usize;
        // Fill the row completely (same row, different absolute cycles).
        for k in 0..capacity {
            ps.try_reserve_op(
                OpId::from_index(k),
                0,
                cycle + k as i64 * i64::from(ii),
                2,
                false,
                k as u32,
            )
            .unwrap();
        }
        // Any cycle mapping to the same row is full, and the conflict
        // carries the deepest (maximum) occupant token.
        let err = ps
            .try_reserve_op(
                OpId::from_index(capacity),
                0,
                cycle + extra * i64::from(ii),
                2,
                false,
                9,
            )
            .unwrap_err();
        assert_eq!(
            err,
            PlaceError::FuBusy {
                conflict: Some(capacity as u32 - 1)
            }
        );
        // The other cluster is unaffected; releasing frees the row again.
        ps.try_reserve_op(OpId::from_index(capacity), 1, cycle, 2, false, 9)
            .unwrap();
        ps.release_op(OpId::from_index(capacity));
        ps.release_op(OpId::from_index(capacity - 1));
        ps.try_reserve_op(OpId::from_index(capacity - 1), 0, cycle, 2, false, 5)
            .unwrap();
    }
}

/// Register-bus transfers never overlap on the same bus, the table holds
/// exactly `buses × II` latency-1 transfers, and LIFO release restores full
/// capacity.
#[test]
fn register_bus_reservations_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0xF66F);
    let machine = presets::two_cluster(); // 2 buses, latency 1
    let l = independent_loads(2);
    let model = ResModel::new(&l, &machine).unwrap();
    let (src, dst) = (OpId::from_index(0), OpId::from_index(1));
    for _ in 0..128 {
        let ii = rng.gen_range_inclusive(2, 9) as u32;
        let start = rng.gen_index(40) as i64;

        let mut ps = PartialSchedule::new(&model, ii);
        let mut reserved = Vec::new();
        let mut cycle = start;
        while let Some(id) = ps.reserve_transfer_earliest(src, dst, 0, 1, cycle, cycle, 7) {
            reserved.push(id);
            cycle += 1;
            assert!(reserved.len() <= 2 * ii as usize);
        }
        // With 2 buses of latency 1 the table holds exactly 2 * II transfers.
        assert_eq!(reserved.len(), 2 * ii as usize);
        for id in reserved.into_iter().rev() {
            ps.release_transfer(id);
        }
        assert_eq!(ps.num_transfers(), 0);
        assert!(ps
            .reserve_transfer_earliest(src, dst, 0, 1, start, start, 7)
            .is_some());
    }
}

/// A random loop with forward data edges for the round-trip property below.
fn random_loop(rng: &mut SplitMix64, n: usize) -> Loop {
    let mut b = Loop::builder("random");
    let i = b.dimension("I", 64);
    let mut ops = Vec::new();
    for k in 0..n {
        if rng.gen_index(3) == 0 {
            let a = b.auto_array(format!("A{k}"), 4096);
            ops.push(b.load(format!("LD{k}"), b.array_ref(a).stride(i, 8).build()));
        } else {
            ops.push(b.fp_op(format!("F{k}")));
        }
    }
    for dst in 1..n {
        if rng.gen_index(2) == 0 {
            let src = rng.gen_index(dst);
            b.data_edge(ops[src], ops[dst], 0);
        }
    }
    b.build().unwrap()
}

/// `place` + `unplace` is the identity on every observable of the kernel:
/// pressure, placements, occupancy maxima and the transfer stack.
#[test]
fn place_unplace_round_trips_observable_state() {
    let mut rng = SplitMix64::seed_from_u64(0xD00D);
    for _ in 0..64 {
        let n = rng.gen_range_inclusive(3, 9);
        let l = random_loop(&mut rng, n);
        let machine = presets::two_cluster();
        let model = ResModel::new(&l, &machine).unwrap();
        let ii = rng.gen_range_inclusive(1, 4) as u32;
        let mut ps = PartialSchedule::new(&model, ii);

        // Greedily place a prefix of the operations (first fitting cluster
        // and cycle inside a bounded scan).
        let mut handles = Vec::new();
        'ops: for k in 0..n {
            let op = OpId::from_index(k);
            let lat = model.latency[k];
            for cluster in 0..machine.num_clusters() {
                for t in 0..i64::from(4 * ii) {
                    if let Ok(h) = ps.place(op, cluster, t, lat, false, k as u32) {
                        handles.push(h);
                        continue 'ops;
                    }
                }
            }
            break; // this op does not fit in the scan window: stop the prefix
        }

        let snapshot = (
            ps.num_placed(),
            ps.num_transfers(),
            ps.pressure_lower_bound().to_vec(),
            ps.max_used_cluster(),
            ps.max_used_bus(),
        );
        // The incremental pressure agrees with the batch recomputation.
        assert_eq!(
            ps.pressure_lower_bound(),
            ps.recomputed_pressure_lower_bound().as_slice()
        );

        // Probe every remaining unplaced op everywhere; each probe must
        // leave the kernel exactly where it was.
        for k in 0..n {
            let op = OpId::from_index(k);
            if ps.placement(op).is_some() {
                continue;
            }
            for cluster in 0..machine.num_clusters() {
                for t in 0..i64::from(2 * ii) {
                    if let Ok(h) = ps.place(op, cluster, t, model.latency[k], false, 77) {
                        ps.unplace(h);
                    }
                }
            }
            let now = (
                ps.num_placed(),
                ps.num_transfers(),
                ps.pressure_lower_bound().to_vec(),
                ps.max_used_cluster(),
                ps.max_used_bus(),
            );
            assert_eq!(now, snapshot, "probing {op} perturbed the kernel");
        }

        // Unwinding the whole prefix restores the empty kernel.
        for h in handles.into_iter().rev() {
            ps.unplace(h);
        }
        assert_eq!(ps.num_placed(), 0);
        assert_eq!(ps.num_transfers(), 0);
        assert!(ps.pressure_lower_bound().iter().all(|&p| p == 0));
    }
}
