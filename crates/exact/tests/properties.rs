//! Integration tests of the exact scheduler: known optima, certified
//! infeasibility, budget behaviour, and the Figure-3 pinned regression.

use mvp_core::{validate_schedule, BaselineScheduler, ModuloScheduler, RmcaScheduler};
use mvp_exact::{solve, ExactOptions, ExactScheduler, IiVerdict};
use mvp_ir::{mii, Loop};
use mvp_machine::presets;
use mvp_workloads::generator::{GeneratorConfig, LoopGenerator};
use mvp_workloads::motivating::{motivating_loop, MotivatingParams};
use mvp_workloads::rng::SplitMix64;

/// Tiny loops whose optimal II equals the minimum II on the Table-1
/// machines: the oracle must prove it, not merely find it.
#[test]
fn known_optimal_tiny_loops_prove_ii_equals_mii() {
    let mut loops = Vec::new();

    // Independent fp ops: II = ResMII.
    let mut b = Loop::builder("independent");
    for k in 0..6 {
        b.fp_op(format!("F{k}"));
    }
    loops.push(b.build().unwrap());

    // Load -> fp -> store chain: II = 1 on every Table-1 machine.
    let mut b = Loop::builder("chain");
    let i = b.dimension("I", 64);
    let a = b.auto_array("A", 4096);
    let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
    let f = b.fp_op("F");
    let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
    b.data_edge(ld, f, 0);
    b.data_edge(f, st, 0);
    loops.push(b.build().unwrap());

    // Accumulator recurrence: II = RecMII = 2.
    let mut b = Loop::builder("acc");
    let x = b.fp_op("X");
    b.data_edge(x, x, 1);
    loops.push(b.build().unwrap());

    for l in &loops {
        for machine in [
            presets::unified(),
            presets::two_cluster(),
            presets::four_cluster(),
        ] {
            let outcome = solve(l, &machine, &ExactOptions::new()).unwrap();
            let s = outcome.schedule.as_ref().expect("feasible");
            assert!(
                outcome.proved_optimal,
                "{} on {}: not proved optimal",
                l.name(),
                machine.name
            );
            assert_eq!(
                s.ii(),
                mii::minimum_ii(l, &machine),
                "{} on {}",
                l.name(),
                machine.name
            );
            let v = validate_schedule(l, &machine, s);
            assert!(v.is_empty(), "{} on {}: {v:?}", l.name(), machine.name);
        }
    }
}

/// Probing below the minimum II must produce certified infeasibility, both
/// via the resource-count certificate and the positive-cycle certificate.
#[test]
fn infeasibility_below_mii_is_certified() {
    // Resource-bound loop: 5 memory ops on the motivating machine (2 memory
    // units) force ResMII = 3; an exact search restricted below it must
    // certify every II infeasible rather than time out.
    let (l, _) = motivating_loop(&MotivatingParams::default());
    let machine = presets::motivating_example_machine();
    assert_eq!(mii::minimum_ii(&l, &machine), 3);

    // Recurrence-bound loop: RecMII = 4.
    let mut b = Loop::builder("rec");
    let x = b.fp_op("X");
    let y = b.fp_op("Y");
    b.data_edge(x, y, 0);
    b.data_edge(y, x, 1);
    let rec = b.build().unwrap();
    let unified = presets::unified();
    assert_eq!(mii::minimum_ii(&rec, &unified), 4);

    // The outer search starts at the minimum II, so II < MII never even
    // gets probed — the certificates are exercised through `solve`'s probe
    // log staying clean and through the model directly:
    let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
    assert!(outcome.probes.iter().all(|p| p.ii >= 3));
    assert_eq!(outcome.lower_bound.max(3), outcome.lower_bound);

    let outcome = solve(&rec, &unified, &ExactOptions::new()).unwrap();
    assert_eq!(outcome.min_ii, 4);
    assert!(outcome.proved_optimal);
    assert_eq!(outcome.schedule_ii(), Some(4));
}

/// A starved budget must yield a lower bound — never a panic, never a
/// schedule claim.
#[test]
fn budget_exhaustion_returns_a_lower_bound() {
    let (l, _) = motivating_loop(&MotivatingParams::default());
    let machine = presets::motivating_example_machine();
    for budget in [1u64, 10, 100, 1000] {
        let outcome = solve(&l, &machine, &ExactOptions::new().with_node_budget(budget)).unwrap();
        assert!(!outcome.proved_optimal);
        assert!(outcome.schedule.is_none(), "budget {budget}");
        assert_eq!(outcome.lower_bound, 3, "budget {budget}");
        assert_eq!(
            outcome.probes.last().unwrap().verdict,
            IiVerdict::Unknown,
            "budget {budget}"
        );
        assert!(
            outcome.nodes <= budget + 1,
            "budget {budget}: {}",
            outcome.nodes
        );
    }
}

/// Figure-3 pinned regression: on the motivating-example machine the exact
/// scheduler achieves (and proves) II = 3 — the unified-architecture mII
/// quoted in Section 3 — while both heuristic schedulers land at II = 4, a
/// 33% optimality gap. This is precisely the gap the paper's Figure 3
/// motivates: a smarter cluster assignment recovers the unified II on the
/// distributed machine.
#[test]
fn motivating_loop_exact_ii_is_three_where_heuristics_need_four() {
    let (l, _) = motivating_loop(&MotivatingParams::default());
    let machine = presets::motivating_example_machine();

    let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
    let s = outcome.schedule.as_ref().expect("feasible");
    assert!(outcome.proved_optimal);
    assert_eq!(s.ii(), 3);
    assert_eq!(outcome.lower_bound, 3);
    assert!(validate_schedule(&l, &machine, s).is_empty());

    let baseline = BaselineScheduler::new().schedule(&l, &machine).unwrap();
    let rmca = RmcaScheduler::new().schedule(&l, &machine).unwrap();
    assert_eq!(baseline.ii(), 4);
    assert_eq!(rmca.ii(), 4);
    assert!((outcome.optimality_gap_of(baseline.ii()) - 1.0 / 3.0).abs() < 1e-12);
}

/// Completeness cross-check: wherever a heuristic finds a schedule at some
/// II, the exact search probed at that II must not claim infeasibility.
/// (This is the property conflict-driven backjumping and symmetry breaking
/// could silently break; 48 seeded loops keep them honest.)
#[test]
fn exact_search_never_contradicts_a_heuristic_schedule() {
    let machine = presets::two_cluster();
    let cfg = GeneratorConfig {
        min_ops: 3,
        max_ops: 10,
        ..GeneratorConfig::default()
    };
    let mut meta = SplitMix64::seed_from_u64(0x000E_AAC7);
    let mut checked = 0usize;
    for case in 0..48 {
        let seed = meta.next_u64();
        let mut g = LoopGenerator::new(cfg, seed);
        let l = g.generate();
        let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
        for result in [
            BaselineScheduler::new().schedule(&l, &machine),
            RmcaScheduler::new().schedule(&l, &machine),
        ] {
            let Ok(s) = result else { continue };
            assert!(
                s.ii() >= outcome.lower_bound,
                "case {case} seed {seed:#x}: heuristic II {} below certified bound {}",
                s.ii(),
                outcome.lower_bound
            );
            checked += 1;
        }
        if let Some(s) = &outcome.schedule {
            let v = validate_schedule(&l, &machine, s);
            assert!(v.is_empty(), "case {case} seed {seed:#x}: {v:?}");
        }
    }
    assert!(checked > 0);
}

/// The ModuloScheduler front-end slots into generic scheduler code.
#[test]
fn exact_scheduler_is_a_drop_in_modulo_scheduler() {
    let mut b = Loop::builder("tiny");
    let x = b.fp_op("X");
    let y = b.fp_op("Y");
    b.data_edge(x, y, 0);
    let l = b.build().unwrap();
    let machine = presets::two_cluster();
    let schedulers: Vec<Box<dyn ModuloScheduler>> = vec![
        Box::new(ExactScheduler::new()),
        Box::new(RmcaScheduler::new()),
    ];
    let mut iis = Vec::new();
    for s in &schedulers {
        let schedule = s.schedule(&l, &machine).unwrap();
        assert!(validate_schedule(&l, &machine, &schedule).is_empty());
        iis.push(schedule.ii());
    }
    assert!(iis[1] >= iis[0], "heuristic beat the exact scheduler");
}
