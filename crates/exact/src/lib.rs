//! `mvp-exact` — a branch-and-bound **exact modulo scheduler**: the
//! optimality oracle for the heuristic schedulers of `mvp-core`.
//!
//! The paper evaluates its cluster-assignment heuristics only against each
//! other; this crate answers the stronger question *how far from optimal*
//! they land, following the exact-scheduling line of work (Roorda's
//! SMT-based optimal software pipelining; Tirelli et al.'s SAT-MapIt). For a
//! candidate initiation interval the clustered placement + time-slot
//! assignment problem is solved exhaustively by branch-and-bound over a
//! constraint model; an outer search probes IIs upwards from
//! `max(ResMII, RecMII)` and yields either a **provably optimal schedule**
//! or a **certified lower bound** when the node budget trips
//! ([`ExactOutcome`]).
//!
//! A second, fully independent engine lowers the same rule set to CNF and
//! hands it to the in-workspace CDCL solver of `mvp-sat`
//! ([`ExactBackend::Sat`]); [`ExactBackend::Portfolio`] races both engines
//! per probe on a persistent `mvp-exec` pool — first certificate wins, the
//! rival is cancelled through a shared poison flag, and agreeing
//! certificates are cross-checked (a disagreement panics rather than
//! picking a side).
//!
//! # The constraint model is the validator's rule set
//!
//! The model deliberately reuses the vocabulary of the independent legality
//! oracle [`mvp_core::validate::validate_schedule`] rather than any
//! scheduler's internals — each search constraint maps one-to-one onto the
//! violation it rules out:
//!
//! | search constraint | validator counterpart |
//! |---|---|
//! | at most `fu_count` operations per (cluster, unit kind, `cycle % II`) | `Violation::FuOversubscribed` |
//! | `cycle(dst) + II·distance ≥ cycle(src) + latency (+ bus latency when clusters differ)` per edge | `Violation::DependenceViolated` |
//! | one transfer per cross-cluster data-edge pair, recorded with the real clusters | `Violation::MissingCommunication`, `Violation::SpuriousCommunication` |
//! | transfer starts inside `[producer completion, consumer start − bus latency]` (intersected over parallel edges) | `Violation::CommunicationOutsideWindow` |
//! | on finite bus sets: one transfer per (bus, modulo row), each occupying `bus latency` rows; transfers longer than the II are rejected outright | `Violation::BusOverlap`, `Violation::BusOutOfRange` |
//! | MaxLive per cluster (recomputed with [`mvp_core::lifetime::register_pressure`]) fits the register file | `Violation::RegisterFileOverflow`, `Violation::RegisterPressureMismatch` |
//! | placements carry the hit latency and `miss_scheduled = false` | `Violation::LatencyMismatch`, `Violation::MissScheduledNonLoad` |
//!
//! Consequently every schedule this crate emits passes the validator with
//! zero violations (debug builds assert it), and an "infeasible" verdict
//! means *no schedule the validator would accept exists at that II* — with
//! two documented model caveats:
//!
//! * the search is exhaustive over schedules spanning at most
//!   [`ExactOptions::horizon_stages`] pipeline stages beyond the ASAP bound
//!   (default 8, far beyond anything the heuristics produce);
//! * parallel data edges between the same (producer, consumer) pair share
//!   one transfer whose start window is *intersected* over the edges — the
//!   one-copy-per-iteration reading, under which the value reaches the
//!   consumer before its earliest use across distances. The validator is
//!   laxer (a transfer may serve any one parallel edge), so on loops with
//!   same-pair edges of *different* distances the certificate is relative
//!   to the stricter model. The loop generator cannot produce such pairs
//!   (forward edges and recurrence edges point in opposite id directions),
//!   and no paper loop has them.
//!
//! # Certificates
//!
//! Infeasibility of an II is certified three ways, strongest first:
//!
//! 1. **resource counts** — some unit kind must issue more operations per II
//!    than the machine provides slots (`ops > units × II`), the counting
//!    argument behind `ResMII`;
//! 2. **positive dependence cycles** — Bellman–Ford propagation of the
//!    difference constraints `t_dst − t_src ≥ latency − II·distance`
//!    diverges, the argument behind `RecMII`;
//! 3. **exhausted search** — the branch-and-bound explored every placement
//!    within the horizon (with conflict-driven backjumping and
//!    cluster/bus-symmetry breaking; see the `search` module's docs).
//!
//! # Example
//!
//! ```
//! use mvp_exact::{solve, ExactOptions};
//! use mvp_core::{ModuloScheduler, RmcaScheduler};
//! use mvp_ir::Loop;
//! use mvp_machine::presets;
//!
//! # fn main() -> Result<(), mvp_core::ScheduleError> {
//! let mut b = Loop::builder("demo");
//! let i = b.dimension("I", 64);
//! let a = b.auto_array("A", 4096);
//! let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
//! let f = b.fp_op("F");
//! let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
//! b.data_edge(ld, f, 0);
//! b.data_edge(f, st, 0);
//! let l = b.build().expect("valid loop");
//!
//! let machine = presets::two_cluster();
//! let outcome = solve(&l, &machine, &ExactOptions::new())?;
//! let heuristic = RmcaScheduler::new().schedule(&l, &machine)?;
//! assert!(heuristic.ii() >= outcome.lower_bound);
//! println!(
//!     "heuristic II = {}, exact: {} (gap {:.0}%)",
//!     heuristic.ii(),
//!     outcome,
//!     100.0 * outcome.optimality_gap_of(heuristic.ii())
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod options;
pub mod outcome;
pub mod propagate;
mod sat_backend;
pub mod scheduler;
mod search;

pub use model::Problem;
pub use options::ExactOptions;
pub use outcome::{ExactOutcome, IiProbe, IiVerdict, SolverKind};
pub use scheduler::{solve, solve_with, ExactBackend, ExactScheduler};

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::{ModuloScheduler, RmcaScheduler};
    use mvp_machine::presets;

    #[test]
    fn the_oracle_never_exceeds_a_heuristic() {
        let mut b = mvp_ir::Loop::builder("tiny");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        let l = b.build().unwrap();
        let machine = presets::two_cluster();
        let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
        let heuristic = RmcaScheduler::new().schedule(&l, &machine).unwrap();
        assert!(heuristic.ii() >= outcome.lower_bound);
        assert!(outcome.proved_optimal);
    }
}
