//! The branch-and-bound search for one fixed initiation interval.
//!
//! A fixed-II probe is a *satisfaction* problem: find, for every operation, a
//! (cluster, start cycle) pair — plus a (start cycle, bus) pair for every
//! cross-cluster register transfer — such that every rule of the legality
//! oracle holds. The search branches over operations in a
//! most-constrained-first order and prunes with:
//!
//! * **static windows** from [`crate::propagate::windows`] (constraint
//!   propagation over the dependence difference constraints),
//! * **dynamic windows** tightened by already-placed neighbours (including
//!   the register-bus latency once both clusters are known),
//! * **modulo resource tables** for functional units and register buses,
//! * a monotone **register-pressure lower bound** over the placed prefix,
//! * **conflict-driven backjumping**: every dead end records the deepest
//!   decision level implicated (binding window bounds, functional-unit or
//!   bus occupants); when a subtree's failure provably does not involve the
//!   current level's choice, the search jumps straight back to the deepest
//!   implicated level instead of re-enumerating unrelated siblings. Failures
//!   whose causes cannot be fully attributed (register pressure, options
//!   pruned by symmetry breaking) fall back to chronological backtracking,
//!   which keeps the jump always sound,
//! * **symmetry breaking** over interchangeable clusters and buses (a
//!   placement may only open cluster `max-used + 1`; likewise for buses),
//! * a **time-shift dominance rule** (the ROADMAP's "normalize the minimum
//!   start cycle into `[0, II)`", strengthened to an exact anchor): shifting
//!   *every* start cycle of a legal schedule down by the same amount
//!   rotates all modulo rows in lockstep — row *differences*, and therefore
//!   every functional-unit conflict, bus overlap, dependence distance and
//!   register lifetime, are preserved — so any legal schedule can be
//!   shifted until its minimum start cycle is exactly 0. The search only
//!   enumerates such *normalized* schedules: once the last operation whose
//!   static window still reaches cycle 0 is about to be placed with no
//!   cycle-0 anchor committed yet, its candidate range is capped to the
//!   anchor cycle itself. Every schedule shape explored at an un-anchored
//!   offset would be a shifted duplicate of one explored at offset 0.
//!
//! Every placement attempt and bus reservation costs one node from the
//! shared budget; exceeding it aborts the probe with
//! [`FixedIiOutcome::Budget`] (an *unknown*, never an infeasibility claim).

use crate::model::Problem;
use crate::options::ExactOptions;
use crate::propagate::{windows, Windows};
use mvp_core::lifetime;
use mvp_core::schedule::{Communication, PlacedOp};
use mvp_ir::OpId;
use mvp_resmodel::{PartialSchedule, PlaceError, Token, TransferPair};
use std::sync::atomic::{AtomicBool, Ordering};

/// Result of one fixed-II probe.
#[derive(Debug)]
pub(crate) enum FixedIiOutcome {
    /// A legal schedule exists; the placements and transfers are returned
    /// for [`crate::scheduler`] to assemble into a `Schedule`.
    Feasible {
        /// Per-operation placements, in operation-id order.
        ops: Vec<PlacedOp>,
        /// Register-bus transfers.
        comms: Vec<Communication>,
    },
    /// No legal schedule exists at this II (within the search horizon).
    Infeasible,
    /// The node budget ran out before the probe was decided.
    Budget,
    /// A portfolio rival raised the poison flag before the probe was
    /// decided (never produced without a cancellation flag).
    Cancelled,
}

/// Result of the subtree rooted at one decision level.
///
/// `Fail(t)` carries the backjump contract: *every* choice at this level
/// fails, and the conflict responsible involves only decision levels `≤ t`
/// (`t < level`; `-1` means the failure is independent of all decisions, so
/// the whole probe is infeasible).
enum Step {
    Solved,
    Budget,
    Fail(i64),
}

/// Result of the transfer enumeration belonging to one candidate placement.
enum TransferStep {
    Solved,
    Budget,
    /// This candidate placement fails; the conflict involves the current
    /// level's choice plus levels `≤ t`.
    CandidateFail(i64),
    /// A deeper subtree failed with a conflict that provably does not
    /// involve the current level (`t < level`): propagate immediately.
    DeepFail(i64),
}

/// A complete solution: per-operation placements plus the transfer records.
type RawSolution = (Vec<PlacedOp>, Vec<Communication>);

struct Searcher<'p, 'l, 'm> {
    p: &'p Problem<'l, 'm>,
    ii: u32,
    win: &'p Windows,
    /// Operations in branch order; position = decision level.
    order: Vec<OpId>,
    /// The shared incremental constraint kernel: placements, functional-unit
    /// and bus occupancy, the transfer stack and the monotone MaxLive lower
    /// bound all live here. Occupant tokens are decision levels, so every
    /// conflict the kernel reports names the deepest implicated level for
    /// backjumping.
    ps: PartialSchedule<'p, 'l, 'm>,
    /// Placed operations anchored at start cycle 0. The time-shift
    /// dominance rule keeps this above zero in every complete assignment.
    stage0_placed: usize,
    /// Unplaced operations whose *static* window still admits cycle 0
    /// (`earliest == 0`). Dynamic windows only tighten, so this is a sound
    /// over-approximation of the ops that could still anchor the schedule.
    stage0_capable_unplaced: usize,
    enforce_pressure: bool,
    nodes: u64,
    /// Conflict-driven backjumps taken (a `DeepFail` propagated past a
    /// whole decision level).
    backjumps: u64,
    /// Levels whose candidate range was capped by the time-shift dominance
    /// anchor.
    dominance_cuts: u64,
    budget: u64,
    /// Portfolio poison flag: polled on every charged node so a rival
    /// solver's certificate aborts this search promptly.
    cancel: Option<&'p AtomicBool>,
    cancelled: bool,
    solution: Option<RawSolution>,
}

impl<'p, 'l, 'm> Searcher<'p, 'l, 'm> {
    fn new(
        p: &'p Problem<'l, 'm>,
        ii: u32,
        win: &'p Windows,
        options: &ExactOptions,
        cancel: Option<&'p AtomicBool>,
    ) -> Self {
        let order = p.branch_order(&win.widths());
        Self {
            p,
            ii,
            win,
            order,
            ps: PartialSchedule::new(p.model(), ii),
            stage0_placed: 0,
            stage0_capable_unplaced: win.earliest.iter().filter(|&&e| e == 0).count(),
            enforce_pressure: options.enforce_register_pressure,
            nodes: 0,
            backjumps: 0,
            dominance_cuts: 0,
            budget: options.node_budget,
            cancel,
            cancelled: false,
            solution: None,
        }
    }

    fn charge_node(&mut self) -> bool {
        if self.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            self.cancelled = true;
            return false;
        }
        self.nodes += 1;
        self.nodes <= self.budget
    }

    /// Enumerates (start cycle, bus) choices for `pairs[idx..]`, recursing
    /// into the next decision level once every transfer is reserved.
    /// `level` is the decision level the transfers belong to.
    fn place_transfers(
        &mut self,
        level: usize,
        pairs: &[TransferPair],
        idx: usize,
    ) -> TransferStep {
        if idx == pairs.len() {
            return match self.dfs(level + 1) {
                Step::Solved => TransferStep::Solved,
                Step::Budget => TransferStep::Budget,
                Step::Fail(t) if t < level as i64 => TransferStep::DeepFail(t),
                Step::Fail(_) => TransferStep::CandidateFail(level as i64 - 1),
            };
        }
        let pair = pairs[idx];
        let ii = i64::from(self.ii);

        let Some(num_buses) = self.p.num_buses else {
            // Unbounded bus set: no rule constrains the transfer, so one
            // canonical choice (earliest start, bus 0) is complete.
            let id = self
                .ps
                .reserve_transfer_at(
                    pair.src,
                    pair.dst,
                    pair.from,
                    pair.to,
                    pair.lo,
                    0,
                    level as Token,
                )
                .expect("unbounded bus sets always admit a transfer");
            let step = self.place_transfers(level, pairs, idx + 1);
            self.ps.release_transfer(id);
            return step;
        };

        if i64::from(self.p.bus_latency) > ii {
            // A transfer longer than the II overlaps its own next-iteration
            // instance on any finite bus (the validator's unconditional
            // `BusOverlap`); only co-locating the endpoints — a different
            // cluster choice here or at the neighbour — avoids the transfer.
            return TransferStep::CandidateFail(i64::from(pair.neighbour_token));
        }

        let mut fail_target = i64::from(pair.neighbour_token);
        let mut conservative = false;
        let hi = pair.hi.min(pair.lo + ii - 1); // only II distinct start rows exist
        for start in pair.lo..=hi {
            if !self.charge_node() {
                return TransferStep::Budget;
            }
            let allowed = self.ps.max_used_bus().map_or(1, |b| b + 2).min(num_buses);
            if allowed < num_buses {
                conservative = true; // symmetry breaking pruned bus labels
            }
            for bus in 0..allowed {
                let id = match self.ps.reserve_transfer_at(
                    pair.src,
                    pair.dst,
                    pair.from,
                    pair.to,
                    start,
                    bus,
                    level as Token,
                ) {
                    Err(in_way) => {
                        if let Some(level_in_way) = in_way {
                            fail_target = fail_target.max(i64::from(level_in_way));
                        }
                        continue;
                    }
                    Ok(id) => id,
                };
                let step = self.place_transfers(level, pairs, idx + 1);
                self.ps.release_transfer(id);
                match step {
                    TransferStep::Solved => return TransferStep::Solved,
                    TransferStep::Budget => return TransferStep::Budget,
                    TransferStep::DeepFail(t) => return TransferStep::DeepFail(t),
                    TransferStep::CandidateFail(m) => fail_target = fail_target.max(m),
                }
            }
        }
        if conservative {
            fail_target = fail_target.max(level as i64 - 1);
        }
        TransferStep::CandidateFail(fail_target.min(level as i64 - 1))
    }

    fn dfs(&mut self, level: usize) -> Step {
        if level == self.p.num_ops() {
            // Complete assignment: apply the final MaxLive register-pressure
            // rule exactly as the validator recomputes it.
            debug_assert!(
                self.stage0_placed > 0,
                "the time-shift dominance rule admits only normalized schedules"
            );
            let ops = self.ps.placed_ops();
            if self.enforce_pressure {
                let pressure = lifetime::register_pressure(
                    self.p.l,
                    &ops,
                    self.ii,
                    self.p.machine.num_clusters(),
                );
                if pressure
                    .iter()
                    .zip(&self.p.register_file)
                    .any(|(&used, &cap)| used > cap)
                {
                    return Step::Fail(level as i64 - 1);
                }
            }
            self.solution = Some((ops, self.ps.communications()));
            return Step::Solved;
        }

        let op = self.order[level];
        let assumed_lat = self.p.latency[op.index()];
        let num_clusters = self.p.machine.num_clusters();
        let mut fail_target = -1i64;
        let mut conservative = false;

        // Time-shift dominance: when no operation is anchored at cycle 0
        // yet and no *other* unplaced operation's window reaches it, this
        // operation is the schedule's last possible anchor — candidates
        // above cycle 0 would only enumerate shifted copies of schedules
        // explored with the anchor committed, so they are pruned
        // (conservatively attributed, like the cluster/bus symmetry
        // breaking).
        let capable = self.win.earliest[op.index()] == 0;
        let must_take_stage0 =
            self.stage0_placed == 0 && self.stage0_capable_unplaced - usize::from(capable) == 0;
        if must_take_stage0 {
            conservative = true;
            self.dominance_cuts += 1;
        }

        let cluster_cap = if self.p.homogeneous {
            (self.ps.max_used_cluster().map_or(0, |c| c + 1) + 1).min(num_clusters)
        } else {
            num_clusters
        };
        if cluster_cap < num_clusters {
            conservative = true; // symmetry breaking pruned cluster labels
        }

        for cluster in 0..cluster_cap {
            let kind = self.p.fu_kind[op.index()].index();
            if self.p.fu_count[cluster][kind] == 0 {
                continue; // no unit of this kind: independent of any decision
            }
            // Dynamic bounds: the static window tightened by already-placed
            // neighbours with the exact (bus-aware) edge weights. The
            // neighbours that tightened the window are implicated even when
            // it stays non-empty: the candidates they pruned were never
            // tried, so any exhaustion below must not backjump past them.
            // (The culprit is `None` when only the static window applies.)
            let bounds = self.ps.neighbour_bounds(
                op,
                cluster,
                assumed_lat,
                Some(self.win.earliest[op.index()]),
                Some(self.win.latest[op.index()]),
            );
            let lo = bounds.lo.expect("initial window bounds are Some");
            let mut hi = bounds.hi.expect("initial window bounds are Some");
            fail_target = fail_target.max(bounds.culprit.map_or(-1, i64::from));
            if must_take_stage0 {
                hi = hi.min(0);
            }
            if lo > hi {
                continue;
            }
            for t in lo..=hi {
                if !self.charge_node() {
                    return Step::Budget;
                }
                match self
                    .ps
                    .try_reserve_op(op, cluster, t, assumed_lat, false, level as Token)
                {
                    Err(PlaceError::FuBusy { conflict }) => {
                        if let Some(level_in_way) = conflict {
                            fail_target = fail_target.max(i64::from(level_in_way));
                        }
                        continue;
                    }
                    Err(e) => unreachable!("hit-latency placements cannot fail with {e:?}"),
                    Ok(()) => {}
                }
                self.stage0_capable_unplaced -= usize::from(capable);
                let takes_stage0 = t == 0;
                self.stage0_placed += usize::from(takes_stage0);

                let step = if self.enforce_pressure && self.ps.pressure_exceeded() {
                    // Global constraint: the culprit set is unknowable, so
                    // fall back to chronological attribution.
                    TransferStep::CandidateFail(level as i64 - 1)
                } else {
                    let pairs = self.ps.transfer_pairs(op);
                    self.place_transfers(level, &pairs, 0)
                };

                self.stage0_placed -= usize::from(takes_stage0);
                self.stage0_capable_unplaced += usize::from(capable);
                self.ps.release_op(op);

                match step {
                    TransferStep::Solved => return Step::Solved,
                    TransferStep::Budget => return Step::Budget,
                    // The conflict provably excludes this level: no other
                    // candidate here can fix it either — backjump.
                    TransferStep::DeepFail(t) => {
                        self.backjumps += 1;
                        return Step::Fail(t);
                    }
                    TransferStep::CandidateFail(m) => fail_target = fail_target.max(m),
                }
            }
        }

        if conservative {
            fail_target = fail_target.max(level as i64 - 1);
        }
        Step::Fail(fail_target.min(level as i64 - 1))
    }
}

/// Runs one fixed-II probe: certificates first (resource counts, positive
/// dependence cycles), then the exhaustive search. `nodes_used` is
/// incremented by the nodes this probe consumed.
pub(crate) fn solve_fixed_ii(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    nodes_used: &mut u64,
    cancel: Option<&AtomicBool>,
) -> FixedIiOutcome {
    if ii == 0 || p.resource_infeasible(ii) {
        return FixedIiOutcome::Infeasible;
    }
    let Some(win) = windows(p, ii, |asap| p.horizon(asap, ii, options)) else {
        return FixedIiOutcome::Infeasible;
    };
    let mut searcher = Searcher::new(p, ii, &win, options, cancel);
    let step = searcher.dfs(0);
    *nodes_used += searcher.nodes;
    // One registry flush per probe; the search loop itself touches no
    // atomics. Stable for non-racing runs (a cancelled portfolio rival's
    // partial node count is scheduling-dependent, like the SAT side).
    mvp_trace::counter_handle!("exact.bnb.nodes", Stable).add(searcher.nodes);
    mvp_trace::counter_handle!("exact.bnb.backjumps", Stable).add(searcher.backjumps);
    mvp_trace::counter_handle!("exact.bnb.dominance_cuts", Stable).add(searcher.dominance_cuts);
    match step {
        Step::Solved => {
            let (ops, comms) = searcher
                .solution
                .expect("solved searches record a solution");
            FixedIiOutcome::Feasible { ops, comms }
        }
        Step::Budget if searcher.cancelled => FixedIiOutcome::Cancelled,
        Step::Budget => FixedIiOutcome::Budget,
        Step::Fail(_) => FixedIiOutcome::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;
    use mvp_machine::presets;

    fn probe(l: &Loop, machine: &mvp_machine::MachineConfig, ii: u32) -> FixedIiOutcome {
        let p = Problem::new(l, machine).unwrap();
        let mut nodes = 0;
        solve_fixed_ii(&p, ii, &ExactOptions::new(), &mut nodes, None)
    }

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn feasible_probes_return_placements_for_every_op() {
        let l = chain();
        let machine = presets::two_cluster();
        match probe(&l, &machine, 1) {
            FixedIiOutcome::Feasible { ops, .. } => {
                assert_eq!(ops.len(), 3);
                assert!(ops.iter().all(|p| p.cluster < 2));
                assert!(ops.iter().all(|p| p.row == 0 && !p.miss_scheduled));
            }
            other => panic!("expected feasible at II=1, got {other:?}"),
        }
    }

    #[test]
    fn recurrence_bound_is_certified_infeasible() {
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        assert!(matches!(probe(&l, &machine, 3), FixedIiOutcome::Infeasible));
        assert!(matches!(
            probe(&l, &machine, 4),
            FixedIiOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn resource_bound_is_certified_infeasible() {
        // 5 fp ops on the 4-cluster machine (4 fp units in total): II=1 is
        // certified infeasible by counting, II=2 is feasible.
        let mut b = Loop::builder("wide");
        for k in 0..5 {
            b.fp_op(format!("F{k}"));
        }
        let l = b.build().unwrap();
        let machine = presets::four_cluster();
        assert!(matches!(probe(&l, &machine, 1), FixedIiOutcome::Infeasible));
        assert!(matches!(
            probe(&l, &machine, 2),
            FixedIiOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn tiny_budget_reports_budget_not_infeasible() {
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let mut nodes = 0;
        let out = solve_fixed_ii(
            &p,
            1,
            &ExactOptions::new().with_node_budget(1),
            &mut nodes,
            None,
        );
        assert!(matches!(out, FixedIiOutcome::Budget), "{out:?}");
        assert!(nodes >= 1);
    }

    #[test]
    fn a_raised_poison_flag_cancels_the_probe() {
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let cancel = AtomicBool::new(true);
        let mut nodes = 0;
        let out = solve_fixed_ii(&p, 1, &ExactOptions::new(), &mut nodes, Some(&cancel));
        assert!(matches!(out, FixedIiOutcome::Cancelled), "{out:?}");
        assert_eq!(nodes, 0, "cancelled probes charge no nodes");
    }

    #[test]
    fn feasible_probes_are_anchored_at_cycle_zero() {
        // The time-shift dominance rule admits only normalized schedules:
        // some operation starts at cycle 0 in every solution, at every II
        // (shifted copies are pruned, and with them the bulk of the search
        // space of multi-stage probes).
        let l = chain();
        for machine in [
            presets::unified(),
            presets::two_cluster(),
            presets::motivating_example_machine(),
        ] {
            for ii in 1..=4 {
                if let FixedIiOutcome::Feasible { ops, .. } = probe(&l, &machine, ii) {
                    let min_cycle = ops.iter().map(|p| p.cycle).min().unwrap();
                    assert_eq!(min_cycle, 0, "{} at II={ii}", machine.name);
                }
            }
        }
    }

    #[test]
    fn cross_cluster_recurrences_account_for_the_bus_latency() {
        // Two fp chains too wide for one cluster of the motivating machine
        // (1 fp unit per cluster, 1 register bus of latency 2): a recurrence
        // X -> Y -> X (distance 1) with both ops forced into different
        // clusters by a third fp op pays 2 bus hops. At II=4 the recurrence
        // fits co-located (2+2), and the search must find that placement
        // rather than a split one.
        let mut b = Loop::builder("bus-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::motivating_example_machine();
        assert!(matches!(probe(&l, &machine, 3), FixedIiOutcome::Infeasible));
        match probe(&l, &machine, 4) {
            FixedIiOutcome::Feasible { ops, comms } => {
                // The only way to meet the 4-cycle budget is co-location.
                assert_eq!(ops[0].cluster, ops[1].cluster);
                assert!(comms.is_empty());
            }
            other => panic!("expected feasible at II=4, got {other:?}"),
        }
    }
}
