//! Constraint propagation: static start-cycle windows per operation.
//!
//! For a fixed II the dependence edges form a system of difference
//! constraints `t_dst − t_src ≥ w(e)` with `w(e) = latency − II·distance`
//! (the bus-free relaxation of the validator's `DependenceViolated` rule).
//! Longest paths over this system give each operation an earliest (ASAP) and,
//! against the search horizon, a latest (ALAP) start cycle. Two outcomes
//! matter beyond the windows themselves:
//!
//! * a **positive cycle** in the constraint graph proves the II infeasible
//!   outright — this is the `RecMII` certificate, independent of any search
//!   horizon;
//! * tight windows shrink the branching factor of the search and order the
//!   operations most-constrained-first.

use crate::model::Problem;

/// Static per-operation start-cycle windows for one candidate II.
#[derive(Debug, Clone)]
pub struct Windows {
    /// Earliest start cycle per operation (longest path from cycle 0).
    pub earliest: Vec<i64>,
    /// Latest start cycle per operation (longest path to the horizon).
    pub latest: Vec<i64>,
    /// The horizon the latest cycles were computed against.
    pub horizon: i64,
}

impl Windows {
    /// Window width (`latest − earliest + 1`) per operation.
    #[must_use]
    pub fn widths(&self) -> Vec<i64> {
        self.earliest
            .iter()
            .zip(&self.latest)
            .map(|(e, l)| l - e + 1)
            .collect()
    }
}

/// Computes the static windows for `ii`, or `None` when the difference
/// constraints contain a positive cycle (the II is certified infeasible, no
/// horizon involved).
///
/// `horizon_of` receives the maximum ASAP cycle and returns the horizon to
/// compute ALAP against (see [`Problem::horizon`]).
#[must_use]
pub fn windows(
    p: &Problem<'_, '_>,
    ii: u32,
    horizon_of: impl FnOnce(i64) -> i64,
) -> Option<Windows> {
    let n = p.num_ops();
    // ASAP: longest paths from a virtual source (t ≥ 0 for every op),
    // Bellman–Ford style. n rounds reach a fixpoint unless a positive cycle
    // keeps relaxing.
    let mut earliest = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for e in p.l.edges() {
            let bound = earliest[e.src.index()] + p.edge_weight(e, ii);
            if bound > earliest[e.dst.index()] {
                earliest[e.dst.index()] = bound;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n {
            return None; // positive cycle: II < RecMII
        }
    }

    let asap_max = earliest.iter().copied().max().unwrap_or(0);
    let horizon = horizon_of(asap_max).max(asap_max);

    // ALAP against the horizon: latest[src] ≤ latest[dst] − w(e). The graph
    // has no positive cycles here, so n rounds converge.
    let mut latest = vec![horizon; n];
    for _ in 0..n {
        let mut changed = false;
        for e in p.l.edges() {
            let bound = latest[e.dst.index()] - p.edge_weight(e, ii);
            if bound < latest[e.src.index()] {
                latest[e.src.index()] = bound;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // The ASAP assignment satisfies every constraint and fits under the
    // horizon, so earliest ≤ latest always holds; keep a guard anyway.
    if earliest.iter().zip(&latest).any(|(e, l)| e > l) {
        return None;
    }
    Some(Windows {
        earliest,
        latest,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ExactOptions;
    use mvp_ir::Loop;
    use mvp_machine::presets;

    fn opts() -> ExactOptions {
        ExactOptions::new()
    }

    #[test]
    fn chain_windows_follow_latencies() {
        let mut b = Loop::builder("chain");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        let l = b.build().unwrap();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let o = opts();
        let w = windows(&p, 1, |asap| p.horizon(asap, 1, &o)).unwrap();
        assert_eq!(w.earliest, vec![0, 2]);
        assert_eq!(w.latest[0], w.latest[1] - 2);
        assert_eq!(w.horizon, 2 + i64::from(o.horizon_stages));
        assert!(w.widths().iter().all(|&x| x >= 1));
    }

    #[test]
    fn positive_cycles_certify_infeasibility() {
        // fp X -> Y -> X (distance 1): circuit latency 4, so II < 4 has a
        // positive cycle and II = 4 does not.
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        let p = Problem::new(&l, &machine).unwrap();
        let o = opts();
        for ii in 1..4 {
            assert!(
                windows(&p, ii, |a| p.horizon(a, ii, &o)).is_none(),
                "II={ii}"
            );
        }
        assert!(windows(&p, 4, |a| p.horizon(a, 4, &o)).is_some());
    }

    #[test]
    fn carried_edges_relax_with_larger_ii() {
        let mut b = Loop::builder("carried");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 2);
        let l = b.build().unwrap();
        let machine = presets::unified();
        let p = Problem::new(&l, &machine).unwrap();
        let o = opts();
        // At II=1 the carried edge still forces Y no earlier than cycle 0.
        let w = windows(&p, 1, |a| p.horizon(a, 1, &o)).unwrap();
        assert_eq!(w.earliest, vec![0, 0]);
        // At II=2 the edge weight is negative; both ops are unconstrained.
        let w = windows(&p, 2, |a| p.horizon(a, 2, &o)).unwrap();
        assert_eq!(w.earliest, vec![0, 0]);
    }
}
