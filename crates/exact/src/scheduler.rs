//! The outer II search and the [`ModuloScheduler`] front-end.
//!
//! [`solve`] probes candidate initiation intervals upwards from
//! `max(ResMII, RecMII)`. Each probe ends in one of three ways
//! ([`IiVerdict`]): *feasible* (a legal schedule is assembled and the search
//! stops), *infeasible* (the lower bound advances past this II — but only
//! while the chain of certificates from the minimum II is unbroken), or
//! *unknown* (the budget ran out; the search stops and reports the bound
//! certified so far). The result is either a provably optimal schedule, a
//! schedule plus a smaller certified lower bound, or a lower bound alone.
//!
//! # Backends
//!
//! The probe engine is pluggable ([`ExactBackend`]): the branch-and-bound
//! search of the `search` module, the CDCL SAT encoder of the `sat_backend`
//! module, or a **portfolio** that races both engines per probe on a
//! persistent [`Executor`]. In the portfolio the first certificate wins and
//! raises a shared poison flag the rival polls on every step; when both
//! engines decide the same probe, their verdicts are cross-checked — a
//! Feasible/Infeasible disagreement is a soundness bug in one of them and
//! panics rather than picking a side. All engines draw from one shared
//! budget pool measured in *search steps* (branch-and-bound nodes plus SAT
//! decisions/conflicts).

use crate::model::Problem;
use crate::options::ExactOptions;
use crate::outcome::{ExactOutcome, IiProbe, IiVerdict, SolverKind};
use crate::sat_backend::{SatProbeSession, SatProbeStats};
use crate::search::{solve_fixed_ii, FixedIiOutcome};
use mvp_core::error::ScheduleError;
use mvp_core::{lifetime, Communication, ModuloScheduler, Schedule, SchedulerOptions};
use mvp_exec::Executor;
use mvp_ir::{mii, Loop};
use mvp_machine::MachineConfig;
use mvp_sat::Lit;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The engine (or engine combination) driving the fixed-II probes.
#[derive(Clone, Default)]
pub enum ExactBackend {
    /// The branch-and-bound search (the default; every certificate is an
    /// exhausted search tree).
    #[default]
    BranchAndBound,
    /// The CDCL SAT encoder (every certificate is a CNF refutation; every
    /// schedule is decoded back through the constraint kernel and
    /// re-validated by the independent oracle).
    Sat,
    /// Both engines raced per probe on the given executor; the first
    /// certificate wins and cancels the rival via a shared poison flag.
    /// With a 1-thread executor the race degenerates to "SAT first, then
    /// branch-and-bound if still undecided" — fully deterministic.
    Portfolio(Arc<Executor>),
}

impl ExactBackend {
    /// A portfolio backend racing on the given executor.
    #[must_use]
    pub fn portfolio(executor: Arc<Executor>) -> Self {
        ExactBackend::Portfolio(executor)
    }

    /// The outcome-level tag for this backend.
    #[must_use]
    pub fn kind(&self) -> SolverKind {
        match self {
            ExactBackend::BranchAndBound => SolverKind::BranchAndBound,
            ExactBackend::Sat => SolverKind::Sat,
            ExactBackend::Portfolio(_) => SolverKind::Portfolio,
        }
    }

    /// The scheduler name stamped on emitted schedules.
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        match self {
            ExactBackend::BranchAndBound => "exact",
            ExactBackend::Sat => "exact-sat",
            ExactBackend::Portfolio(_) => "exact-portfolio",
        }
    }
}

impl fmt::Debug for ExactBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactBackend::BranchAndBound => f.write_str("BranchAndBound"),
            ExactBackend::Sat => f.write_str("Sat"),
            ExactBackend::Portfolio(e) => write!(f, "Portfolio({} threads)", e.threads()),
        }
    }
}

/// Runs the exact II search for `l` on `machine` with the default
/// branch-and-bound backend (see [`solve_with`]).
///
/// # Errors
///
/// Returns [`ScheduleError::Machine`] for an invalid machine and
/// [`ScheduleError::MissingResources`] when the loop uses a functional-unit
/// kind the machine lacks. An exhausted search range or budget is *not* an
/// error — the [`ExactOutcome`] reports it as a missing schedule with a
/// certified lower bound.
pub fn solve(
    l: &Loop,
    machine: &MachineConfig,
    options: &ExactOptions,
) -> Result<ExactOutcome, ScheduleError> {
    solve_with(l, machine, options, &ExactBackend::BranchAndBound)
}

/// Runs the exact II search with an explicit probe [`ExactBackend`].
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with(
    l: &Loop,
    machine: &MachineConfig,
    options: &ExactOptions,
    backend: &ExactBackend,
) -> Result<ExactOutcome, ScheduleError> {
    let p = Problem::new(l, machine)?;
    let min_ii = mii::minimum_ii(l, machine);
    if min_ii == u32::MAX {
        return Err(ScheduleError::MissingResources {
            reason: "the loop needs a functional-unit kind the machine does not provide".into(),
        });
    }
    let max_ii = min_ii.saturating_add(options.max_ii_slack);

    if let Some((executor, width)) = ladder_plan(options, backend) {
        return Ok(ladder_search(
            &p, min_ii, max_ii, options, backend, &executor, width,
        ));
    }

    // One SAT session spans the whole II search: in incremental mode (the
    // default) its solver carries clauses, learnt state and phases from
    // probe to probe. The mutex makes it reachable from the portfolio's
    // racing closure; with SAT first on the executor there is no contention.
    let sat_session = match backend {
        ExactBackend::Sat | ExactBackend::Portfolio(_) => Some(Mutex::new(SatProbeSession::new(
            &p,
            options.sat_incremental,
        ))),
        ExactBackend::BranchAndBound => None,
    };

    let mut nodes = 0u64;
    let mut conflicts = 0u64;
    let mut probes = Vec::new();
    let mut lower_bound = min_ii;
    let mut chain_unbroken = true;
    let mut schedule = None;

    for ii in min_ii..=max_ii {
        // The step budget is shared across probes (and, in the portfolio,
        // across both rival engines): each probe gets the remainder.
        let remaining = options.node_budget.saturating_sub(nodes + conflicts);
        if remaining == 0 {
            break;
        }
        let probe_options = options.with_node_budget(remaining);
        let before = (nodes, conflicts);
        let _probe = mvp_trace::span!("exact.probe", ii = ii);
        let (outcome, solver, sat_stats) = run_probe(
            &p,
            ii,
            &probe_options,
            backend,
            sat_session.as_ref(),
            &mut nodes,
            &mut conflicts,
        );
        let verdict = match outcome {
            FixedIiOutcome::Feasible { ops, comms } => {
                schedule = Some(assemble(&p, ii, ops, comms, backend.scheduler_name()));
                IiVerdict::Feasible
            }
            FixedIiOutcome::Infeasible => IiVerdict::Infeasible,
            FixedIiOutcome::Budget | FixedIiOutcome::Cancelled => IiVerdict::Unknown,
        };
        probes.push(IiProbe {
            ii,
            verdict,
            nodes: nodes - before.0,
            conflicts: conflicts - before.1,
            solver,
            reused_clauses: sat_stats.reused_clauses,
            kept_learned: sat_stats.kept_learned,
        });
        match verdict {
            IiVerdict::Feasible => break,
            IiVerdict::Infeasible => {
                if chain_unbroken {
                    lower_bound = ii + 1;
                }
            }
            IiVerdict::Unknown => {
                // Budget exhausted: stop probing — further probes would get
                // no budget either — and keep the bound certified so far.
                chain_unbroken = false;
                break;
            }
        }
    }

    let proved_optimal = schedule
        .as_ref()
        .is_some_and(|s: &Schedule| s.ii() == lower_bound && chain_unbroken);
    Ok(ExactOutcome {
        min_ii,
        schedule,
        lower_bound,
        proved_optimal,
        nodes,
        conflicts,
        backend: backend.kind(),
        probes,
    })
}

/// Longest learnt clause worth exporting from a retired ladder rung: short
/// clauses propagate the most per byte, and the global prefix filter makes
/// long ones mostly layer-local anyway.
const LADDER_EXPORT_MAX_LEN: usize = 4;
/// At most this many clauses travel out of one rung, keeping the shared
/// pool (and every later rung's import cost) bounded.
const LADDER_EXPORT_CAP: usize = 256;

/// Resolves the speculative-ladder plan for this search: `Some((executor,
/// width))` to run rounds of `width` concurrent fixed-II rungs, `None` for
/// the classic sequential loop. An explicit [`ExactOptions::ladder_width`]
/// (or the `MVP_EXACT_LADDER` environment default behind it) wins; *auto*
/// (`0`) enables the ladder only for the portfolio backend, sized by its
/// executor — the single-engine backends stay sequential unless asked,
/// because they are what the differential suites treat as the reference.
/// Explicitly widened single-engine searches round on the process-global
/// executor.
fn ladder_plan(options: &ExactOptions, backend: &ExactBackend) -> Option<(Arc<Executor>, u32)> {
    match (options.ladder_width, backend) {
        (0, ExactBackend::Portfolio(e)) => {
            let width = u32::try_from(e.threads()).unwrap_or(u32::MAX);
            (width > 1).then(|| (Arc::clone(e), width))
        }
        (0 | 1, _) => None,
        (w, ExactBackend::Portfolio(e)) => Some((Arc::clone(e), w)),
        (w, _) => Some((Executor::global(), w)),
    }
}

/// What one speculative rung brings back to the commit loop.
struct RungResult {
    outcome: FixedIiOutcome,
    solver: SolverKind,
    stats: SatProbeStats,
    /// Branch-and-bound steps this rung consumed.
    nodes: u64,
    /// SAT steps this rung consumed.
    conflicts: u64,
    /// Global-prefix learnt clauses exported for later rounds (only from a
    /// deciding SAT engine).
    exports: Vec<Vec<Lit>>,
    /// Clauses this rung imported from the shared pool.
    imported: u64,
}

impl RungResult {
    /// A rung that observed its cancellation flag before starting.
    fn skipped(backend: &ExactBackend) -> Self {
        Self {
            outcome: FixedIiOutcome::Cancelled,
            solver: backend.kind(),
            stats: SatProbeStats::default(),
            nodes: 0,
            conflicts: 0,
            exports: Vec::new(),
            imported: 0,
        }
    }
}

/// One SAT-engine rung: a private single-layer session seeded from the
/// shared pool, with exports harvested when the engine decides (an
/// undecided or cancelled run may hold clauses learnt from a search
/// prefix another thread aborted nondeterministically, so only decided —
/// and therefore deterministic — runs feed the pool).
fn sat_rung(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    pool: &[Vec<Lit>],
    cancel: &AtomicBool,
) -> RungResult {
    let mut session = SatProbeSession::new(p, options.sat_incremental);
    let mut steps = 0u64;
    let (outcome, stats, imported) =
        session.probe_seeded(ii, options, &mut steps, Some(cancel), pool);
    let exports = if decided(&outcome) {
        session.export_shared(LADDER_EXPORT_MAX_LEN, LADDER_EXPORT_CAP)
    } else {
        Vec::new()
    };
    RungResult {
        outcome,
        solver: SolverKind::Sat,
        stats,
        nodes: 0,
        conflicts: steps,
        exports,
        imported,
    }
}

/// First instalment of a dovetailed portfolio rung, in steps. Small
/// enough that easy rungs (the common case) decide in their first SAT
/// call exactly as a plain SAT rung would.
const DOVETAIL_QUANTUM: u64 = 1 << 12;

/// Quantum multiplier between dovetail cycles. Geometric escalation
/// bounds the stateless branch-and-bound restarts (and the losing
/// engine's spend) by a constant factor of the deciding attempt.
const DOVETAIL_ESCALATION: u64 = 4;

/// One portfolio rung, dovetailed: SAT and branch-and-bound alternate in
/// geometrically escalating step quanta until one of them decides. The
/// SAT session persists across instalments (its learnt clauses carry
/// over, so split budgets cost what one continuous solve would), while
/// the stateless branch-and-bound restarts from scratch each cycle. The
/// quantum schedule is fixed, so the rung's verdict *and* its step counts
/// are a pure function of the problem, the II and the budget — unlike the
/// racing portfolio — and the rung's total cost is bounded by a constant
/// factor of the *cheaper* engine's solo cost, so one engine's
/// pathological II (say, a refutation SAT grinds on but branch-and-bound
/// dispatches) cannot sink the round's wall-clock.
fn dovetail_rung(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    pool: &[Vec<Lit>],
    cancel: &AtomicBool,
) -> RungResult {
    let mut session = SatProbeSession::new(p, options.sat_incremental);
    let mut conflicts = 0u64;
    let mut nodes = 0u64;
    let mut stats = SatProbeStats::default();
    let mut imported = 0u64;
    let mut quantum = DOVETAIL_QUANTUM;
    let mut first = true;
    let (outcome, solver) = loop {
        let remaining = options.node_budget.saturating_sub(conflicts + nodes);
        if remaining == 0 {
            break (FixedIiOutcome::Budget, SolverKind::Portfolio);
        }
        let sat_options = options.with_node_budget(quantum.min(remaining));
        let outcome = if first {
            first = false;
            let (outcome, first_stats, first_imported) =
                session.probe_seeded(ii, &sat_options, &mut conflicts, Some(cancel), pool);
            stats = first_stats;
            imported = first_imported;
            outcome
        } else {
            session.resume(ii, &sat_options, &mut conflicts, Some(cancel))
        };
        if !matches!(outcome, FixedIiOutcome::Budget) {
            break (outcome, SolverKind::Sat);
        }
        let remaining = options.node_budget.saturating_sub(conflicts + nodes);
        if remaining == 0 {
            break (FixedIiOutcome::Budget, SolverKind::Portfolio);
        }
        let bnb_options = options.with_node_budget(quantum.min(remaining));
        let mut bnb_steps = 0u64;
        let outcome = solve_fixed_ii(p, ii, &bnb_options, &mut bnb_steps, Some(cancel));
        nodes += bnb_steps;
        if !matches!(outcome, FixedIiOutcome::Budget) {
            break (outcome, SolverKind::BranchAndBound);
        }
        quantum = quantum.saturating_mul(DOVETAIL_ESCALATION);
    };
    // A decided dovetail cut the SAT engine at deterministic quantum
    // boundaries, so the session's learnt set is deterministic and safe to
    // share even when branch-and-bound was the engine that decided; a
    // cancelled rung aborted wherever the flag caught it and exports
    // nothing.
    let exports = if decided(&outcome) {
        session.export_shared(LADDER_EXPORT_MAX_LEN, LADDER_EXPORT_CAP)
    } else {
        Vec::new()
    };
    RungResult {
        outcome,
        solver,
        stats,
        nodes,
        conflicts,
        exports,
        imported,
    }
}

/// Runs one speculative rung of the ladder on `backend`. The portfolio
/// dovetails its two engines (see [`dovetail_rung`]) rather than racing
/// them: the ladder's parallelism is across rungs, and a dovetailed
/// rung's committed step counts are deterministic.
fn run_rung(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    backend: &ExactBackend,
    pool: &[Vec<Lit>],
    cancel: &AtomicBool,
) -> RungResult {
    let _span = mvp_trace::span!("exact.ladder.rung", ii = ii);
    match backend {
        ExactBackend::BranchAndBound => {
            let mut nodes = 0u64;
            let outcome = solve_fixed_ii(p, ii, options, &mut nodes, Some(cancel));
            RungResult {
                outcome,
                solver: SolverKind::BranchAndBound,
                stats: SatProbeStats::default(),
                nodes,
                conflicts: 0,
                exports: Vec::new(),
                imported: 0,
            }
        }
        ExactBackend::Sat => sat_rung(p, ii, options, pool, cancel),
        ExactBackend::Portfolio(_) => dovetail_rung(p, ii, options, pool, cancel),
    }
}

/// The speculative parallel II ladder: rounds of `width` consecutive
/// candidate IIs probed concurrently on `executor`, committed strictly in
/// II order so the classic invariant — a contiguous certified-infeasible
/// prefix, then the first feasible II — terminates the search exactly as
/// the sequential loop would.
///
/// Determinism: the committed outcome is a pure function of the problem,
/// the options and the ladder width. Rungs are cancelled *logically* (a
/// terminal verdict at one rung flags every higher rung of its round), but
/// a committed rung is never one of the flagged ones — every rung below
/// the round's first terminal verdict ran to its own verdict with a
/// deterministic budget — so thread count and scheduling only affect how
/// much speculative work was wasted, never what is committed.
///
/// Budget semantics: every rung of a round gets the round-start remainder
/// of the shared step budget. A *decided* rung always commits its verdict
/// — a certificate is sound regardless of what it cost, so speculation
/// never loses an answer (under a binding budget it may even decide an II
/// the sequential search had to give up on, since per-rung sessions pay
/// fresh-encoding costs the sequential search's retained clauses avoid,
/// and vice versa; that is the one place ladder widths may differ, and the
/// verdict contract is scoped to non-binding budgets accordingly). An
/// exhausted rung commits [`IiVerdict::Unknown`] and ends the search, and
/// a rung the budget ran dry before is not logged at all — both exactly as
/// the sequential loop. Charged steps are clamped so `nodes + conflicts`
/// never exceeds the budget; the speculative excess is reported through
/// the `exact.ladder.wasted_steps` counter instead of silently vanishing.
#[allow(clippy::too_many_lines)]
fn ladder_search(
    p: &Problem<'_, '_>,
    min_ii: u32,
    max_ii: u32,
    options: &ExactOptions,
    backend: &ExactBackend,
    executor: &Executor,
    width: u32,
) -> ExactOutcome {
    let _span = mvp_trace::span!("exact.ladder.search", min_ii = min_ii, width = width);
    let mut nodes = 0u64;
    let mut conflicts = 0u64;
    let mut probes: Vec<IiProbe> = Vec::new();
    let mut lower_bound = min_ii;
    let mut chain_unbroken = true;
    let mut schedule = None;
    // Global-prefix learnt clauses exported by committed rungs, seeding
    // every rung of the following rounds.
    let mut pool: Vec<Vec<Lit>> = Vec::new();
    let mut launched = 0u64;
    let mut wasted = 0u64;
    let mut next_ii = min_ii;
    let mut ended = false;

    while !ended && next_ii <= max_ii {
        let round_budget = options.node_budget.saturating_sub(nodes + conflicts);
        if round_budget == 0 {
            break;
        }
        let round_hi = next_ii.saturating_add(width - 1).min(max_ii);
        let iis: Vec<u32> = (next_ii..=round_hi).collect();
        launched += iis.len() as u64;
        mvp_trace::counter_handle!("exact.ladder.speculative_probes", Stable)
            .add(iis.len() as u64 - 1);
        // Every rung gets the round-start remainder (not its own
        // sequential remainder, which depends on the still-unknown lower
        // rungs): deterministic, and reconciled at commit time below.
        let probe_options = options.with_node_budget(round_budget);
        let cancels: Vec<AtomicBool> = iis.iter().map(|_| AtomicBool::new(false)).collect();
        let _round = mvp_trace::span!("exact.ladder.round", ii = next_ii, rungs = iis.len());
        let results = executor.map_indexed(&iis, |idx, &ii| {
            if cancels[idx].load(Ordering::Relaxed) {
                return RungResult::skipped(backend);
            }
            let result = run_rung(p, ii, &probe_options, backend, &pool, &cancels[idx]);
            // A terminal verdict here means no higher rung of the round
            // can commit (the commit loop stops at this II): fold the
            // speculation above it.
            if matches!(
                result.outcome,
                FixedIiOutcome::Feasible { .. } | FixedIiOutcome::Budget
            ) {
                for flag in &cancels[idx + 1..] {
                    flag.store(true, Ordering::Relaxed);
                }
            }
            result
        });

        for (idx, r) in results.into_iter().enumerate() {
            if ended {
                wasted += r.nodes + r.conflicts;
                continue;
            }
            let ii = iis[idx];
            let remaining = options.node_budget.saturating_sub(nodes + conflicts);
            if remaining == 0 {
                // Sequential mirror: the budget ran dry before this II was
                // probed, so the search breaks without logging it.
                ended = true;
                wasted += r.nodes + r.conflicts;
                continue;
            }
            debug_assert!(
                !matches!(r.outcome, FixedIiOutcome::Cancelled),
                "a committed rung is below every cancellation source"
            );
            let spent = r.nodes + r.conflicts;
            // Charge at most the budget remainder; the excess is
            // speculative waste, reported but never silently dropped.
            let conflicts_charged = r.conflicts.min(remaining);
            let nodes_charged = r.nodes.min(remaining - conflicts_charged);
            wasted += spent - conflicts_charged - nodes_charged;
            nodes += nodes_charged;
            conflicts += conflicts_charged;
            mvp_trace::counter_handle!("exact.ladder.imported_clauses", Stable).add(r.imported);
            let verdict = match r.outcome {
                FixedIiOutcome::Feasible { ops, comms } => {
                    schedule = Some(assemble(p, ii, ops, comms, backend.scheduler_name()));
                    IiVerdict::Feasible
                }
                FixedIiOutcome::Infeasible => IiVerdict::Infeasible,
                FixedIiOutcome::Budget | FixedIiOutcome::Cancelled => IiVerdict::Unknown,
            };
            probes.push(IiProbe {
                ii,
                verdict,
                nodes: nodes_charged,
                conflicts: conflicts_charged,
                solver: r.solver,
                reused_clauses: r.stats.reused_clauses,
                kept_learned: r.stats.kept_learned,
            });
            match verdict {
                IiVerdict::Feasible => ended = true,
                IiVerdict::Infeasible => {
                    if chain_unbroken {
                        lower_bound = ii + 1;
                    }
                    pool.extend(r.exports);
                }
                IiVerdict::Unknown => {
                    chain_unbroken = false;
                    ended = true;
                }
            }
        }
        next_ii = round_hi + 1;
    }

    mvp_trace::counter_handle!("exact.ladder.cancelled_probes", Stable)
        .add(launched - probes.len() as u64);
    mvp_trace::counter_handle!("exact.ladder.wasted_steps", Runtime).add(wasted);
    mvp_trace::instant!("exact.ladder.done", ii = next_ii, width = width);

    let proved_optimal = schedule
        .as_ref()
        .is_some_and(|s: &Schedule| s.ii() == lower_bound && chain_unbroken);
    ExactOutcome {
        min_ii,
        schedule,
        lower_bound,
        proved_optimal,
        nodes,
        conflicts,
        backend: backend.kind(),
        probes,
    }
}

/// Runs one probe on the chosen backend, charging branch-and-bound nodes to
/// `nodes` and SAT steps to `conflicts`. SAT-capable backends probe through
/// the search-wide `sat` session (clause retention across IIs).
fn run_probe(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    backend: &ExactBackend,
    sat: Option<&Mutex<SatProbeSession<'_, '_, '_>>>,
    nodes: &mut u64,
    conflicts: &mut u64,
) -> (FixedIiOutcome, SolverKind, SatProbeStats) {
    match backend {
        ExactBackend::BranchAndBound => (
            solve_fixed_ii(p, ii, options, nodes, None),
            SolverKind::BranchAndBound,
            SatProbeStats::default(),
        ),
        ExactBackend::Sat => {
            let session = sat.expect("the Sat backend carries a session");
            let (outcome, stats) = session
                .lock()
                .expect("no SAT rival panicked")
                .probe(ii, options, conflicts, None);
            (outcome, SolverKind::Sat, stats)
        }
        ExactBackend::Portfolio(executor) => {
            let session = sat.expect("the portfolio carries a SAT session");
            race_probe(p, ii, options, executor, session, nodes, conflicts)
        }
    }
}

/// Whether a probe outcome is a certificate (rather than an exhausted budget
/// or a cancellation).
fn decided(outcome: &FixedIiOutcome) -> bool {
    matches!(
        outcome,
        FixedIiOutcome::Feasible { .. } | FixedIiOutcome::Infeasible
    )
}

/// Races the SAT and branch-and-bound engines on one probe via
/// [`Executor::race`]. The first engine to reach a certificate poisons the
/// rival, which aborts at its next step and charges only the steps it
/// actually took. Both engines' steps count against the shared pool — the
/// portfolio pays for its parallelism in steps, and its headline claim
/// (fewer *total* steps than branch-and-bound alone) is measured on that
/// inclusive sum. SAT sits at index 0, so the race's lowest-index tie-break
/// keeps the historical "SAT wins a double decide" rule.
fn race_probe(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    executor: &Executor,
    session: &Mutex<SatProbeSession<'_, '_, '_>>,
    nodes: &mut u64,
    conflicts: &mut u64,
) -> (FixedIiOutcome, SolverKind, SatProbeStats) {
    let rivals = [SolverKind::Sat, SolverKind::BranchAndBound];
    let (_winner_idx, mut results) = executor.race(
        &rivals,
        |&kind, poison| {
            let mut steps = 0u64;
            let (outcome, stats) = match kind {
                SolverKind::Sat => session.lock().expect("no SAT rival panicked").probe(
                    ii,
                    options,
                    &mut steps,
                    Some(poison),
                ),
                _ => (
                    solve_fixed_ii(p, ii, options, &mut steps, Some(poison)),
                    SatProbeStats::default(),
                ),
            };
            let done_ns = if mvp_trace::timing_enabled() {
                mvp_trace::now_ns()
            } else {
                0
            };
            (outcome, steps, done_ns, stats)
        },
        |(outcome, ..)| decided(outcome),
    );
    let (bnb_outcome, bnb_steps, bnb_done_ns, _) = results.pop().expect("two rivals ran");
    let (sat_outcome, sat_steps, sat_done_ns, sat_stats) = results.pop().expect("two rivals ran");
    *conflicts += sat_steps;
    *nodes += bnb_steps;

    if decided(&sat_outcome) && decided(&bnb_outcome) {
        // Differential cross-check: two independent engines must agree on
        // every certificate. A mismatch is a soundness bug, not a tie to
        // break.
        let sat_feasible = matches!(sat_outcome, FixedIiOutcome::Feasible { .. });
        let bnb_feasible = matches!(bnb_outcome, FixedIiOutcome::Feasible { .. });
        assert_eq!(
            sat_feasible,
            bnb_feasible,
            "portfolio rivals disagree at II={ii} for {}: SAT says {}, B&B says {}",
            p.l.name(),
            if sat_feasible {
                "feasible"
            } else {
                "infeasible"
            },
            if bnb_feasible {
                "feasible"
            } else {
                "infeasible"
            },
        );
    }

    let (sat_decided, bnb_decided) = (decided(&sat_outcome), decided(&bnb_outcome));
    let (outcome, winner) = if sat_decided {
        (sat_outcome, SolverKind::Sat)
    } else if bnb_decided {
        (bnb_outcome, SolverKind::BranchAndBound)
    } else {
        // Neither decided: the poison flag was never raised, so both ran
        // out of budget.
        (FixedIiOutcome::Budget, SolverKind::Portfolio)
    };
    match winner {
        SolverKind::Sat => mvp_trace::counter_handle!("portfolio.sat_wins", Runtime).incr(),
        SolverKind::BranchAndBound => {
            mvp_trace::counter_handle!("portfolio.bnb_wins", Runtime).incr();
        }
        SolverKind::Portfolio => {}
    }
    // Poison latency: how long the loser kept running after the winner's
    // certificate. Only measurable when timing is on (done_ns is 0 otherwise)
    // and only meaningful when exactly one rival decided — a double decide is
    // the cross-checked case, not a cancellation.
    if bnb_done_ns != 0 && sat_done_ns != 0 && sat_decided != bnb_decided {
        mvp_trace::counter_handle!("portfolio.poison.latency_ns", Runtime)
            .add(bnb_done_ns.abs_diff(sat_done_ns));
    }
    mvp_trace::instant!("portfolio.winner", ii = ii, solver = winner);
    (outcome, winner, sat_stats)
}

/// Assembles the search solution into a public [`Schedule`], computing the
/// same MaxLive register pressure the validator recomputes.
fn assemble(
    p: &Problem<'_, '_>,
    ii: u32,
    ops: Vec<mvp_core::PlacedOp>,
    comms: Vec<Communication>,
    scheduler_name: &str,
) -> Schedule {
    let pressure = lifetime::register_pressure(p.l, &ops, ii, p.machine.num_clusters());
    let schedule = Schedule::new(
        p.machine.name.clone(),
        scheduler_name,
        ii,
        ops,
        comms,
        pressure,
    );
    debug_assert!(
        mvp_core::validate_schedule(p.l, p.machine, &schedule).is_empty(),
        "the exact scheduler produced an illegal schedule for {}: {:?}",
        p.l.name(),
        mvp_core::validate_schedule(p.l, p.machine, &schedule)
    );
    schedule
}

/// The exact scheduler as a drop-in [`ModuloScheduler`]: schedules with the
/// smallest II its backend can find and certify.
///
/// Unlike [`solve_with`] — which exposes bounds and probe logs — this
/// front-end fits the common pipeline interface: a loop either gets a legal
/// schedule or a [`ScheduleError::NoFeasibleIi`] when the search range or
/// budget is exhausted without finding one.
///
/// # Example
///
/// ```
/// use mvp_exact::ExactScheduler;
/// use mvp_core::ModuloScheduler;
/// use mvp_ir::Loop;
/// use mvp_machine::presets;
///
/// # fn main() -> Result<(), mvp_core::ScheduleError> {
/// let mut b = Loop::builder("demo");
/// let x = b.fp_op("X");
/// let y = b.fp_op("Y");
/// b.data_edge(x, y, 0);
/// let l = b.build().expect("valid loop");
/// let s = ExactScheduler::new().schedule(&l, &presets::two_cluster())?;
/// assert_eq!(s.scheduler_name, "exact");
/// assert_eq!(s.ii(), 1); // one fp op per cluster per cycle: optimal II = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactScheduler {
    options: ExactOptions,
    backend: ExactBackend,
}

impl ExactScheduler {
    /// Creates an exact scheduler with default options and the
    /// branch-and-bound backend.
    #[must_use]
    pub fn new() -> Self {
        Self {
            options: ExactOptions::new(),
            backend: ExactBackend::BranchAndBound,
        }
    }

    /// Creates an exact scheduler with the given options.
    #[must_use]
    pub fn with_options(options: ExactOptions) -> Self {
        Self {
            options,
            backend: ExactBackend::BranchAndBound,
        }
    }

    /// Returns a copy using the given probe backend.
    #[must_use]
    pub fn with_backend(mut self, backend: ExactBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Creates an exact scheduler configured from the shared
    /// [`SchedulerOptions`] (see [`ExactOptions::from_scheduler_options`]).
    #[must_use]
    pub fn from_scheduler_options(options: &SchedulerOptions) -> Self {
        Self {
            options: ExactOptions::from_scheduler_options(options),
            backend: ExactBackend::BranchAndBound,
        }
    }

    /// The search options in use.
    #[must_use]
    pub fn options(&self) -> &ExactOptions {
        &self.options
    }

    /// The probe backend in use.
    #[must_use]
    pub fn backend(&self) -> &ExactBackend {
        &self.backend
    }

    /// Full search outcome (schedule, certified lower bound, probe log).
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`].
    pub fn solve(&self, l: &Loop, machine: &MachineConfig) -> Result<ExactOutcome, ScheduleError> {
        solve_with(l, machine, &self.options, &self.backend)
    }
}

impl ModuloScheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        self.backend.scheduler_name()
    }

    fn schedule(&self, l: &Loop, machine: &MachineConfig) -> Result<Schedule, ScheduleError> {
        let outcome = self.solve(l, machine)?;
        let max_ii = outcome.min_ii.saturating_add(self.options.max_ii_slack);
        outcome.schedule.ok_or(ScheduleError::NoFeasibleIi {
            min_ii: outcome.min_ii,
            max_ii,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::validate_schedule;
    use mvp_machine::presets;

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    /// fp X → Y (distance 0), Y → X (distance 2): `min_ii = RecMII = 2`,
    /// but II=2 is only refutable by *search* (window propagation and
    /// resource counts both pass), making it the canonical
    /// budget-exhausts-at-an-intermediate-II fixture. II=3 is feasible.
    fn search_refuted_recurrence() -> Loop {
        let mut b = Loop::builder("slack-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 2);
        b.build().unwrap()
    }

    #[test]
    fn chains_are_proved_optimal_at_the_minimum_ii() {
        let l = chain();
        for machine in [
            presets::unified(),
            presets::two_cluster(),
            presets::four_cluster(),
        ] {
            let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
            let s = outcome.schedule.as_ref().expect("feasible");
            assert!(outcome.proved_optimal, "{}", machine.name);
            assert_eq!(s.ii(), mii::minimum_ii(&l, &machine), "{}", machine.name);
            assert_eq!(outcome.lower_bound, s.ii());
            assert_eq!(outcome.exact_ii(), Some(s.ii()));
            assert!(validate_schedule(&l, &machine, s).is_empty());
            assert_eq!(outcome.probes.len(), 1);
            assert_eq!(outcome.backend, SolverKind::BranchAndBound);
            assert_eq!(outcome.conflicts, 0);
        }
    }

    #[test]
    fn budget_exhaustion_returns_a_lower_bound_not_a_panic() {
        let l = chain();
        let machine = presets::two_cluster();
        let outcome = solve(&l, &machine, &ExactOptions::new().with_node_budget(1)).unwrap();
        assert!(outcome.schedule.is_none());
        assert!(!outcome.proved_optimal);
        assert_eq!(outcome.lower_bound, mii::minimum_ii(&l, &machine));
        assert_eq!(outcome.probes.last().unwrap().verdict, IiVerdict::Unknown);
        // ...and the ModuloScheduler front-end turns it into NoFeasibleIi.
        let err = ExactScheduler::with_options(ExactOptions::new().with_node_budget(1))
            .schedule(&l, &machine)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoFeasibleIi { .. }));
    }

    #[test]
    fn recurrences_raise_the_certified_bound() {
        // fp X -> Y -> X (distance 1): RecMII = 4; the probes at II 1..3 are
        // skipped entirely because minimum_ii already starts at 4.
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
        assert_eq!(outcome.min_ii, 4);
        assert!(outcome.proved_optimal);
        assert_eq!(outcome.schedule_ii(), Some(4));
    }

    #[test]
    fn scheduler_front_end_matches_solve() {
        let l = chain();
        let machine = presets::two_cluster();
        let scheduler = ExactScheduler::new();
        assert_eq!(scheduler.name(), "exact");
        assert_eq!(scheduler.options(), &ExactOptions::new());
        assert!(matches!(scheduler.backend(), ExactBackend::BranchAndBound));
        let s = scheduler.schedule(&l, &machine).unwrap();
        let outcome = scheduler.solve(&l, &machine).unwrap();
        assert_eq!(Some(s.ii()), outcome.schedule_ii());
        assert_eq!(s.scheduler_name, "exact");
        assert_eq!(s.machine_name, machine.name);
    }

    #[test]
    fn the_sat_backend_agrees_with_branch_and_bound() {
        let loops = [chain(), search_refuted_recurrence()];
        for l in &loops {
            for machine in [
                presets::unified(),
                presets::two_cluster(),
                presets::motivating_example_machine(),
            ] {
                let bnb = solve(l, &machine, &ExactOptions::new()).unwrap();
                let sat =
                    solve_with(l, &machine, &ExactOptions::new(), &ExactBackend::Sat).unwrap();
                assert_eq!(
                    sat.lower_bound,
                    bnb.lower_bound,
                    "{} on {}",
                    l.name(),
                    machine.name
                );
                assert_eq!(
                    sat.proved_optimal,
                    bnb.proved_optimal,
                    "{} on {}",
                    l.name(),
                    machine.name
                );
                assert_eq!(sat.schedule_ii(), bnb.schedule_ii());
                assert_eq!(sat.backend, SolverKind::Sat);
                assert_eq!(sat.nodes, 0, "the SAT backend charges steps, not nodes");
                let s = sat.schedule.as_ref().expect("feasible");
                assert_eq!(s.scheduler_name, "exact-sat");
                assert!(validate_schedule(l, &machine, s).is_empty());
            }
        }
    }

    #[test]
    fn the_portfolio_matches_both_engines_and_records_the_winner() {
        let l = search_refuted_recurrence();
        let machine = presets::motivating_example_machine();
        let backend = ExactBackend::portfolio(Arc::new(Executor::new(2)));
        let outcome = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
        assert_eq!(outcome.min_ii, 2);
        assert_eq!(outcome.schedule_ii(), Some(3));
        assert!(outcome.proved_optimal);
        assert_eq!(outcome.backend, SolverKind::Portfolio);
        for probe in &outcome.probes {
            assert_ne!(
                probe.solver,
                SolverKind::Portfolio,
                "decided probes name the winning engine"
            );
        }
        let s = outcome.schedule.as_ref().unwrap();
        assert_eq!(s.scheduler_name, "exact-portfolio");
        assert!(validate_schedule(&l, &machine, s).is_empty());
    }

    #[test]
    fn a_single_threaded_portfolio_is_deterministic_and_sat_wins() {
        let l = chain();
        let machine = presets::two_cluster();
        let backend = ExactBackend::portfolio(Arc::new(Executor::new(1)));
        let a = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
        let b = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.conflicts, b.conflicts);
        assert_eq!(a.schedule, b.schedule);
        // SAT runs first on a 1-thread executor and decides the probe; the
        // branch-and-bound rival is poisoned before charging a node.
        assert_eq!(a.probes.last().unwrap().solver, SolverKind::Sat);
        assert_eq!(a.nodes, 0);
        let scheduler = ExactScheduler::new().with_backend(backend);
        assert_eq!(scheduler.name(), "exact-portfolio");
        assert_eq!(
            scheduler.schedule(&l, &machine).unwrap().scheduler_name,
            "exact-portfolio"
        );
    }

    #[test]
    fn intermediate_ii_budget_exhaustion_keeps_the_bound_on_every_backend() {
        // The II=2 probe is refuted by search alone; give each backend just
        // enough budget to certify it but not to finish II=3. The outcome
        // must report lower_bound = 3 with no optimum claim, and the gap
        // helper must price a heuristic II=3 schedule at gap 0.
        let l = search_refuted_recurrence();
        let machine = presets::motivating_example_machine();
        for backend in [ExactBackend::BranchAndBound, ExactBackend::Sat] {
            let full = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
            assert_eq!(full.schedule_ii(), Some(3), "{backend:?}");
            assert!(full.proved_optimal);
            assert_eq!(full.probes[0].verdict, IiVerdict::Infeasible);
            let refute_cost = full.probes[0].nodes + full.probes[0].conflicts;
            assert!(refute_cost > 0, "{backend:?} refuted II=2 by search");

            let starved = solve_with(
                &l,
                &machine,
                &ExactOptions::new().with_node_budget(refute_cost + 1),
                &backend,
            )
            .unwrap();
            assert_eq!(starved.lower_bound, 3, "{backend:?}");
            assert!(starved.schedule.is_none(), "{backend:?}");
            assert!(!starved.proved_optimal, "{backend:?}");
            assert_eq!(starved.probes.last().unwrap().verdict, IiVerdict::Unknown);
            assert_eq!(starved.probes.last().unwrap().ii, 3);
            // The certified bound prices heuristics even without an optimum.
            assert!((starved.optimality_gap_of(3)).abs() < 1e-12);
            assert!((starved.optimality_gap_of(6) - 1.0).abs() < 1e-12);
        }
    }

    /// The committed outcome fields the ladder's verdict contract pins:
    /// everything except step/wallclock provenance.
    fn fingerprint(o: &ExactOutcome) -> (u32, u32, Option<u32>, bool, Vec<(u32, IiVerdict)>) {
        (
            o.min_ii,
            o.lower_bound,
            o.schedule_ii(),
            o.proved_optimal,
            o.probes.iter().map(|p| (p.ii, p.verdict)).collect(),
        )
    }

    #[test]
    fn ladder_plans_follow_the_width_and_backend_rules() {
        let opts = |w| ExactOptions::new().with_ladder_width(w);
        let pool = Arc::new(Executor::new(4));
        let portfolio = ExactBackend::portfolio(Arc::clone(&pool));
        // Auto engages only on a multi-thread portfolio, sized by its pool.
        assert!(ladder_plan(&opts(0), &ExactBackend::BranchAndBound).is_none());
        assert!(ladder_plan(&opts(0), &ExactBackend::Sat).is_none());
        let (e, w) = ladder_plan(&opts(0), &portfolio).expect("auto ladder");
        assert!(Arc::ptr_eq(&e, &pool));
        assert_eq!(w, 4);
        let solo = ExactBackend::portfolio(Arc::new(Executor::new(1)));
        assert!(ladder_plan(&opts(0), &solo).is_none());
        // Width 1 is the sequential escape hatch on every backend.
        assert!(ladder_plan(&opts(1), &portfolio).is_none());
        assert!(ladder_plan(&opts(1), &ExactBackend::Sat).is_none());
        // An explicit width wins: the portfolio rounds on its own pool, the
        // single-engine backends on the process-global executor.
        let (e, w) = ladder_plan(&opts(3), &portfolio).expect("explicit ladder");
        assert!(Arc::ptr_eq(&e, &pool));
        assert_eq!(w, 3);
        let (_, w) = ladder_plan(&opts(3), &ExactBackend::Sat).expect("explicit ladder");
        assert_eq!(w, 3);
    }

    #[test]
    fn the_ladder_commits_the_sequential_outcome_on_every_backend() {
        let loops = [chain(), search_refuted_recurrence()];
        let machine = presets::motivating_example_machine();
        for l in &loops {
            for backend in [
                ExactBackend::BranchAndBound,
                ExactBackend::Sat,
                ExactBackend::portfolio(Arc::new(Executor::new(2))),
            ] {
                let sequential = solve_with(
                    l,
                    &machine,
                    &ExactOptions::new().with_ladder_width(1),
                    &backend,
                )
                .unwrap();
                for width in [2, 4] {
                    let ladder = solve_with(
                        l,
                        &machine,
                        &ExactOptions::new().with_ladder_width(width),
                        &backend,
                    )
                    .unwrap();
                    assert_eq!(
                        fingerprint(&ladder),
                        fingerprint(&sequential),
                        "{} width {width} on {backend:?}",
                        l.name()
                    );
                    let s = ladder.schedule.as_ref().expect("both fixtures schedule");
                    assert!(validate_schedule(l, &machine, s).is_empty());
                    assert_eq!(s.scheduler_name, backend.scheduler_name());
                }
            }
        }
    }

    #[test]
    fn the_ladder_is_deterministic_across_thread_counts_at_a_fixed_width() {
        let l = search_refuted_recurrence();
        let machine = presets::motivating_example_machine();
        let narrow = ExactBackend::portfolio(Arc::new(Executor::new(1)));
        let wide = ExactBackend::portfolio(Arc::new(Executor::new(4)));
        for width in [2, 4] {
            let options = ExactOptions::new().with_ladder_width(width);
            let a = solve_with(&l, &machine, &options, &narrow).unwrap();
            let b = solve_with(&l, &machine, &options, &wide).unwrap();
            assert_eq!(fingerprint(&a), fingerprint(&b), "width {width}");
            // Inline rungs charge deterministic step counts, so even the
            // provenance matches across thread counts at a fixed width.
            assert_eq!(a.nodes, b.nodes, "width {width}");
            assert_eq!(a.conflicts, b.conflicts, "width {width}");
        }
    }

    #[test]
    fn ladder_budget_exhaustion_stays_sound_and_within_the_budget() {
        let l = search_refuted_recurrence();
        let machine = presets::motivating_example_machine();
        for backend in [ExactBackend::BranchAndBound, ExactBackend::Sat] {
            // A one-step budget exhausts the first rung: the ladder ends at
            // II=2 with an Unknown, exactly like the sequential search.
            let starved_options = ExactOptions::new().with_node_budget(1).with_ladder_width(4);
            let starved = solve_with(&l, &machine, &starved_options, &backend).unwrap();
            assert_eq!(starved.lower_bound, 2, "{backend:?}");
            assert!(starved.schedule.is_none(), "{backend:?}");
            let last = starved.probes.last().unwrap();
            assert_eq!(last.verdict, IiVerdict::Unknown, "{backend:?}");
            assert_eq!(last.ii, 2, "{backend:?}");

            // Enough budget to refute II=2 but (sequentially) not to finish
            // II=3: the speculative II=3 rung ran with the round budget and
            // may commit a *real* certificate the sequential search had to
            // give up on — never an unsound one — while the charged steps
            // stay clamped to the shared budget either way.
            let full = solve_with(
                &l,
                &machine,
                &ExactOptions::new().with_ladder_width(1),
                &backend,
            )
            .unwrap();
            let refute_cost = full.probes[0].nodes + full.probes[0].conflicts;
            let tight_options = ExactOptions::new()
                .with_node_budget(refute_cost + 1)
                .with_ladder_width(4);
            let tight = solve_with(&l, &machine, &tight_options, &backend).unwrap();
            assert_eq!(tight.lower_bound, 3, "{backend:?}");
            assert_eq!(tight.probes[0].verdict, IiVerdict::Infeasible);
            let last = tight.probes.last().unwrap();
            assert_eq!(last.ii, 3, "{backend:?}");
            match last.verdict {
                IiVerdict::Feasible => {
                    let s = tight.schedule.as_ref().expect("feasible probes schedule");
                    assert_eq!(s.ii(), 3);
                    assert!(validate_schedule(&l, &machine, s).is_empty());
                    assert!(tight.proved_optimal, "{backend:?}");
                }
                IiVerdict::Unknown => {
                    assert!(tight.schedule.is_none(), "{backend:?}");
                    assert!(!tight.proved_optimal, "{backend:?}");
                }
                IiVerdict::Infeasible => panic!("II=3 is feasible on {backend:?}"),
            }
            assert!(
                tight.nodes + tight.conflicts <= refute_cost + 1,
                "{backend:?} charged past the shared budget"
            );
        }
    }
}
