//! The outer II search and the [`ModuloScheduler`] front-end.
//!
//! [`solve`] probes candidate initiation intervals upwards from
//! `max(ResMII, RecMII)`. Each probe ends in one of three ways
//! ([`IiVerdict`]): *feasible* (a legal schedule is assembled and the search
//! stops), *infeasible* (the lower bound advances past this II — but only
//! while the chain of certificates from the minimum II is unbroken), or
//! *unknown* (the budget ran out; the search stops and reports the bound
//! certified so far). The result is either a provably optimal schedule, a
//! schedule plus a smaller certified lower bound, or a lower bound alone.
//!
//! # Backends
//!
//! The probe engine is pluggable ([`ExactBackend`]): the branch-and-bound
//! search of the `search` module, the CDCL SAT encoder of the `sat_backend`
//! module, or a **portfolio** that races both engines per probe on a
//! persistent [`Executor`]. In the portfolio the first certificate wins and
//! raises a shared poison flag the rival polls on every step; when both
//! engines decide the same probe, their verdicts are cross-checked — a
//! Feasible/Infeasible disagreement is a soundness bug in one of them and
//! panics rather than picking a side. All engines draw from one shared
//! budget pool measured in *search steps* (branch-and-bound nodes plus SAT
//! decisions/conflicts).

use crate::model::Problem;
use crate::options::ExactOptions;
use crate::outcome::{ExactOutcome, IiProbe, IiVerdict, SolverKind};
use crate::sat_backend::{SatProbeSession, SatProbeStats};
use crate::search::{solve_fixed_ii, FixedIiOutcome};
use mvp_core::error::ScheduleError;
use mvp_core::{lifetime, Communication, ModuloScheduler, Schedule, SchedulerOptions};
use mvp_exec::Executor;
use mvp_ir::{mii, Loop};
use mvp_machine::MachineConfig;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The engine (or engine combination) driving the fixed-II probes.
#[derive(Clone, Default)]
pub enum ExactBackend {
    /// The branch-and-bound search (the default; every certificate is an
    /// exhausted search tree).
    #[default]
    BranchAndBound,
    /// The CDCL SAT encoder (every certificate is a CNF refutation; every
    /// schedule is decoded back through the constraint kernel and
    /// re-validated by the independent oracle).
    Sat,
    /// Both engines raced per probe on the given executor; the first
    /// certificate wins and cancels the rival via a shared poison flag.
    /// With a 1-thread executor the race degenerates to "SAT first, then
    /// branch-and-bound if still undecided" — fully deterministic.
    Portfolio(Arc<Executor>),
}

impl ExactBackend {
    /// A portfolio backend racing on the given executor.
    #[must_use]
    pub fn portfolio(executor: Arc<Executor>) -> Self {
        ExactBackend::Portfolio(executor)
    }

    /// The outcome-level tag for this backend.
    #[must_use]
    pub fn kind(&self) -> SolverKind {
        match self {
            ExactBackend::BranchAndBound => SolverKind::BranchAndBound,
            ExactBackend::Sat => SolverKind::Sat,
            ExactBackend::Portfolio(_) => SolverKind::Portfolio,
        }
    }

    /// The scheduler name stamped on emitted schedules.
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        match self {
            ExactBackend::BranchAndBound => "exact",
            ExactBackend::Sat => "exact-sat",
            ExactBackend::Portfolio(_) => "exact-portfolio",
        }
    }
}

impl fmt::Debug for ExactBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactBackend::BranchAndBound => f.write_str("BranchAndBound"),
            ExactBackend::Sat => f.write_str("Sat"),
            ExactBackend::Portfolio(e) => write!(f, "Portfolio({} threads)", e.threads()),
        }
    }
}

/// Runs the exact II search for `l` on `machine` with the default
/// branch-and-bound backend (see [`solve_with`]).
///
/// # Errors
///
/// Returns [`ScheduleError::Machine`] for an invalid machine and
/// [`ScheduleError::MissingResources`] when the loop uses a functional-unit
/// kind the machine lacks. An exhausted search range or budget is *not* an
/// error — the [`ExactOutcome`] reports it as a missing schedule with a
/// certified lower bound.
pub fn solve(
    l: &Loop,
    machine: &MachineConfig,
    options: &ExactOptions,
) -> Result<ExactOutcome, ScheduleError> {
    solve_with(l, machine, options, &ExactBackend::BranchAndBound)
}

/// Runs the exact II search with an explicit probe [`ExactBackend`].
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_with(
    l: &Loop,
    machine: &MachineConfig,
    options: &ExactOptions,
    backend: &ExactBackend,
) -> Result<ExactOutcome, ScheduleError> {
    let p = Problem::new(l, machine)?;
    let min_ii = mii::minimum_ii(l, machine);
    if min_ii == u32::MAX {
        return Err(ScheduleError::MissingResources {
            reason: "the loop needs a functional-unit kind the machine does not provide".into(),
        });
    }
    let max_ii = min_ii.saturating_add(options.max_ii_slack);

    // One SAT session spans the whole II search: in incremental mode (the
    // default) its solver carries clauses, learnt state and phases from
    // probe to probe. The mutex makes it reachable from the portfolio's
    // racing closure; with SAT first on the executor there is no contention.
    let sat_session = match backend {
        ExactBackend::Sat | ExactBackend::Portfolio(_) => Some(Mutex::new(SatProbeSession::new(
            &p,
            options.sat_incremental,
        ))),
        ExactBackend::BranchAndBound => None,
    };

    let mut nodes = 0u64;
    let mut conflicts = 0u64;
    let mut probes = Vec::new();
    let mut lower_bound = min_ii;
    let mut chain_unbroken = true;
    let mut schedule = None;

    for ii in min_ii..=max_ii {
        // The step budget is shared across probes (and, in the portfolio,
        // across both rival engines): each probe gets the remainder.
        let remaining = options.node_budget.saturating_sub(nodes + conflicts);
        if remaining == 0 {
            break;
        }
        let probe_options = options.with_node_budget(remaining);
        let before = (nodes, conflicts);
        let _probe = mvp_trace::span!("exact.probe", ii = ii);
        let (outcome, solver, sat_stats) = run_probe(
            &p,
            ii,
            &probe_options,
            backend,
            sat_session.as_ref(),
            &mut nodes,
            &mut conflicts,
        );
        let verdict = match outcome {
            FixedIiOutcome::Feasible { ops, comms } => {
                schedule = Some(assemble(&p, ii, ops, comms, backend.scheduler_name()));
                IiVerdict::Feasible
            }
            FixedIiOutcome::Infeasible => IiVerdict::Infeasible,
            FixedIiOutcome::Budget | FixedIiOutcome::Cancelled => IiVerdict::Unknown,
        };
        probes.push(IiProbe {
            ii,
            verdict,
            nodes: nodes - before.0,
            conflicts: conflicts - before.1,
            solver,
            reused_clauses: sat_stats.reused_clauses,
            kept_learned: sat_stats.kept_learned,
        });
        match verdict {
            IiVerdict::Feasible => break,
            IiVerdict::Infeasible => {
                if chain_unbroken {
                    lower_bound = ii + 1;
                }
            }
            IiVerdict::Unknown => {
                // Budget exhausted: stop probing — further probes would get
                // no budget either — and keep the bound certified so far.
                chain_unbroken = false;
                break;
            }
        }
    }

    let proved_optimal = schedule
        .as_ref()
        .is_some_and(|s: &Schedule| s.ii() == lower_bound && chain_unbroken);
    Ok(ExactOutcome {
        min_ii,
        schedule,
        lower_bound,
        proved_optimal,
        nodes,
        conflicts,
        backend: backend.kind(),
        probes,
    })
}

/// Runs one probe on the chosen backend, charging branch-and-bound nodes to
/// `nodes` and SAT steps to `conflicts`. SAT-capable backends probe through
/// the search-wide `sat` session (clause retention across IIs).
fn run_probe(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    backend: &ExactBackend,
    sat: Option<&Mutex<SatProbeSession<'_, '_, '_>>>,
    nodes: &mut u64,
    conflicts: &mut u64,
) -> (FixedIiOutcome, SolverKind, SatProbeStats) {
    match backend {
        ExactBackend::BranchAndBound => (
            solve_fixed_ii(p, ii, options, nodes, None),
            SolverKind::BranchAndBound,
            SatProbeStats::default(),
        ),
        ExactBackend::Sat => {
            let session = sat.expect("the Sat backend carries a session");
            let (outcome, stats) = session
                .lock()
                .expect("no SAT rival panicked")
                .probe(ii, options, conflicts, None);
            (outcome, SolverKind::Sat, stats)
        }
        ExactBackend::Portfolio(executor) => {
            let session = sat.expect("the portfolio carries a SAT session");
            race_probe(p, ii, options, executor, session, nodes, conflicts)
        }
    }
}

/// Whether a probe outcome is a certificate (rather than an exhausted budget
/// or a cancellation).
fn decided(outcome: &FixedIiOutcome) -> bool {
    matches!(
        outcome,
        FixedIiOutcome::Feasible { .. } | FixedIiOutcome::Infeasible
    )
}

/// Races the SAT and branch-and-bound engines on one probe. The first
/// engine to reach a certificate raises the poison flag; the rival aborts
/// at its next step and charges only the steps it actually took. Both
/// engines' steps count against the shared pool — the portfolio pays for
/// its parallelism in steps, and its headline claim (fewer *total* steps
/// than branch-and-bound alone) is measured on that inclusive sum.
fn race_probe(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    executor: &Executor,
    session: &Mutex<SatProbeSession<'_, '_, '_>>,
    nodes: &mut u64,
    conflicts: &mut u64,
) -> (FixedIiOutcome, SolverKind, SatProbeStats) {
    let poison = AtomicBool::new(false);
    let rivals = [SolverKind::Sat, SolverKind::BranchAndBound];
    let mut results = executor.map(&rivals, |&kind| {
        let mut steps = 0u64;
        let (outcome, stats) = match kind {
            SolverKind::Sat => session.lock().expect("no SAT rival panicked").probe(
                ii,
                options,
                &mut steps,
                Some(&poison),
            ),
            _ => (
                solve_fixed_ii(p, ii, options, &mut steps, Some(&poison)),
                SatProbeStats::default(),
            ),
        };
        if decided(&outcome) {
            poison.store(true, Ordering::Relaxed);
        }
        let done_ns = if mvp_trace::timing_enabled() {
            mvp_trace::now_ns()
        } else {
            0
        };
        (outcome, steps, done_ns, stats)
    });
    let (bnb_outcome, bnb_steps, bnb_done_ns, _) = results.pop().expect("two rivals ran");
    let (sat_outcome, sat_steps, sat_done_ns, sat_stats) = results.pop().expect("two rivals ran");
    *conflicts += sat_steps;
    *nodes += bnb_steps;

    if decided(&sat_outcome) && decided(&bnb_outcome) {
        // Differential cross-check: two independent engines must agree on
        // every certificate. A mismatch is a soundness bug, not a tie to
        // break.
        let sat_feasible = matches!(sat_outcome, FixedIiOutcome::Feasible { .. });
        let bnb_feasible = matches!(bnb_outcome, FixedIiOutcome::Feasible { .. });
        assert_eq!(
            sat_feasible,
            bnb_feasible,
            "portfolio rivals disagree at II={ii} for {}: SAT says {}, B&B says {}",
            p.l.name(),
            if sat_feasible {
                "feasible"
            } else {
                "infeasible"
            },
            if bnb_feasible {
                "feasible"
            } else {
                "infeasible"
            },
        );
    }

    let (sat_decided, bnb_decided) = (decided(&sat_outcome), decided(&bnb_outcome));
    let (outcome, winner) = if sat_decided {
        (sat_outcome, SolverKind::Sat)
    } else if bnb_decided {
        (bnb_outcome, SolverKind::BranchAndBound)
    } else {
        // Neither decided: the poison flag was never raised, so both ran
        // out of budget.
        (FixedIiOutcome::Budget, SolverKind::Portfolio)
    };
    match winner {
        SolverKind::Sat => mvp_trace::counter_handle!("portfolio.sat_wins", Runtime).incr(),
        SolverKind::BranchAndBound => {
            mvp_trace::counter_handle!("portfolio.bnb_wins", Runtime).incr();
        }
        SolverKind::Portfolio => {}
    }
    // Poison latency: how long the loser kept running after the winner's
    // certificate. Only measurable when timing is on (done_ns is 0 otherwise)
    // and only meaningful when exactly one rival decided — a double decide is
    // the cross-checked case, not a cancellation.
    if bnb_done_ns != 0 && sat_done_ns != 0 && sat_decided != bnb_decided {
        mvp_trace::counter_handle!("portfolio.poison.latency_ns", Runtime)
            .add(bnb_done_ns.abs_diff(sat_done_ns));
    }
    mvp_trace::instant!("portfolio.winner", ii = ii, solver = winner);
    (outcome, winner, sat_stats)
}

/// Assembles the search solution into a public [`Schedule`], computing the
/// same MaxLive register pressure the validator recomputes.
fn assemble(
    p: &Problem<'_, '_>,
    ii: u32,
    ops: Vec<mvp_core::PlacedOp>,
    comms: Vec<Communication>,
    scheduler_name: &str,
) -> Schedule {
    let pressure = lifetime::register_pressure(p.l, &ops, ii, p.machine.num_clusters());
    let schedule = Schedule::new(
        p.machine.name.clone(),
        scheduler_name,
        ii,
        ops,
        comms,
        pressure,
    );
    debug_assert!(
        mvp_core::validate_schedule(p.l, p.machine, &schedule).is_empty(),
        "the exact scheduler produced an illegal schedule for {}: {:?}",
        p.l.name(),
        mvp_core::validate_schedule(p.l, p.machine, &schedule)
    );
    schedule
}

/// The exact scheduler as a drop-in [`ModuloScheduler`]: schedules with the
/// smallest II its backend can find and certify.
///
/// Unlike [`solve_with`] — which exposes bounds and probe logs — this
/// front-end fits the common pipeline interface: a loop either gets a legal
/// schedule or a [`ScheduleError::NoFeasibleIi`] when the search range or
/// budget is exhausted without finding one.
///
/// # Example
///
/// ```
/// use mvp_exact::ExactScheduler;
/// use mvp_core::ModuloScheduler;
/// use mvp_ir::Loop;
/// use mvp_machine::presets;
///
/// # fn main() -> Result<(), mvp_core::ScheduleError> {
/// let mut b = Loop::builder("demo");
/// let x = b.fp_op("X");
/// let y = b.fp_op("Y");
/// b.data_edge(x, y, 0);
/// let l = b.build().expect("valid loop");
/// let s = ExactScheduler::new().schedule(&l, &presets::two_cluster())?;
/// assert_eq!(s.scheduler_name, "exact");
/// assert_eq!(s.ii(), 1); // one fp op per cluster per cycle: optimal II = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactScheduler {
    options: ExactOptions,
    backend: ExactBackend,
}

impl ExactScheduler {
    /// Creates an exact scheduler with default options and the
    /// branch-and-bound backend.
    #[must_use]
    pub fn new() -> Self {
        Self {
            options: ExactOptions::new(),
            backend: ExactBackend::BranchAndBound,
        }
    }

    /// Creates an exact scheduler with the given options.
    #[must_use]
    pub fn with_options(options: ExactOptions) -> Self {
        Self {
            options,
            backend: ExactBackend::BranchAndBound,
        }
    }

    /// Returns a copy using the given probe backend.
    #[must_use]
    pub fn with_backend(mut self, backend: ExactBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Creates an exact scheduler configured from the shared
    /// [`SchedulerOptions`] (see [`ExactOptions::from_scheduler_options`]).
    #[must_use]
    pub fn from_scheduler_options(options: &SchedulerOptions) -> Self {
        Self {
            options: ExactOptions::from_scheduler_options(options),
            backend: ExactBackend::BranchAndBound,
        }
    }

    /// The search options in use.
    #[must_use]
    pub fn options(&self) -> &ExactOptions {
        &self.options
    }

    /// The probe backend in use.
    #[must_use]
    pub fn backend(&self) -> &ExactBackend {
        &self.backend
    }

    /// Full search outcome (schedule, certified lower bound, probe log).
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`].
    pub fn solve(&self, l: &Loop, machine: &MachineConfig) -> Result<ExactOutcome, ScheduleError> {
        solve_with(l, machine, &self.options, &self.backend)
    }
}

impl ModuloScheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        self.backend.scheduler_name()
    }

    fn schedule(&self, l: &Loop, machine: &MachineConfig) -> Result<Schedule, ScheduleError> {
        let outcome = self.solve(l, machine)?;
        let max_ii = outcome.min_ii.saturating_add(self.options.max_ii_slack);
        outcome.schedule.ok_or(ScheduleError::NoFeasibleIi {
            min_ii: outcome.min_ii,
            max_ii,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::validate_schedule;
    use mvp_machine::presets;

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    /// fp X → Y (distance 0), Y → X (distance 2): `min_ii = RecMII = 2`,
    /// but II=2 is only refutable by *search* (window propagation and
    /// resource counts both pass), making it the canonical
    /// budget-exhausts-at-an-intermediate-II fixture. II=3 is feasible.
    fn search_refuted_recurrence() -> Loop {
        let mut b = Loop::builder("slack-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 2);
        b.build().unwrap()
    }

    #[test]
    fn chains_are_proved_optimal_at_the_minimum_ii() {
        let l = chain();
        for machine in [
            presets::unified(),
            presets::two_cluster(),
            presets::four_cluster(),
        ] {
            let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
            let s = outcome.schedule.as_ref().expect("feasible");
            assert!(outcome.proved_optimal, "{}", machine.name);
            assert_eq!(s.ii(), mii::minimum_ii(&l, &machine), "{}", machine.name);
            assert_eq!(outcome.lower_bound, s.ii());
            assert_eq!(outcome.exact_ii(), Some(s.ii()));
            assert!(validate_schedule(&l, &machine, s).is_empty());
            assert_eq!(outcome.probes.len(), 1);
            assert_eq!(outcome.backend, SolverKind::BranchAndBound);
            assert_eq!(outcome.conflicts, 0);
        }
    }

    #[test]
    fn budget_exhaustion_returns_a_lower_bound_not_a_panic() {
        let l = chain();
        let machine = presets::two_cluster();
        let outcome = solve(&l, &machine, &ExactOptions::new().with_node_budget(1)).unwrap();
        assert!(outcome.schedule.is_none());
        assert!(!outcome.proved_optimal);
        assert_eq!(outcome.lower_bound, mii::minimum_ii(&l, &machine));
        assert_eq!(outcome.probes.last().unwrap().verdict, IiVerdict::Unknown);
        // ...and the ModuloScheduler front-end turns it into NoFeasibleIi.
        let err = ExactScheduler::with_options(ExactOptions::new().with_node_budget(1))
            .schedule(&l, &machine)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoFeasibleIi { .. }));
    }

    #[test]
    fn recurrences_raise_the_certified_bound() {
        // fp X -> Y -> X (distance 1): RecMII = 4; the probes at II 1..3 are
        // skipped entirely because minimum_ii already starts at 4.
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
        assert_eq!(outcome.min_ii, 4);
        assert!(outcome.proved_optimal);
        assert_eq!(outcome.schedule_ii(), Some(4));
    }

    #[test]
    fn scheduler_front_end_matches_solve() {
        let l = chain();
        let machine = presets::two_cluster();
        let scheduler = ExactScheduler::new();
        assert_eq!(scheduler.name(), "exact");
        assert_eq!(scheduler.options(), &ExactOptions::new());
        assert!(matches!(scheduler.backend(), ExactBackend::BranchAndBound));
        let s = scheduler.schedule(&l, &machine).unwrap();
        let outcome = scheduler.solve(&l, &machine).unwrap();
        assert_eq!(Some(s.ii()), outcome.schedule_ii());
        assert_eq!(s.scheduler_name, "exact");
        assert_eq!(s.machine_name, machine.name);
    }

    #[test]
    fn the_sat_backend_agrees_with_branch_and_bound() {
        let loops = [chain(), search_refuted_recurrence()];
        for l in &loops {
            for machine in [
                presets::unified(),
                presets::two_cluster(),
                presets::motivating_example_machine(),
            ] {
                let bnb = solve(l, &machine, &ExactOptions::new()).unwrap();
                let sat =
                    solve_with(l, &machine, &ExactOptions::new(), &ExactBackend::Sat).unwrap();
                assert_eq!(
                    sat.lower_bound,
                    bnb.lower_bound,
                    "{} on {}",
                    l.name(),
                    machine.name
                );
                assert_eq!(
                    sat.proved_optimal,
                    bnb.proved_optimal,
                    "{} on {}",
                    l.name(),
                    machine.name
                );
                assert_eq!(sat.schedule_ii(), bnb.schedule_ii());
                assert_eq!(sat.backend, SolverKind::Sat);
                assert_eq!(sat.nodes, 0, "the SAT backend charges steps, not nodes");
                let s = sat.schedule.as_ref().expect("feasible");
                assert_eq!(s.scheduler_name, "exact-sat");
                assert!(validate_schedule(l, &machine, s).is_empty());
            }
        }
    }

    #[test]
    fn the_portfolio_matches_both_engines_and_records_the_winner() {
        let l = search_refuted_recurrence();
        let machine = presets::motivating_example_machine();
        let backend = ExactBackend::portfolio(Arc::new(Executor::new(2)));
        let outcome = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
        assert_eq!(outcome.min_ii, 2);
        assert_eq!(outcome.schedule_ii(), Some(3));
        assert!(outcome.proved_optimal);
        assert_eq!(outcome.backend, SolverKind::Portfolio);
        for probe in &outcome.probes {
            assert_ne!(
                probe.solver,
                SolverKind::Portfolio,
                "decided probes name the winning engine"
            );
        }
        let s = outcome.schedule.as_ref().unwrap();
        assert_eq!(s.scheduler_name, "exact-portfolio");
        assert!(validate_schedule(&l, &machine, s).is_empty());
    }

    #[test]
    fn a_single_threaded_portfolio_is_deterministic_and_sat_wins() {
        let l = chain();
        let machine = presets::two_cluster();
        let backend = ExactBackend::portfolio(Arc::new(Executor::new(1)));
        let a = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
        let b = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.conflicts, b.conflicts);
        assert_eq!(a.schedule, b.schedule);
        // SAT runs first on a 1-thread executor and decides the probe; the
        // branch-and-bound rival is poisoned before charging a node.
        assert_eq!(a.probes.last().unwrap().solver, SolverKind::Sat);
        assert_eq!(a.nodes, 0);
        let scheduler = ExactScheduler::new().with_backend(backend);
        assert_eq!(scheduler.name(), "exact-portfolio");
        assert_eq!(
            scheduler.schedule(&l, &machine).unwrap().scheduler_name,
            "exact-portfolio"
        );
    }

    #[test]
    fn intermediate_ii_budget_exhaustion_keeps_the_bound_on_every_backend() {
        // The II=2 probe is refuted by search alone; give each backend just
        // enough budget to certify it but not to finish II=3. The outcome
        // must report lower_bound = 3 with no optimum claim, and the gap
        // helper must price a heuristic II=3 schedule at gap 0.
        let l = search_refuted_recurrence();
        let machine = presets::motivating_example_machine();
        for backend in [ExactBackend::BranchAndBound, ExactBackend::Sat] {
            let full = solve_with(&l, &machine, &ExactOptions::new(), &backend).unwrap();
            assert_eq!(full.schedule_ii(), Some(3), "{backend:?}");
            assert!(full.proved_optimal);
            assert_eq!(full.probes[0].verdict, IiVerdict::Infeasible);
            let refute_cost = full.probes[0].nodes + full.probes[0].conflicts;
            assert!(refute_cost > 0, "{backend:?} refuted II=2 by search");

            let starved = solve_with(
                &l,
                &machine,
                &ExactOptions::new().with_node_budget(refute_cost + 1),
                &backend,
            )
            .unwrap();
            assert_eq!(starved.lower_bound, 3, "{backend:?}");
            assert!(starved.schedule.is_none(), "{backend:?}");
            assert!(!starved.proved_optimal, "{backend:?}");
            assert_eq!(starved.probes.last().unwrap().verdict, IiVerdict::Unknown);
            assert_eq!(starved.probes.last().unwrap().ii, 3);
            // The certified bound prices heuristics even without an optimum.
            assert!((starved.optimality_gap_of(3)).abs() < 1e-12);
            assert!((starved.optimality_gap_of(6) - 1.0).abs() < 1e-12);
        }
    }
}
