//! The outer II search and the [`ModuloScheduler`] front-end.
//!
//! [`solve`] probes candidate initiation intervals upwards from
//! `max(ResMII, RecMII)`. Each probe ends in one of three ways
//! ([`IiVerdict`]): *feasible* (a legal schedule is assembled and the search
//! stops), *infeasible* (the lower bound advances past this II — but only
//! while the chain of certificates from the minimum II is unbroken), or
//! *unknown* (the node budget ran out; the search stops and reports the
//! bound certified so far). The result is either a provably optimal
//! schedule, a schedule plus a smaller certified lower bound, or a lower
//! bound alone.

use crate::model::Problem;
use crate::options::ExactOptions;
use crate::outcome::{ExactOutcome, IiProbe, IiVerdict};
use crate::search::{solve_fixed_ii, FixedIiOutcome};
use mvp_core::error::ScheduleError;
use mvp_core::{lifetime, Communication, ModuloScheduler, Schedule, SchedulerOptions};
use mvp_ir::{mii, Loop};
use mvp_machine::MachineConfig;

/// Runs the exact II search for `l` on `machine`.
///
/// # Errors
///
/// Returns [`ScheduleError::Machine`] for an invalid machine and
/// [`ScheduleError::MissingResources`] when the loop uses a functional-unit
/// kind the machine lacks. An exhausted search range or budget is *not* an
/// error — the [`ExactOutcome`] reports it as a missing schedule with a
/// certified lower bound.
pub fn solve(
    l: &Loop,
    machine: &MachineConfig,
    options: &ExactOptions,
) -> Result<ExactOutcome, ScheduleError> {
    let p = Problem::new(l, machine)?;
    let min_ii = mii::minimum_ii(l, machine);
    if min_ii == u32::MAX {
        return Err(ScheduleError::MissingResources {
            reason: "the loop needs a functional-unit kind the machine does not provide".into(),
        });
    }
    let max_ii = min_ii.saturating_add(options.max_ii_slack);

    let mut nodes = 0u64;
    let mut probes = Vec::new();
    let mut lower_bound = min_ii;
    let mut chain_unbroken = true;
    let mut schedule = None;

    for ii in min_ii..=max_ii {
        // The node budget is shared across probes: each gets the remainder.
        let remaining = options.node_budget.saturating_sub(nodes);
        if remaining == 0 {
            break;
        }
        let probe_options = options.with_node_budget(remaining);
        let before = nodes;
        let outcome = solve_fixed_ii(&p, ii, &probe_options, &mut nodes);
        let verdict = match outcome {
            FixedIiOutcome::Feasible { ops, comms } => {
                schedule = Some(assemble(&p, ii, ops, comms));
                IiVerdict::Feasible
            }
            FixedIiOutcome::Infeasible => IiVerdict::Infeasible,
            FixedIiOutcome::Budget => IiVerdict::Unknown,
        };
        probes.push(IiProbe {
            ii,
            verdict,
            nodes: nodes - before,
        });
        match verdict {
            IiVerdict::Feasible => break,
            IiVerdict::Infeasible => {
                if chain_unbroken {
                    lower_bound = ii + 1;
                }
            }
            IiVerdict::Unknown => {
                // Budget exhausted: stop probing — further probes would get
                // no budget either — and keep the bound certified so far.
                chain_unbroken = false;
                break;
            }
        }
    }

    let proved_optimal = schedule
        .as_ref()
        .is_some_and(|s: &Schedule| s.ii() == lower_bound && chain_unbroken);
    Ok(ExactOutcome {
        min_ii,
        schedule,
        lower_bound,
        proved_optimal,
        nodes,
        probes,
    })
}

/// Assembles the search solution into a public [`Schedule`], computing the
/// same MaxLive register pressure the validator recomputes.
fn assemble(
    p: &Problem<'_, '_>,
    ii: u32,
    ops: Vec<mvp_core::PlacedOp>,
    comms: Vec<Communication>,
) -> Schedule {
    let pressure = lifetime::register_pressure(p.l, &ops, ii, p.machine.num_clusters());
    let schedule = Schedule::new(p.machine.name.clone(), "exact", ii, ops, comms, pressure);
    debug_assert!(
        mvp_core::validate_schedule(p.l, p.machine, &schedule).is_empty(),
        "the exact scheduler produced an illegal schedule for {}: {:?}",
        p.l.name(),
        mvp_core::validate_schedule(p.l, p.machine, &schedule)
    );
    schedule
}

/// The exact scheduler as a drop-in [`ModuloScheduler`]: schedules with the
/// smallest II the branch-and-bound search can find and certify.
///
/// Unlike [`solve`] — which exposes bounds and probe logs — this front-end
/// fits the common pipeline interface: a loop either gets a legal schedule
/// or a [`ScheduleError::NoFeasibleIi`] when the search range or node budget
/// is exhausted without finding one.
///
/// # Example
///
/// ```
/// use mvp_exact::ExactScheduler;
/// use mvp_core::ModuloScheduler;
/// use mvp_ir::Loop;
/// use mvp_machine::presets;
///
/// # fn main() -> Result<(), mvp_core::ScheduleError> {
/// let mut b = Loop::builder("demo");
/// let x = b.fp_op("X");
/// let y = b.fp_op("Y");
/// b.data_edge(x, y, 0);
/// let l = b.build().expect("valid loop");
/// let s = ExactScheduler::new().schedule(&l, &presets::two_cluster())?;
/// assert_eq!(s.scheduler_name, "exact");
/// assert_eq!(s.ii(), 1); // one fp op per cluster per cycle: optimal II = 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExactScheduler {
    options: ExactOptions,
}

impl ExactScheduler {
    /// Creates an exact scheduler with default options.
    #[must_use]
    pub fn new() -> Self {
        Self {
            options: ExactOptions::new(),
        }
    }

    /// Creates an exact scheduler with the given options.
    #[must_use]
    pub fn with_options(options: ExactOptions) -> Self {
        Self { options }
    }

    /// Creates an exact scheduler configured from the shared
    /// [`SchedulerOptions`] (see [`ExactOptions::from_scheduler_options`]).
    #[must_use]
    pub fn from_scheduler_options(options: &SchedulerOptions) -> Self {
        Self {
            options: ExactOptions::from_scheduler_options(options),
        }
    }

    /// The search options in use.
    #[must_use]
    pub fn options(&self) -> &ExactOptions {
        &self.options
    }

    /// Full search outcome (schedule, certified lower bound, probe log).
    ///
    /// # Errors
    ///
    /// Same contract as [`solve`].
    pub fn solve(&self, l: &Loop, machine: &MachineConfig) -> Result<ExactOutcome, ScheduleError> {
        solve(l, machine, &self.options)
    }
}

impl ModuloScheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn schedule(&self, l: &Loop, machine: &MachineConfig) -> Result<Schedule, ScheduleError> {
        let outcome = solve(l, machine, &self.options)?;
        let max_ii = outcome.min_ii.saturating_add(self.options.max_ii_slack);
        outcome.schedule.ok_or(ScheduleError::NoFeasibleIi {
            min_ii: outcome.min_ii,
            max_ii,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::validate_schedule;
    use mvp_machine::presets;

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn chains_are_proved_optimal_at_the_minimum_ii() {
        let l = chain();
        for machine in [
            presets::unified(),
            presets::two_cluster(),
            presets::four_cluster(),
        ] {
            let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
            let s = outcome.schedule.as_ref().expect("feasible");
            assert!(outcome.proved_optimal, "{}", machine.name);
            assert_eq!(s.ii(), mii::minimum_ii(&l, &machine), "{}", machine.name);
            assert_eq!(outcome.lower_bound, s.ii());
            assert_eq!(outcome.exact_ii(), Some(s.ii()));
            assert!(validate_schedule(&l, &machine, s).is_empty());
            assert_eq!(outcome.probes.len(), 1);
        }
    }

    #[test]
    fn budget_exhaustion_returns_a_lower_bound_not_a_panic() {
        let l = chain();
        let machine = presets::two_cluster();
        let outcome = solve(&l, &machine, &ExactOptions::new().with_node_budget(1)).unwrap();
        assert!(outcome.schedule.is_none());
        assert!(!outcome.proved_optimal);
        assert_eq!(outcome.lower_bound, mii::minimum_ii(&l, &machine));
        assert_eq!(outcome.probes.last().unwrap().verdict, IiVerdict::Unknown);
        // ...and the ModuloScheduler front-end turns it into NoFeasibleIi.
        let err = ExactScheduler::with_options(ExactOptions::new().with_node_budget(1))
            .schedule(&l, &machine)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::NoFeasibleIi { .. }));
    }

    #[test]
    fn recurrences_raise_the_certified_bound() {
        // fp X -> Y -> X (distance 1): RecMII = 4; the probes at II 1..3 are
        // skipped entirely because minimum_ii already starts at 4.
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        let outcome = solve(&l, &machine, &ExactOptions::new()).unwrap();
        assert_eq!(outcome.min_ii, 4);
        assert!(outcome.proved_optimal);
        assert_eq!(outcome.schedule_ii(), Some(4));
    }

    #[test]
    fn scheduler_front_end_matches_solve() {
        let l = chain();
        let machine = presets::two_cluster();
        let scheduler = ExactScheduler::new();
        assert_eq!(scheduler.name(), "exact");
        assert_eq!(scheduler.options(), &ExactOptions::new());
        let s = scheduler.schedule(&l, &machine).unwrap();
        let outcome = scheduler.solve(&l, &machine).unwrap();
        assert_eq!(Some(s.ii()), outcome.schedule_ii());
        assert_eq!(s.scheduler_name, "exact");
        assert_eq!(s.machine_name, machine.name);
    }
}
