//! The constraint model: everything the branch-and-bound search needs,
//! precomputed once per (loop, machine) pair.
//!
//! The model deliberately mirrors the rule set of
//! [`mvp_core::validate::validate_schedule`] — the independent legality
//! oracle — rather than the internals of any heuristic scheduler: a schedule
//! found by the search is legal *by the validator's definition*, and an II
//! the search certifies as infeasible admits no schedule the validator would
//! accept (within the documented search horizon).

use crate::options::ExactOptions;
use mvp_core::error::ScheduleError;
use mvp_ir::{EdgeKind, Loop, OpId};
use mvp_machine::{BusCount, FuKind, MachineConfig};

/// Preprocessed instance shared by every fixed-II probe.
#[derive(Debug)]
pub struct Problem<'l, 'm> {
    /// The loop being scheduled.
    pub l: &'l Loop,
    /// The target machine.
    pub machine: &'m MachineConfig,
    /// Per-operation assumed latency. The exact scheduler always uses the
    /// cache-hit latency (it proves bounds on the II; the miss-latency scheme
    /// of Section 4.3 trades II for stall cycles and is a heuristic-only
    /// concern), so placements carry `miss_scheduled = false` and satisfy the
    /// validator's `LatencyMismatch` rule by construction.
    pub latency: Vec<u32>,
    /// Per-operation functional-unit kind.
    pub fu_kind: Vec<FuKind>,
    /// Functional units of each kind per cluster (`fu_count[cluster][kind]`).
    pub fu_count: Vec<[usize; 3]>,
    /// Register-file capacity per cluster.
    pub register_file: Vec<u32>,
    /// Register-bus latency in cycles.
    pub bus_latency: u32,
    /// Number of register buses, or `None` for an unbounded bus set (on
    /// which the validator never reports a conflict).
    pub num_buses: Option<usize>,
    /// Whether all clusters are identical, which makes cluster labels
    /// interchangeable and enables symmetry breaking in the search.
    pub homogeneous: bool,
    /// Number of operations of each functional-unit kind, for the
    /// resource-count infeasibility certificate.
    pub ops_per_kind: [usize; 3],
}

impl<'l, 'm> Problem<'l, 'm> {
    /// Builds the model, validating the machine and checking that every
    /// operation kind has at least one unit somewhere.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Machine`] for an invalid machine and
    /// [`ScheduleError::MissingResources`] when the loop uses a
    /// functional-unit kind the machine lacks (no II can ever work).
    pub fn new(l: &'l Loop, machine: &'m MachineConfig) -> Result<Self, ScheduleError> {
        machine.validate()?;
        let latency: Vec<u32> = l
            .ops()
            .iter()
            .map(|o| o.kind.hit_latency(&machine.latencies))
            .collect();
        let fu_kind: Vec<FuKind> = l.ops().iter().map(|o| o.kind.fu_kind()).collect();
        let fu_count: Vec<[usize; 3]> = machine
            .clusters()
            .map(|(_, c)| FuKind::ALL.map(|k| c.fu_count(k)))
            .collect();
        let register_file: Vec<u32> = machine
            .clusters()
            .map(|(_, c)| c.register_file_size as u32)
            .collect();
        let mut ops_per_kind = [0usize; 3];
        for k in &fu_kind {
            ops_per_kind[k.index()] += 1;
        }
        for kind in FuKind::ALL {
            if ops_per_kind[kind.index()] > 0 && machine.total_fu_count(kind) == 0 {
                return Err(ScheduleError::MissingResources {
                    reason: "the loop needs a functional-unit kind the machine does not provide"
                        .into(),
                });
            }
        }
        let homogeneous = machine
            .clusters()
            .map(|(_, c)| c)
            .all(|c| c == machine.cluster(0));
        Ok(Self {
            l,
            machine,
            latency,
            fu_kind,
            fu_count,
            register_file,
            bus_latency: machine.register_buses.latency,
            num_buses: match machine.register_buses.count {
                BusCount::Finite(n) => Some(n),
                BusCount::Unbounded => None,
            },
            homogeneous,
            ops_per_kind,
        })
    }

    /// Number of operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.l.num_ops()
    }

    /// Dependence weight of edge `e` at initiation interval `ii`, *without*
    /// the register-bus term: `t_dst − t_src ≥ weight`. This is the
    /// cluster-independent relaxation used for window propagation; the search
    /// re-checks each edge exactly (adding the bus latency when the endpoints
    /// land in different clusters), matching the validator's
    /// `DependenceViolated` rule.
    #[must_use]
    pub fn edge_weight(&self, e: &mvp_ir::DepEdge, ii: u32) -> i64 {
        let lat = if e.kind == EdgeKind::Data {
            i64::from(self.latency[e.src.index()])
        } else {
            1
        };
        lat - i64::from(ii) * i64::from(e.distance)
    }

    /// The exact start-to-start requirement of edge `e` when `src` is placed
    /// in `src_cluster` and `dst` in `dst_cluster` (the validator's
    /// `value_ready − consumer_iteration_base`): latency plus the bus latency
    /// for cross-cluster data edges, minus the iteration offset.
    #[must_use]
    pub fn exact_edge_weight(
        &self,
        e: &mvp_ir::DepEdge,
        ii: u32,
        src_cluster: usize,
        dst_cluster: usize,
    ) -> i64 {
        let mut w = self.edge_weight(e, ii);
        if e.kind == EdgeKind::Data && src_cluster != dst_cluster {
            w += i64::from(self.bus_latency);
        }
        w
    }

    /// The resource-count certificate (the `ResMII` bound, per unit kind):
    /// `ii` is infeasible whenever some kind must issue more operations per
    /// II than the machine has unit-slots, i.e. `ops > units × ii` — the
    /// counting argument behind the validator's `FuOversubscribed` rule.
    #[must_use]
    pub fn resource_infeasible(&self, ii: u32) -> bool {
        FuKind::ALL.into_iter().any(|kind| {
            let units = self.machine.total_fu_count(kind) as u64;
            self.ops_per_kind[kind.index()] as u64 > units * u64::from(ii)
        })
    }

    /// Operation order the search branches in: tightest static window first
    /// (fail-first), breaking ties towards higher-degree and lower-id
    /// operations. The order is fixed per probe — conflict-driven backjumping
    /// relies on stable decision levels.
    #[must_use]
    pub fn branch_order(&self, window_width: &[i64]) -> Vec<OpId> {
        let mut degree = vec![0usize; self.num_ops()];
        for e in self.l.edges() {
            degree[e.src.index()] += 1;
            degree[e.dst.index()] += 1;
        }
        let mut order: Vec<OpId> = self.l.op_ids().collect();
        order.sort_by_key(|op| {
            (
                window_width[op.index()],
                -(degree[op.index()] as i64),
                op.index(),
            )
        });
        order
    }

    /// Search horizon for a probe at `ii`: the latest cycle any operation may
    /// start. See [`ExactOptions::horizon_stages`] for the completeness
    /// caveat this bound carries.
    #[must_use]
    pub fn horizon(&self, asap_max: i64, ii: u32, options: &ExactOptions) -> i64 {
        asap_max + i64::from(options.horizon_stages.max(1)) * i64::from(ii)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::presets;

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn model_captures_machine_and_loop_shape() {
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        assert_eq!(p.num_ops(), 3);
        assert_eq!(p.latency, vec![2, 2, 1]);
        assert_eq!(p.num_buses, Some(2));
        assert_eq!(p.bus_latency, 1);
        assert!(p.homogeneous);
        assert_eq!(p.ops_per_kind, [0, 1, 2]);
        assert_eq!(p.register_file, vec![32, 32]);
    }

    #[test]
    fn missing_unit_kinds_fail_fast() {
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        let machine = MachineConfig::builder("no-mem")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 0, 32, CacheGeometry::direct_mapped(4096)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        let l = chain();
        assert!(matches!(
            Problem::new(&l, &machine),
            Err(ScheduleError::MissingResources { .. })
        ));
    }

    #[test]
    fn resource_certificate_matches_res_mii() {
        let l = chain();
        let machine = presets::motivating_example_machine();
        let p = Problem::new(&l, &machine).unwrap();
        // 2 memory ops on 2 memory units: infeasible only below II=1.
        assert!(!p.resource_infeasible(1));
        let (l8, _) = {
            use mvp_workloads::motivating::{motivating_loop, MotivatingParams};
            motivating_loop(&MotivatingParams::default())
        };
        let p8 = Problem::new(&l8, &machine).unwrap();
        // 5 memory ops on 2 units: ResMII = 3.
        assert!(p8.resource_infeasible(2));
        assert!(!p8.resource_infeasible(3));
    }

    #[test]
    fn edge_weights_follow_the_validator_rules() {
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let e = l.edges()[0]; // LD -> F, data, distance 0
        assert_eq!(p.edge_weight(&e, 3), 2);
        assert_eq!(p.exact_edge_weight(&e, 3, 0, 0), 2);
        assert_eq!(p.exact_edge_weight(&e, 3, 0, 1), 3); // + bus latency 1
        let carried = mvp_ir::DepEdge::data(e.src, e.dst, 2);
        assert_eq!(p.edge_weight(&carried, 3), 2 - 6);
    }
}
