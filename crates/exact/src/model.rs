//! The constraint model: everything the branch-and-bound search needs,
//! precomputed once per (loop, machine) pair.
//!
//! Since the shared incremental constraint kernel (`mvp-resmodel`) landed,
//! the model itself *is* the kernel's [`ResModel`] — the same rule
//! vocabulary the heuristic engine and the validator's differential tests
//! build on — plus the two search-specific derivations that have no meaning
//! outside branch-and-bound: the fail-first branch order and the search
//! horizon. [`Problem`] dereferences to the underlying [`ResModel`], so the
//! propagation and search modules consult latencies, unit counts, bus
//! configuration and the counting certificates straight from the kernel.
//!
//! The model deliberately mirrors the rule set of
//! [`mvp_core::validate::validate_schedule`] — the independent legality
//! oracle — rather than the internals of any heuristic scheduler: a schedule
//! found by the search is legal *by the validator's definition*, and an II
//! the search certifies as infeasible admits no schedule the validator would
//! accept (within the documented search horizon).

use crate::options::ExactOptions;
use mvp_core::error::ScheduleError;
use mvp_ir::{Loop, OpId};
use mvp_machine::MachineConfig;
use mvp_resmodel::ResModel;
use std::ops::Deref;

/// Preprocessed instance shared by every fixed-II probe: the kernel's
/// [`ResModel`] plus the search-only derivations
/// ([`branch_order`](Problem::branch_order), [`horizon`](Problem::horizon)).
///
/// The exact scheduler always uses the cache-hit latency (it proves bounds
/// on the II; the miss-latency scheme of Section 4.3 trades II for stall
/// cycles and is a heuristic-only concern), so placements carry
/// `miss_scheduled = false` and satisfy the validator's `LatencyMismatch`
/// rule by construction.
#[derive(Debug)]
pub struct Problem<'l, 'm> {
    model: ResModel<'l, 'm>,
}

impl<'l, 'm> Deref for Problem<'l, 'm> {
    type Target = ResModel<'l, 'm>;

    fn deref(&self) -> &ResModel<'l, 'm> {
        &self.model
    }
}

impl<'l, 'm> Problem<'l, 'm> {
    /// Builds the model, validating the machine and checking that every
    /// operation kind has at least one unit somewhere.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Machine`] for an invalid machine and
    /// [`ScheduleError::MissingResources`] when the loop uses a
    /// functional-unit kind the machine lacks (no II can ever work).
    pub fn new(l: &'l Loop, machine: &'m MachineConfig) -> Result<Self, ScheduleError> {
        Ok(Self {
            model: ResModel::new(l, machine)?,
        })
    }

    /// The underlying constraint kernel model.
    #[must_use]
    pub fn model(&self) -> &ResModel<'l, 'm> {
        &self.model
    }

    /// Operation order the search branches in: tightest static window first
    /// (fail-first), breaking ties towards higher-degree and lower-id
    /// operations. The order is fixed per probe — conflict-driven backjumping
    /// relies on stable decision levels.
    #[must_use]
    pub fn branch_order(&self, window_width: &[i64]) -> Vec<OpId> {
        let mut degree = vec![0usize; self.num_ops()];
        for e in self.l.edges() {
            degree[e.src.index()] += 1;
            degree[e.dst.index()] += 1;
        }
        let mut order: Vec<OpId> = self.l.op_ids().collect();
        order.sort_by_key(|op| {
            (
                window_width[op.index()],
                -(degree[op.index()] as i64),
                op.index(),
            )
        });
        order
    }

    /// Search horizon for a probe at `ii`: the latest cycle any operation may
    /// start. See [`ExactOptions::horizon_stages`] for the completeness
    /// caveat this bound carries.
    #[must_use]
    pub fn horizon(&self, asap_max: i64, ii: u32, options: &ExactOptions) -> i64 {
        asap_max + i64::from(options.horizon_stages.max(1)) * i64::from(ii)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::presets;

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn model_captures_machine_and_loop_shape() {
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        assert_eq!(p.num_ops(), 3);
        assert_eq!(p.latency, vec![2, 2, 1]);
        assert_eq!(p.num_buses, Some(2));
        assert_eq!(p.bus_latency, 1);
        assert!(p.homogeneous);
        assert_eq!(p.ops_per_kind, [0, 1, 2]);
        assert_eq!(p.register_file, vec![32, 32]);
    }

    #[test]
    fn missing_unit_kinds_fail_fast() {
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        let machine = MachineConfig::builder("no-mem")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 0, 32, CacheGeometry::direct_mapped(4096)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        let l = chain();
        assert!(matches!(
            Problem::new(&l, &machine),
            Err(ScheduleError::MissingResources { .. })
        ));
    }

    #[test]
    fn resource_certificate_matches_res_mii() {
        let l = chain();
        let machine = presets::motivating_example_machine();
        let p = Problem::new(&l, &machine).unwrap();
        // 2 memory ops on 2 memory units: infeasible only below II=1.
        assert!(!p.resource_infeasible(1));
        let (l8, _) = {
            use mvp_workloads::motivating::{motivating_loop, MotivatingParams};
            motivating_loop(&MotivatingParams::default())
        };
        let p8 = Problem::new(&l8, &machine).unwrap();
        // 5 memory ops on 2 units: ResMII = 3.
        assert!(p8.resource_infeasible(2));
        assert!(!p8.resource_infeasible(3));
    }

    #[test]
    fn edge_weights_follow_the_validator_rules() {
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let e = l.edges()[0]; // LD -> F, data, distance 0
        assert_eq!(p.edge_weight(&e, 3), 2);
        assert_eq!(p.exact_edge_weight(&e, 3, 0, 0), 2);
        assert_eq!(p.exact_edge_weight(&e, 3, 0, 1), 3); // + bus latency 1
        let carried = mvp_ir::DepEdge::data(e.src, e.dst, 2);
        assert_eq!(p.edge_weight(&carried, 3), 2 - 6);
    }
}
