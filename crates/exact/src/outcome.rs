//! Results of the exact II search: schedules, certified bounds, probe logs.

use mvp_core::Schedule;
use std::fmt;

/// The engine that decided a probe (or backed a whole search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// The branch-and-bound search ([`crate::solve`]'s default engine).
    BranchAndBound,
    /// The CDCL SAT backend (CNF encoding per fixed-II probe).
    Sat,
    /// Both engines raced on the executor; only meaningful as an
    /// outcome-level label — individual probes always name the engine
    /// whose certificate won.
    Portfolio,
}

impl SolverKind {
    /// Short stable label for CSV columns: `bnb`, `sat` or `portfolio`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SolverKind::BranchAndBound => "bnb",
            SolverKind::Sat => "sat",
            SolverKind::Portfolio => "portfolio",
        }
    }
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Verdict of one fixed-II probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IiVerdict {
    /// A legal schedule exists at this II.
    Feasible,
    /// No legal schedule exists at this II (certified by a dependence
    /// positive cycle, a resource count, or an exhausted search within the
    /// horizon).
    Infeasible,
    /// The node budget ran out before the probe was decided.
    Unknown,
}

impl fmt::Display for IiVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IiVerdict::Feasible => f.write_str("feasible"),
            IiVerdict::Infeasible => f.write_str("infeasible"),
            IiVerdict::Unknown => f.write_str("unknown"),
        }
    }
}

/// Log entry of one fixed-II probe of the outer search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IiProbe {
    /// The probed initiation interval.
    pub ii: u32,
    /// How the probe ended.
    pub verdict: IiVerdict,
    /// Branch-and-bound search nodes the probe consumed (including a
    /// cancelled portfolio rival's).
    pub nodes: u64,
    /// SAT solver steps (decisions + conflicts) the probe consumed
    /// (including a cancelled portfolio rival's).
    pub conflicts: u64,
    /// The engine whose certificate decided the probe. For an undecided
    /// probe (budget), the backend that was asked.
    pub solver: SolverKind,
    /// Clauses already sitting in the incremental SAT solver when this
    /// probe began — the re-encoding work the session avoided. Zero for the
    /// first probe, for from-scratch sessions, and for pure
    /// branch-and-bound probes.
    pub reused_clauses: u64,
    /// Learnt clauses the incremental SAT solver retained from earlier
    /// probes of the same search (CEGAR blocking clauses included). Zero in
    /// the same cases as [`reused_clauses`](Self::reused_clauses).
    pub kept_learned: u64,
}

/// Outcome of the exact II search for one loop on one machine.
///
/// The invariants every consumer can rely on:
///
/// * every II below [`lower_bound`](Self::lower_bound) is **certified
///   illegal** — no schedule the validator accepts exists there (within the
///   documented search horizon), so no heuristic may ever report a smaller
///   II;
/// * when [`schedule`](Self::schedule) is present it is a legal schedule
///   (it passes `validate_schedule` with zero violations) and its II is the
///   smallest the search could *find*;
/// * [`proved_optimal`](Self::proved_optimal) holds exactly when the found
///   schedule's II equals the lower bound — the schedule is optimal, with
///   the probe log as the certificate trail.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The machine-independent-rules minimum II the search started from
    /// (`max(ResMII, RecMII)`).
    pub min_ii: u32,
    /// Best (smallest-II) legal schedule found, if any II in the search
    /// range was both feasible and within budget.
    pub schedule: Option<Schedule>,
    /// Smallest II **not** certified infeasible: a certified lower bound on
    /// the II of any legal schedule.
    pub lower_bound: u32,
    /// Whether `schedule` is proven optimal (`schedule.ii() == lower_bound`).
    pub proved_optimal: bool,
    /// Total branch-and-bound search nodes consumed across all probes.
    pub nodes: u64,
    /// Total SAT solver steps (decisions + conflicts) across all probes.
    pub conflicts: u64,
    /// The backend the search ran with.
    pub backend: SolverKind,
    /// Per-II probe log, in probing order.
    pub probes: Vec<IiProbe>,
}

impl ExactOutcome {
    /// II of the found schedule, if any.
    #[must_use]
    pub fn schedule_ii(&self) -> Option<u32> {
        self.schedule.as_ref().map(Schedule::ii)
    }

    /// The exact optimal II when proven, `None` while only bounded.
    #[must_use]
    pub fn exact_ii(&self) -> Option<u32> {
        if self.proved_optimal {
            self.schedule_ii()
        } else {
            None
        }
    }

    /// Relative optimality gap of a heuristic schedule with initiation
    /// interval `heuristic_ii` against the certified lower bound:
    /// `(heuristic − bound) / bound`. Zero means the heuristic is provably
    /// optimal (or matches the best known bound); the value is conservative
    /// — the true gap can only be smaller than or equal to this.
    #[must_use]
    pub fn optimality_gap_of(&self, heuristic_ii: u32) -> f64 {
        let bound = self.lower_bound.max(1);
        (f64::from(heuristic_ii) - f64::from(bound)) / f64::from(bound)
    }

    /// Total search steps across engines: branch-and-bound nodes plus SAT
    /// decisions/conflicts. The portfolio's "strictly fewer total steps"
    /// claims are measured in this unit.
    #[must_use]
    pub fn search_steps(&self) -> u64 {
        self.nodes + self.conflicts
    }
}

impl fmt::Display for ExactOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.schedule, self.proved_optimal) {
            (Some(s), true) => write!(f, "optimal II={} ({} nodes)", s.ii(), self.nodes),
            (Some(s), false) => write!(
                f,
                "II={} (lower bound {}, {} nodes)",
                s.ii(),
                self.lower_bound,
                self.nodes
            ),
            (None, _) => write!(
                f,
                "no schedule found; II >= {} ({} nodes)",
                self.lower_bound, self.nodes
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_relative_to_the_lower_bound() {
        let outcome = ExactOutcome {
            min_ii: 3,
            schedule: None,
            lower_bound: 4,
            proved_optimal: false,
            nodes: 10,
            conflicts: 7,
            backend: SolverKind::Portfolio,
            probes: vec![IiProbe {
                ii: 3,
                verdict: IiVerdict::Infeasible,
                nodes: 10,
                conflicts: 7,
                solver: SolverKind::Sat,
                reused_clauses: 0,
                kept_learned: 0,
            }],
        };
        assert!((outcome.optimality_gap_of(4)).abs() < 1e-12);
        assert!((outcome.optimality_gap_of(6) - 0.5).abs() < 1e-12);
        assert_eq!(outcome.exact_ii(), None);
        assert_eq!(outcome.search_steps(), 17);
        assert!(outcome.to_string().contains("II >= 4"));
        assert_eq!(IiVerdict::Unknown.to_string(), "unknown");
        assert_eq!(SolverKind::BranchAndBound.label(), "bnb");
        assert_eq!(SolverKind::Sat.to_string(), "sat");
        assert_eq!(SolverKind::Portfolio.label(), "portfolio");
    }
}
