//! Tunables of the exact search.

use mvp_core::SchedulerOptions;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactOptions {
    /// How many candidate IIs above the minimum II the outer search probes
    /// before giving up (mirrors [`SchedulerOptions::max_ii_slack`]).
    pub max_ii_slack: u32,
    /// Search-node budget shared by the whole II search: every
    /// (operation, cluster, cycle) placement attempt and every register-bus
    /// reservation attempt consumes one node. When the budget runs out the
    /// outer search stops and reports the certified lower bound accumulated
    /// so far instead of an answer for the undecided IIs.
    pub node_budget: u64,
    /// Search horizon in pipeline stages: operations may start no later than
    /// `max(ASAP) + horizon_stages · II`. The search is exhaustive over
    /// schedules within this span — a hypothetical legal schedule stretched
    /// over more stages than this is outside the model, so "infeasible"
    /// verdicts are relative to the horizon. The default of 8 stages is far
    /// beyond anything the heuristic schedulers produce on the paper's loops
    /// or the fuzz corpus (stage counts there stay in the low single digits).
    pub horizon_stages: u32,
    /// Whether the MaxLive register-pressure rule is enforced (matching the
    /// validator's `RegisterFileOverflow` rule). Disabling it searches a
    /// relaxation whose II is still a valid lower bound for the constrained
    /// problem.
    pub enforce_register_pressure: bool,
    /// Whether the SAT backend keeps one incremental solver alive across the
    /// whole II search (assumption-guarded per-II layers, clause and
    /// learnt-state retention) instead of re-encoding from scratch per
    /// probe. On by default; the environment variable `MVP_SAT_INCREMENTAL`
    /// set to `0` or `false` flips the default off — the escape hatch the
    /// differential suites use to race the two modes.
    pub sat_incremental: bool,
    /// Width of the speculative parallel II ladder: how many consecutive
    /// candidate IIs the outer search probes concurrently per round. `0`
    /// (the default) means *auto* — the portfolio backend uses its
    /// executor's thread count, the single-engine backends stay sequential.
    /// `1` forces the classic sequential search on any backend (the escape
    /// hatch). The environment variable `MVP_EXACT_LADDER` overrides the
    /// default when set to an integer (`MVP_EXACT_LADDER=1` disables
    /// speculation process-wide); [`ExactOptions::with_ladder_width`] beats
    /// both. The ladder's verdict contract: the committed
    /// `ExactOutcome` is identical to the sequential search's whenever the
    /// step budget does not bind — only step/wallclock provenance may vary.
    pub ladder_width: u32,
}

impl ExactOptions {
    /// Default options: 32 IIs of slack, a 1M-node budget (the Figure-3
    /// motivating loop on its Section-3 machine — the hardest pinned case —
    /// needs just under half of it), an 8-stage horizon and register
    /// pressure enforced.
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_ii_slack: 32,
            node_budget: 1_000_000,
            horizon_stages: 8,
            enforce_register_pressure: true,
            sat_incremental: sat_incremental_default(),
            ladder_width: ladder_width_default(),
        }
    }

    /// Returns a copy with the given II search slack.
    #[must_use]
    pub fn with_max_ii_slack(mut self, slack: u32) -> Self {
        self.max_ii_slack = slack;
        self
    }

    /// Returns a copy with the given node budget (at least 1).
    #[must_use]
    pub fn with_node_budget(mut self, budget: u64) -> Self {
        self.node_budget = budget.max(1);
        self
    }

    /// Returns a copy with the given horizon, in pipeline stages (at least 1).
    #[must_use]
    pub fn with_horizon_stages(mut self, stages: u32) -> Self {
        self.horizon_stages = stages.max(1);
        self
    }

    /// Returns a copy with register-pressure enforcement switched on or off.
    #[must_use]
    pub fn with_register_pressure(mut self, enforce: bool) -> Self {
        self.enforce_register_pressure = enforce;
        self
    }

    /// Returns a copy with incremental SAT solving switched on or off.
    #[must_use]
    pub fn with_sat_incremental(mut self, incremental: bool) -> Self {
        self.sat_incremental = incremental;
        self
    }

    /// Returns a copy with the given speculative ladder width (`0` = auto,
    /// `1` = sequential; see [`ExactOptions::ladder_width`]).
    #[must_use]
    pub fn with_ladder_width(mut self, width: u32) -> Self {
        self.ladder_width = width;
        self
    }

    /// Derives exact-search options from the shared [`SchedulerOptions`]
    /// (used when the exact scheduler runs as a [`SchedulerChoice`] inside
    /// the pipeline): the II slack and register-pressure switch carry over,
    /// the budget and horizon keep their defaults. The miss-latency options
    /// are ignored — the exact scheduler always assumes hit latencies.
    ///
    /// [`SchedulerChoice`]: https://docs.rs/multivliw/latest/multivliw/pipeline/enum.SchedulerChoice.html
    #[must_use]
    pub fn from_scheduler_options(options: &SchedulerOptions) -> Self {
        Self::new()
            .with_max_ii_slack(options.max_ii_slack)
            .with_register_pressure(options.enforce_register_pressure)
    }
}

impl Default for ExactOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide incremental-SAT default: on, unless
/// `MVP_SAT_INCREMENTAL` disables it.
fn sat_incremental_default() -> bool {
    match std::env::var("MVP_SAT_INCREMENTAL") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("false")),
        Err(_) => true,
    }
}

/// The process-wide ladder-width default: auto (`0`), unless
/// `MVP_EXACT_LADDER` names an explicit width (`1` = force sequential).
/// A value that does not parse as an integer behaves like an unset
/// variable.
fn ladder_width_default() -> u32 {
    std::env::var("MVP_EXACT_LADDER")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_and_override() {
        let o = ExactOptions::new()
            .with_max_ii_slack(4)
            .with_node_budget(0)
            .with_horizon_stages(0)
            .with_register_pressure(false)
            .with_sat_incremental(false)
            .with_ladder_width(4);
        assert_eq!(o.max_ii_slack, 4);
        assert_eq!(o.node_budget, 1);
        assert_eq!(o.horizon_stages, 1);
        assert!(!o.enforce_register_pressure);
        assert!(!o.sat_incremental);
        assert_eq!(o.ladder_width, 4);
    }

    #[test]
    fn scheduler_options_carry_over() {
        let s = SchedulerOptions::new()
            .with_max_ii_slack(7)
            .with_register_pressure(false);
        let o = ExactOptions::from_scheduler_options(&s);
        assert_eq!(o.max_ii_slack, 7);
        assert!(!o.enforce_register_pressure);
        assert_eq!(o.node_budget, ExactOptions::new().node_budget);
    }
}
