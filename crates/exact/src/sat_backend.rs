//! The CDCL SAT backend for fixed-II probes: the same satisfaction problem
//! the branch-and-bound search solves, lowered to CNF and handed to the
//! workspace's dependency-free solver (`mvp-sat`).
//!
//! # Encoding
//!
//! Per operation the start cycle is **order-encoded** over its static window
//! `[earliest, latest]` (from [`crate::propagate::windows`]): one-hot start
//! variables `s[op][t]` channelled to monotone prefix variables
//! `P[op][k] ⇔ start ≤ earliest + k`, so the dependence difference
//! constraints become single watched clauses instead of quadratic conflict
//! ladders. On multi-cluster machines each operation also carries a one-hot
//! cluster choice restricted to clusters owning a unit of its kind.
//!
//! The validator's rule set maps onto clauses as follows:
//!
//! * **dependences** (`DependenceViolated`): for every edge and every
//!   candidate consumer start `t`, `¬s_dst(t) ∨ (start_src ≤ t − w)` with
//!   `w = latency − II·distance`; cross-cluster data edges add the stronger
//!   `¬s_dst(t) ∨ same ∨ (start_src ≤ t − w − bus_latency)` guarded by the
//!   pair's co-location variable;
//! * **functional units** (`FuOversubscribed`): modulo-row variables
//!   `r[op][ρ]` channelled from the start variables, conjoined with the
//!   cluster choice into occupancy literals counted by a sequential-counter
//!   *at-most-k* per (cluster, unit kind, row) — only for unit kinds that
//!   can actually oversubscribe;
//! * **communication** (`MissingCommunication`, `CommunicationOutsideWindow`,
//!   `BusOverlap`): on finite bus sets every cross-capable producer/consumer
//!   pair gets transfer variables `y[bus][row]`; a cross pair must pick
//!   exactly one (`same ∨ ⋁y` plus at-most-one), the decoded start — the
//!   earliest cycle of the chosen row class after the producer completes —
//!   must meet every parallel edge's deadline, and per (bus, row) the
//!   transfers whose `bus_latency`-cycle span covers the row are mutually
//!   exclusive. Transfers longer than the II force co-location outright;
//!   unbounded bus sets need no clauses at all (any window cycle is free);
//! * **register pressure** (`RegisterFileOverflow`): checked *outside* the
//!   CNF by counterexample-guided refinement — a model whose exact MaxLive
//!   pressure overflows a register file is excluded by a blocking clause
//!   over its start and cluster literals and the solver re-runs on its
//!   learnt state. The paper corpus never triggers a refinement, so the
//!   common path pays nothing for the rule.
//!
//! The **time-shift dominance rule** of the branch-and-bound search carries
//! over as a single clause: some operation with `earliest == 0` starts at
//! cycle 0 (any legal schedule shifts down to such a normalized one).
//!
//! # Incremental solving across II probes
//!
//! In the default *incremental* mode one [`SatProbeSession`] owns one
//! [`Solver`] for the whole outer II search. The II-*independent* structure
//! — cluster one-hots and the co-location biconditionals — is encoded once.
//! Everything II-*specific* (start windows, dependence clauses, modulo FU
//! rows, transfer variables, the anchor) forms a per-II **layer** whose
//! clauses all carry the negation of a fresh *activation literal*
//! `act_ii`; probing an II is [`Solver::solve_under_assumptions`] with
//! `[act_ii]`. Because `act_ii` never occurs positively in any clause,
//! first-UIP resolution can never drop `¬act_ii` from a learnt clause that
//! mentions a layer variable positively — so when the search moves on, the
//! layer is *retired* soundly by the unit `¬act_ii` plus freezing its
//! still-free variables to false at the root. What carries over between
//! probes is the *clausal* state the from-scratch path discards: the
//! learnt-clause database, including the CEGAR MaxLive blocking clauses
//! (which range over per-layer start variables and are auto-satisfied once
//! the layer retires). The branching *heuristic* state — VSIDS activities
//! and saved phases — is deliberately restarted cold at every layer
//! boundary: it describes a placement shape the previous probe refuted,
//! and carrying it over measurably traps the register-pressure CEGAR loop
//! (see [`Encoder::begin_layer`]).
//!
//! The from-scratch path ([`ExactOptions::sat_incremental`] `= false`, env
//! `MVP_SAT_INCREMENTAL=0`) builds a fresh unguarded encoder per probe —
//! clause-for-clause the pre-incremental encoding — and is raced against
//! the incremental path by the differential suites.
//!
//! # Decoding and trust
//!
//! A model is decoded back through the shared incremental constraint kernel
//! ([`PartialSchedule`]) — every placement re-checked by `try_reserve_op`,
//! every transfer by `reserve_transfer_at` — and the assembled schedule is
//! unconditionally re-validated with [`mvp_core::validate_schedule`] (not
//! just in debug builds): a SAT certificate is only trusted after the
//! independent oracle accepts the schedule it decodes to.
//!
//! Budget accounting mirrors the branch-and-bound: one *step* is one solver
//! decision or conflict, drawn from the same shared pool as search nodes.
//! With a persistent solver the session charges per-probe step *deltas*, so
//! the contract is unchanged.

use crate::model::Problem;
use crate::options::ExactOptions;
use crate::propagate::{windows, Windows};
use crate::search::FixedIiOutcome;
use mvp_core::lifetime;
use mvp_ir::{EdgeKind, OpId};
use mvp_resmodel::PartialSchedule;
use mvp_sat::{Lit, SolveResult, Solver, Var};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// The order-encoding query "start(op) ≤ t": a literal inside the window, a
/// constant outside it.
#[derive(Clone, Copy)]
enum Bound {
    True,
    False,
    Is(Lit),
}

impl Bound {
    /// Appends this bound (negated when `positive` is false) to a clause
    /// under construction. Returns `false` when the constant already
    /// satisfies the clause (the caller must drop the whole clause).
    fn push_onto(self, clause: &mut Vec<Lit>, positive: bool) -> bool {
        match (self, positive) {
            (Bound::True, true) | (Bound::False, false) => false,
            (Bound::True, false) | (Bound::False, true) => true,
            (Bound::Is(l), true) => {
                clause.push(l);
                true
            }
            (Bound::Is(l), false) => {
                clause.push(!l);
                true
            }
        }
    }
}

struct Encoder<'a, 'l, 'm> {
    p: &'a Problem<'l, 'm>,
    /// Incremental mode: the II-independent section persists and per-II
    /// layers are guarded by activation literals; `false` is the
    /// from-scratch encoder (one probe, no guards).
    incremental: bool,
    solver: Solver,
    /// One-hot cluster choice per operation (empty on single-cluster
    /// machines, where the choice is void). II-independent.
    clusters: Vec<Vec<Var>>,
    /// Co-location variable per unordered operation pair. II-independent;
    /// pre-materialized in incremental mode so layers allocate no global
    /// variables. A `BTreeMap` keeps clause emission deterministic — clause
    /// order feeds VSIDS, which picks the model.
    same: BTreeMap<(OpId, OpId), Lit>,
    // ---- the current II layer ----
    ii: i64,
    win: Windows,
    /// The layer's activation literal (`None` in from-scratch mode): every
    /// layer clause carries its negation and a probe solves under the
    /// assumption that it holds.
    act: Option<Lit>,
    /// First variable of the current layer: retirement freezes the range
    /// `[layer_base, num_vars)`.
    layer_base: Var,
    /// First variable past the II-independent section (0 in from-scratch
    /// mode): the global prefix `[0, global_base)` is encoded identically
    /// for *any* II, which is what makes cross-solver clause sharing over
    /// it sound (see [`SatProbeSession::export_shared`]).
    global_base: Var,
    /// How many layers this encoder has opened (via [`Encoder::begin_layer`]).
    layers: u32,
    /// One-hot start variables: `starts[op][k]` ⇔ start = `earliest[op] + k`.
    starts: Vec<Vec<Var>>,
    /// Monotone prefix variables: `prefix[op][k]` ⇔ start ≤ `earliest + k`,
    /// for `k` in `0..w−1` (the `≤ latest` query is constant true).
    prefix: Vec<Vec<Var>>,
    /// Transfer variables per ordered cross-capable Data pair:
    /// `y[bus][row]` ⇔ the pair's transfer runs on `bus` starting at a cycle
    /// congruent to `row`. Only populated on finite bus sets with
    /// `1 ≤ bus_latency ≤ II`.
    transfers: BTreeMap<(OpId, OpId), Vec<Vec<Var>>>,
}

impl<'a, 'l, 'm> Encoder<'a, 'l, 'm> {
    /// The from-scratch encoder: one probe, no guards — clause-for-clause
    /// the pre-incremental encoding (and the escape-hatch reference the
    /// differential suites compare against).
    fn scratch(p: &'a Problem<'l, 'm>, ii: u32, win: Windows) -> Self {
        let mut enc = Self::empty(p, false, ii, win);
        enc.encode_starts();
        enc.encode_clusters();
        enc.encode_dependences();
        enc.encode_fu_occupancy();
        enc.encode_transfers();
        enc.encode_anchor();
        enc
    }

    /// The persistent incremental encoder: encodes the II-independent
    /// section (cluster one-hots, co-location biconditionals) and the first
    /// II's guarded layer. Later IIs enter via [`Encoder::begin_layer`].
    fn incremental(p: &'a Problem<'l, 'm>, ii: u32, win: Windows) -> Self {
        let mut enc = Self::empty(p, true, ii, win);
        enc.encode_clusters();
        // Pre-materialize every co-location pair a layer could ask for
        // (all cross-capable Data pairs), so layers allocate no global
        // variables and the retirement freeze range stays layer-pure.
        if p.machine.num_clusters() > 1 && p.bus_latency > 0 {
            let pairs: Vec<(OpId, OpId)> =
                p.l.edges()
                    .iter()
                    .filter(|e| e.kind == EdgeKind::Data && e.src != e.dst)
                    .map(|e| (e.src, e.dst))
                    .collect();
            for (a, b) in pairs {
                let _ = enc.same_lit(a, b);
            }
        }
        enc.global_base = enc.solver.num_vars() as Var;
        let win = enc.win.clone();
        enc.begin_layer(ii, win);
        enc
    }

    fn empty(p: &'a Problem<'l, 'm>, incremental: bool, ii: u32, win: Windows) -> Self {
        Self {
            p,
            incremental,
            solver: Solver::new(),
            clusters: Vec::new(),
            same: BTreeMap::new(),
            ii: i64::from(ii),
            win,
            act: None,
            layer_base: 0,
            global_base: 0,
            layers: 0,
            starts: Vec::new(),
            prefix: Vec::new(),
            transfers: BTreeMap::new(),
        }
    }

    /// Retires the current layer (if any) and encodes a fresh guarded layer
    /// for `ii`. Incremental mode only.
    fn begin_layer(&mut self, ii: u32, win: Windows) {
        debug_assert!(self.incremental);
        // Retire the previous layer: force its activation literal false
        // forever and freeze its still-free variables. Soundness: `act` only
        // ever occurs negatively, so every clause — original or learnt —
        // with a positive occurrence of a layer variable still carries
        // `¬act` and is satisfied at the root from here on.
        if let Some(act) = self.act.take() {
            self.solver.add_clause(&[!act]);
            for v in self.layer_base..self.solver.num_vars() as Var {
                if self.solver.fixed_value(v).is_none() {
                    self.solver.add_clause(&[Lit::negative(v)]);
                }
            }
            debug_assert!(self.solver.is_ok(), "retiring a layer cannot conflict");
        }
        // Restart the branching heuristic cold at every layer boundary:
        // clauses carry over, activities and phases do not. Both kinds of
        // heuristic state earned while refuting the previous II describe a
        // placement shape that *cannot work* — measured on the gap corpus,
        // letting them steer the next probe parks the solver inside a
        // register-pressure-violating family and the CEGAR loop burns
        // hundreds of thousands of steps enumerating it (e.g. 325k steps
        // where a cold heuristic with the same retained clauses takes 223).
        self.solver.reset_activities();
        self.solver.reset_phases();
        self.layers += 1;
        self.ii = i64::from(ii);
        self.win = win;
        self.starts.clear();
        self.prefix.clear();
        self.transfers.clear();
        let act = Lit::positive(self.solver.new_var());
        self.act = Some(act);
        self.layer_base = act.var();
        self.encode_starts();
        self.encode_dependences();
        self.encode_fu_occupancy();
        self.encode_transfers();
        self.encode_anchor();
        // Branch on this layer's start selectors before the session-global
        // cluster and co-location variables. A from-scratch encoding gets
        // this order for free (starts are the lowest-numbered variables);
        // here the globals were allocated first, and without the boost the
        // conflict-free branch order would fix a clustering first and then
        // enumerate start permutations inside it — which sends the
        // register-pressure CEGAR loop through an enormous family of
        // equivalent counterexamples.
        for i in 0..self.starts.len() {
            for k in 0..self.starts[i].len() {
                let v = self.starts[i][k];
                self.solver.boost(v, 1.0);
            }
        }
    }

    /// Adds a layer clause: in incremental mode the negated activation
    /// literal rides along, so the clause only binds while this II's layer
    /// is assumed (and is permanently satisfied once the layer retires).
    fn clause(&mut self, lits: &[Lit]) {
        match self.act {
            None => self.solver.add_clause(lits),
            Some(act) => {
                let mut c = Vec::with_capacity(lits.len() + 1);
                c.extend_from_slice(lits);
                c.push(!act);
                self.solver.add_clause(&c);
            }
        }
    }

    /// The escape literal layer cardinality constraints carry (see
    /// [`Solver::at_most_k_unless`]).
    fn escape(&self) -> Option<Lit> {
        self.act.map(|act| !act)
    }

    fn width(&self, op: OpId) -> usize {
        (self.win.latest[op.index()] - self.win.earliest[op.index()] + 1) as usize
    }

    fn start_lit(&self, op: OpId, t: i64) -> Lit {
        let k = (t - self.win.earliest[op.index()]) as usize;
        Lit::positive(self.starts[op.index()][k])
    }

    /// The "start(op) ≤ t" query against the order encoding.
    fn leq(&self, op: OpId, t: i64) -> Bound {
        let lo = self.win.earliest[op.index()];
        let hi = self.win.latest[op.index()];
        if t < lo {
            Bound::False
        } else if t >= hi {
            Bound::True
        } else {
            Bound::Is(Lit::positive(self.prefix[op.index()][(t - lo) as usize]))
        }
    }

    /// One-hot starts channelled to the monotone prefix chain. The chain
    /// alone forces exactly one start: it has exactly one false→true
    /// boundary, and `s[k] ⇔ P[k] ∧ ¬P[k−1]` pins the start to it.
    fn encode_starts(&mut self) {
        for op in self.p.l.op_ids() {
            let w = self.width(op);
            let s: Vec<Var> = (0..w).map(|_| self.solver.new_var()).collect();
            if w == 1 {
                self.clause(&[Lit::positive(s[0])]);
                self.starts.push(s);
                self.prefix.push(Vec::new());
                continue;
            }
            let pf: Vec<Var> = (0..w - 1).map(|_| self.solver.new_var()).collect();
            for k in 0..w - 2 {
                self.clause(&[Lit::negative(pf[k]), Lit::positive(pf[k + 1])]);
            }
            self.clause(&[Lit::negative(s[0]), Lit::positive(pf[0])]);
            self.clause(&[Lit::negative(pf[0]), Lit::positive(s[0])]);
            for k in 1..w - 1 {
                self.clause(&[Lit::negative(s[k]), Lit::positive(pf[k])]);
                self.clause(&[Lit::negative(s[k]), Lit::negative(pf[k - 1])]);
                self.clause(&[
                    Lit::negative(pf[k]),
                    Lit::positive(pf[k - 1]),
                    Lit::positive(s[k]),
                ]);
            }
            self.clause(&[Lit::negative(s[w - 1]), Lit::negative(pf[w - 2])]);
            self.clause(&[Lit::positive(pf[w - 2]), Lit::positive(s[w - 1])]);
            self.starts.push(s);
            self.prefix.push(pf);
        }
    }

    /// One-hot cluster choice over the clusters owning a unit of the
    /// operation's kind ([`Problem::new`] guarantees at least one exists).
    /// II-independent: encoded once per solver, never guarded.
    fn encode_clusters(&mut self) {
        let nc = self.p.machine.num_clusters();
        if nc <= 1 {
            return;
        }
        for op in self.p.l.op_ids() {
            let kind = self.p.fu_kind[op.index()].index();
            let c: Vec<Var> = (0..nc).map(|_| self.solver.new_var()).collect();
            let allowed: Vec<Lit> = (0..nc)
                .filter(|&k| self.p.fu_count[k][kind] > 0)
                .map(|k| Lit::positive(c[k]))
                .collect();
            self.solver.exactly_one(&allowed);
            for (k, &v) in c.iter().enumerate() {
                if self.p.fu_count[k][kind] == 0 {
                    self.solver.add_clause(&[Lit::negative(v)]);
                }
            }
            self.clusters.push(c);
        }
    }

    /// The co-location variable of an unordered pair, biconditionally tied
    /// to the cluster choices on first use. II-independent (and therefore
    /// unguarded); incremental mode pre-materializes every pair up front.
    fn same_lit(&mut self, a: OpId, b: OpId) -> Lit {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&l) = self.same.get(&key) {
            return l;
        }
        debug_assert!(
            self.act.is_none(),
            "incremental layers must not allocate global co-location vars"
        );
        let sm = Lit::positive(self.solver.new_var());
        for k in 0..self.p.machine.num_clusters() {
            let ca = Lit::positive(self.clusters[key.0.index()][k]);
            let cb = Lit::positive(self.clusters[key.1.index()][k]);
            self.solver.add_clause(&[!ca, !cb, sm]);
            self.solver.add_clause(&[!sm, !ca, cb]);
        }
        self.same.insert(key, sm);
        sm
    }

    /// Dependence difference constraints, solved for the producer via the
    /// prefix chain: per consumer start `t`, the producer must have started
    /// early enough. Self-loop edges constrain the II alone and are already
    /// discharged by window propagation (a violated one is a positive
    /// cycle).
    fn encode_dependences(&mut self) {
        let multi = self.p.machine.num_clusters() > 1;
        let bus_lat = i64::from(self.p.bus_latency);
        let ii = u32::try_from(self.ii).expect("probe IIs fit u32");
        for e in self.p.l.edges() {
            if e.src == e.dst {
                continue;
            }
            let w_same = self.p.edge_weight(e, ii);
            let cross_pays_bus = multi && e.kind == EdgeKind::Data && bus_lat > 0;
            let sm = cross_pays_bus.then(|| self.same_lit(e.src, e.dst));
            let (lo, hi) = (
                self.win.earliest[e.dst.index()],
                self.win.latest[e.dst.index()],
            );
            for t in lo..=hi {
                let not_here = !self.start_lit(e.dst, t);
                // Same-cluster bound (the weaker one; valid unconditionally).
                let mut clause = vec![not_here];
                if self.leq(e.src, t - w_same).push_onto(&mut clause, true) {
                    self.clause(&clause);
                }
                // Cross-cluster bound, guarded by the co-location variable.
                if let Some(sm) = sm {
                    let mut clause = vec![not_here, sm];
                    if self
                        .leq(e.src, t - w_same - bus_lat)
                        .push_onto(&mut clause, true)
                    {
                        self.clause(&clause);
                    }
                }
            }
        }
    }

    /// Modulo functional-unit occupancy: at most `fu_count` operations of a
    /// kind per (cluster, row). Only kinds that can oversubscribe somewhere
    /// get row variables and counters at all.
    fn encode_fu_occupancy(&mut self) {
        let nc = self.p.machine.num_clusters();
        let rows = self.ii as usize;
        for kind in 0..3 {
            let count = self.p.ops_per_kind[kind];
            let caps: Vec<usize> = (0..nc).map(|k| self.p.fu_count[k][kind]).collect();
            if !caps.iter().any(|&cap| cap > 0 && cap < count) {
                continue;
            }
            let ops: Vec<OpId> = self
                .p
                .l
                .op_ids()
                .filter(|op| self.p.fu_kind[op.index()].index() == kind)
                .collect();
            // Row variables channelled both ways: `s(t) → r[t mod II]` and
            // `r[ρ] → ⋁ s(t ≡ ρ)` (a spuriously-true row would over-count).
            let mut row_vars: BTreeMap<OpId, Vec<Var>> = BTreeMap::new();
            for &op in &ops {
                let r: Vec<Var> = (0..rows).map(|_| self.solver.new_var()).collect();
                let lo = self.win.earliest[op.index()];
                let hi = self.win.latest[op.index()];
                for t in lo..=hi {
                    let rho = t.rem_euclid(self.ii) as usize;
                    self.clause(&[!self.start_lit(op, t), Lit::positive(r[rho])]);
                }
                for (rho, &rv) in r.iter().enumerate() {
                    let mut clause = vec![Lit::negative(rv)];
                    clause.extend(
                        (lo..=hi)
                            .filter(|t| t.rem_euclid(self.ii) as usize == rho)
                            .map(|t| self.start_lit(op, t)),
                    );
                    self.clause(&clause);
                }
                row_vars.insert(op, r);
            }
            for (k, &cap) in caps.iter().enumerate() {
                if cap == 0 || cap >= count {
                    continue;
                }
                // `rho` indexes every op's row-variable vector, not one
                // slice, so a range loop is the natural shape here.
                #[allow(clippy::needless_range_loop)]
                for rho in 0..rows {
                    // Occupancy literal per op: `cluster ∧ row → z` (one
                    // directional suffices — the solver only sets z when
                    // forced, and the counter only reads it).
                    let zs: Vec<Lit> = ops
                        .iter()
                        .map(|&op| {
                            let z = Lit::positive(self.solver.new_var());
                            let r = Lit::positive(row_vars[&op][rho]);
                            if nc > 1 {
                                let c = Lit::positive(self.clusters[op.index()][k]);
                                self.clause(&[!c, !r, z]);
                            } else {
                                self.clause(&[!r, z]);
                            }
                            z
                        })
                        .collect();
                    self.solver.at_most_k_unless(&zs, cap, self.escape());
                }
            }
        }
    }

    /// Cross-cluster transfers on finite bus sets: pick one (bus, row) per
    /// cross pair, meet every parallel edge's window, and never overlap on a
    /// (bus, row). Unbounded bus sets — and zero-latency buses — admit any
    /// window cycle, so the dependence clauses already say everything.
    fn encode_transfers(&mut self) {
        if self.p.machine.num_clusters() <= 1 {
            return;
        }
        let Some(num_buses) = self.p.num_buses else {
            return;
        };
        let bus_lat = i64::from(self.p.bus_latency);
        if bus_lat == 0 {
            return;
        }
        let rows = self.ii as usize;

        let mut pair_edges: BTreeMap<(OpId, OpId), Vec<u32>> = BTreeMap::new();
        for e in self.p.l.edges() {
            if e.kind == EdgeKind::Data && e.src != e.dst {
                pair_edges
                    .entry((e.src, e.dst))
                    .or_default()
                    .push(e.distance);
            }
        }

        if bus_lat > self.ii {
            // A transfer overlaps its own next-iteration instance: every
            // Data pair must co-locate (the kernel's `reserve_transfer_*`
            // reject such transfers outright). II-dependent, so guarded.
            for &(a, b) in pair_edges.keys().collect::<Vec<_>>() {
                let sm = self.same_lit(a, b);
                self.clause(&[sm]);
            }
            return;
        }

        // Bus occupancy groups: the y literals whose span covers (bus, row).
        let mut covering: Vec<Vec<Vec<Lit>>> = vec![vec![Vec::new(); rows]; num_buses];

        for (&(a, b), distances) in &pair_edges {
            let sm = self.same_lit(a, b);
            let y: Vec<Vec<Var>> = (0..num_buses)
                .map(|_| (0..rows).map(|_| self.solver.new_var()).collect())
                .collect();
            let all: Vec<Lit> = y.iter().flatten().map(|&v| Lit::positive(v)).collect();
            // A cross pair books exactly one transfer; a co-located pair none.
            let mut coverage = vec![sm];
            coverage.extend(&all);
            self.clause(&coverage);
            self.solver.at_most_one_unless(&all, self.escape());
            for &l in &all {
                self.clause(&[!l, !sm]);
            }
            for (bus, per_row) in y.iter().enumerate() {
                for (rho, &v) in per_row.iter().enumerate() {
                    for o in 0..bus_lat as usize {
                        covering[bus][(rho + o) % rows].push(Lit::positive(v));
                    }
                }
            }
            // Row selectors factor the window clauses over the buses.
            let yr: Vec<Lit> = (0..rows)
                .map(|_| Lit::positive(self.solver.new_var()))
                .collect();
            for per_row in &y {
                for (rho, &v) in per_row.iter().enumerate() {
                    self.clause(&[Lit::negative(v), yr[rho]]);
                }
            }
            // Window clauses: with the producer at `t1`, the decoded start of
            // row class ρ is the earliest congruent cycle after completion;
            // it must meet every parallel edge's consumer deadline.
            let lat_a = i64::from(self.p.latency[a.index()]);
            let (lo_a, hi_a) = (self.win.earliest[a.index()], self.win.latest[a.index()]);
            for (rho, &yr_l) in yr.iter().enumerate() {
                for t1 in lo_a..=hi_a {
                    let lo1 = t1 + lat_a;
                    let sigma = lo1 + (rho as i64 - lo1).rem_euclid(self.ii);
                    for &d in distances {
                        // Need start(b) ≥ σ + bus_lat − II·d.
                        let deadline = sigma + bus_lat - self.ii * i64::from(d) - 1;
                        let mut clause = vec![!yr_l, !self.start_lit(a, t1)];
                        if self.leq(b, deadline).push_onto(&mut clause, false) {
                            self.clause(&clause);
                        }
                    }
                }
            }
            self.transfers.insert((a, b), y);
        }

        for per_bus in &covering {
            for group in per_bus {
                self.solver.at_most_one_unless(group, self.escape());
            }
        }
    }

    /// Time-shift dominance: any legal schedule shifts down (rotating all
    /// modulo rows in lockstep) until its minimum start cycle is 0, and that
    /// minimum must land on an operation whose ASAP bound is 0 — the set is
    /// never empty, because the longest-path closure always leaves some
    /// path-source at its base bound.
    fn encode_anchor(&mut self) {
        let clause: Vec<Lit> = self
            .p
            .l
            .op_ids()
            .filter(|op| self.win.earliest[op.index()] == 0)
            .map(|op| self.start_lit(op, 0))
            .collect();
        self.clause(&clause);
    }

    /// Decodes the current model through the shared constraint kernel,
    /// re-checking every placement and transfer against the same rules the
    /// branch-and-bound enforces incrementally.
    fn decode(&self) -> PartialSchedule<'a, 'l, 'm> {
        let mut ps = PartialSchedule::new(self.p.model(), self.ii as u32);
        for op in self.p.l.op_ids() {
            let t = self.decoded_start(op);
            let cluster = self.decoded_cluster(op);
            ps.try_reserve_op(op, cluster, t, self.p.latency[op.index()], false, 0)
                .expect("the CNF model satisfies the functional-unit rules");
        }
        for op in self.p.l.op_ids() {
            // Each cross pair appears once from the consumer side.
            for pair in ps.transfer_pairs(op) {
                if pair.dst != op {
                    continue;
                }
                let (start, bus) = match self.transfers.get(&(pair.src, pair.dst)) {
                    None => (pair.lo, 0), // unbounded or zero-latency buses
                    Some(y) => {
                        let (bus, rho) = y
                            .iter()
                            .enumerate()
                            .flat_map(|(bus, per_row)| {
                                per_row
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, &v)| self.solver.value(v))
                                    .map(move |(rho, _)| (bus, rho))
                            })
                            .next()
                            .expect("cross pairs select a transfer");
                        let sigma = pair.lo + (rho as i64 - pair.lo).rem_euclid(self.ii);
                        (sigma, bus)
                    }
                };
                ps.reserve_transfer_at(pair.src, pair.dst, pair.from, pair.to, start, bus, 0)
                    .expect("the CNF model satisfies the bus rules");
            }
        }
        assert!(
            ps.all_cross_edges_covered(),
            "decoded SAT models cover every cross-cluster edge"
        );
        ps
    }

    fn decoded_start(&self, op: OpId) -> i64 {
        let k = self.starts[op.index()]
            .iter()
            .position(|&v| self.solver.value(v))
            .expect("the start one-hot selects a cycle");
        self.win.earliest[op.index()] + k as i64
    }

    fn decoded_cluster(&self, op: OpId) -> usize {
        if self.clusters.is_empty() {
            return 0;
        }
        self.clusters[op.index()]
            .iter()
            .position(|&v| self.solver.value(v))
            .expect("the cluster one-hot selects a cluster")
    }

    /// Excludes the current model's (start, cluster) combination — the
    /// counterexample-guided refinement step for register pressure. The
    /// blocking clause is deliberately unguarded: it ranges over this
    /// layer's start variables (auto-satisfied once the layer retires) and
    /// the shared cluster variables, so it keeps pruning CEGAR-refuted
    /// shapes for the rest of the session.
    fn block_current_model(&mut self) {
        let mut clause: Vec<Lit> = self
            .p
            .l
            .op_ids()
            .map(|op| !self.start_lit(op, self.decoded_start(op)))
            .collect();
        if !self.clusters.is_empty() {
            clause.extend(
                self.p
                    .l
                    .op_ids()
                    .map(|op| Lit::negative(self.clusters[op.index()][self.decoded_cluster(op)])),
            );
        }
        self.solver.add_clause(&clause);
    }
}

/// Per-probe clause-retention provenance, surfaced through
/// [`crate::outcome::IiProbe`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SatProbeStats {
    /// Clauses already in the solver when the probe began (0 for the first
    /// probe of a session and for every from-scratch probe).
    pub reused_clauses: u64,
    /// Learnt clauses retained from earlier probes of the same session.
    pub kept_learned: u64,
}

/// One SAT backend session spanning a whole outer II search: in incremental
/// mode (the default) a single [`Solver`] persists across probes (see the
/// [module docs](self)); in from-scratch mode each probe builds a fresh
/// encoder, reproducing the pre-incremental behaviour exactly.
pub(crate) struct SatProbeSession<'a, 'l, 'm> {
    p: &'a Problem<'l, 'm>,
    incremental: bool,
    enc: Option<Encoder<'a, 'l, 'm>>,
}

impl<'a, 'l, 'm> SatProbeSession<'a, 'l, 'm> {
    pub(crate) fn new(p: &'a Problem<'l, 'm>, incremental: bool) -> Self {
        Self {
            p,
            incremental,
            enc: None,
        }
    }

    /// Runs one fixed-II probe: certificates first (resource counts,
    /// positive dependence cycles — shared with the branch-and-bound), then
    /// CNF encoding, CDCL search and kernel-checked decoding. `steps_used`
    /// is incremented by the solver steps (decisions + conflicts) the probe
    /// consumed; the budget and cancellation contracts match
    /// [`crate::search::solve_fixed_ii`].
    pub(crate) fn probe(
        &mut self,
        ii: u32,
        options: &ExactOptions,
        steps_used: &mut u64,
        cancel: Option<&AtomicBool>,
    ) -> (FixedIiOutcome, SatProbeStats) {
        let (outcome, stats, _) = self.probe_seeded(ii, options, steps_used, cancel, &[]);
        (outcome, stats)
    }

    /// [`SatProbeSession::probe`] with a shared clause pool: a *fresh*
    /// incremental session additionally seeds its solver with the
    /// global-prefix clauses of `pool` before solving (clauses mentioning
    /// any per-layer variable are filtered out — only the II-independent
    /// prefix is numbered identically across sessions). The third return
    /// value is the number of clauses imported.
    ///
    /// The speculative II ladder probes through this entry point: every
    /// rung gets a private single-layer session, and the pool carries the
    /// short learnt clauses retired rungs exported via
    /// [`SatProbeSession::export_shared`].
    pub(crate) fn probe_seeded(
        &mut self,
        ii: u32,
        options: &ExactOptions,
        steps_used: &mut u64,
        cancel: Option<&AtomicBool>,
        pool: &[Vec<Lit>],
    ) -> (FixedIiOutcome, SatProbeStats, u64) {
        let p = self.p;
        if ii == 0 || p.resource_infeasible(ii) {
            return (FixedIiOutcome::Infeasible, SatProbeStats::default(), 0);
        }
        let Some(win) = windows(p, ii, |asap| p.horizon(asap, ii, options)) else {
            return (FixedIiOutcome::Infeasible, SatProbeStats::default(), 0);
        };
        let mut stats = SatProbeStats::default();
        let mut imported = 0u64;
        if self.incremental {
            let enc = match self.enc.as_mut() {
                Some(enc) => {
                    stats.reused_clauses = enc.solver.num_clauses() as u64;
                    stats.kept_learned = enc.solver.learned_clauses();
                    enc.begin_layer(ii, win);
                    enc
                }
                None => {
                    let mut enc = Encoder::incremental(p, ii, win);
                    if !pool.is_empty() {
                        let global = enc.global_base;
                        let shared: Vec<Vec<Lit>> = pool
                            .iter()
                            .filter(|c| !c.is_empty() && c.iter().all(|l| l.var() < global))
                            .cloned()
                            .collect();
                        imported = enc.solver.import_clauses(&shared);
                    }
                    self.enc = Some(enc);
                    self.enc.as_mut().expect("just inserted")
                }
            };
            mvp_trace::counter_handle!("sat.assumption_probes", Stable).incr();
            mvp_trace::counter_handle!("sat.kept_learned", Stable).add(stats.kept_learned);
            mvp_trace::counter_handle!("sat.reencoded_clauses", Stable)
                .add(enc.solver.num_clauses() as u64 - stats.reused_clauses);
        } else {
            let enc = Encoder::scratch(p, ii, win);
            mvp_trace::counter_handle!("sat.reencoded_clauses", Stable)
                .add(enc.solver.num_clauses() as u64);
            self.enc = Some(enc);
        }
        {
            let enc = self.enc.as_ref().expect("encoder initialised above");
            mvp_trace::counter_handle!("exact.sat.encoded_vars", Stable)
                .add(enc.solver.num_vars() as u64);
            mvp_trace::counter_handle!("exact.sat.encoded_clauses", Stable)
                .add(enc.solver.num_clauses() as u64);
        }
        let outcome = self.solve_layer(ii, options, steps_used, cancel);
        (outcome, stats, imported)
    }

    /// Re-enters the budget/CEGAR loop of the current layer with a fresh
    /// step budget, without re-encoding anything: the solver keeps every
    /// clause it has learnt so far, so an interleaving caller (the
    /// ladder's dovetailed portfolio rung) can hand the engine its budget
    /// in instalments and still pay the total cost of one continuous
    /// solve. `ii` must be the II of the layer the last
    /// [`SatProbeSession::probe_seeded`] call encoded.
    pub(crate) fn resume(
        &mut self,
        ii: u32,
        options: &ExactOptions,
        steps_used: &mut u64,
        cancel: Option<&AtomicBool>,
    ) -> FixedIiOutcome {
        if self.enc.is_none() {
            // The first probe decided before encoding (structurally
            // infeasible II); there is nothing to resume.
            return FixedIiOutcome::Infeasible;
        }
        self.solve_layer(ii, options, steps_used, cancel)
    }

    /// The budget/CEGAR loop of the current layer: repeated
    /// assumption-solves under the layer's activation literals, with
    /// MaxLive refinement between models, until a verdict, the step
    /// budget, or cancellation.
    fn solve_layer(
        &mut self,
        ii: u32,
        options: &ExactOptions,
        steps_used: &mut u64,
        cancel: Option<&AtomicBool>,
    ) -> FixedIiOutcome {
        let p = self.p;
        let enc = self.enc.as_mut().expect("encoder initialised by probe");
        let _span = mvp_trace::span!("exact.sat.probe", ii = ii, vars = enc.solver.num_vars());
        let steps0 = enc.solver.steps();
        let assumptions: Vec<Lit> = enc.act.into_iter().collect();
        let outcome = loop {
            let spent = enc.solver.steps() - steps0;
            let remaining = options.node_budget.saturating_sub(spent);
            if remaining == 0 {
                break FixedIiOutcome::Budget;
            }
            match enc
                .solver
                .solve_under_assumptions(&assumptions, Some(remaining), cancel)
            {
                SolveResult::Unsat => break FixedIiOutcome::Infeasible,
                SolveResult::Budget => break FixedIiOutcome::Budget,
                SolveResult::Cancelled => break FixedIiOutcome::Cancelled,
                SolveResult::Sat => {}
            }
            let ps = enc.decode();
            let ops = ps.placed_ops();
            if options.enforce_register_pressure {
                let pressure = lifetime::register_pressure(p.l, &ops, ii, p.machine.num_clusters());
                if pressure
                    .iter()
                    .zip(&p.register_file)
                    .any(|(&used, &cap)| used > cap)
                {
                    enc.block_current_model();
                    mvp_trace::counter_handle!("exact.sat.cegar_rounds", Stable).incr();
                    mvp_trace::instant!("exact.sat.cegar_round", ii = ii);
                    // A cancelled probe (a poisoned portfolio rival, a
                    // superseded ladder rung) aborts between refinement
                    // rounds instead of paying for another full
                    // re-price/block cycle.
                    if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                        break FixedIiOutcome::Cancelled;
                    }
                    continue;
                }
            }
            let comms = ps.communications();
            // A SAT certificate is only as good as the schedule it decodes
            // to: re-validate with the independent oracle in every build.
            let pressure = lifetime::register_pressure(p.l, &ops, ii, p.machine.num_clusters());
            let schedule = mvp_core::Schedule::new(
                p.machine.name.clone(),
                "exact-sat",
                ii,
                ops.clone(),
                comms.clone(),
                pressure,
            );
            let violations = mvp_core::validate_schedule(p.l, p.machine, &schedule);
            assert!(
                violations.is_empty(),
                "the SAT backend decoded an illegal schedule for {}: {violations:?}",
                p.l.name(),
            );
            break FixedIiOutcome::Feasible { ops, comms };
        };
        *steps_used += enc.solver.steps() - steps0;
        outcome
    }

    /// Exports this session's short global-prefix learnt clauses (at most
    /// `cap` clauses of at most `max_len` literals each), for seeding a
    /// *different* session's solver via [`SatProbeSession::probe_seeded`].
    ///
    /// # Soundness
    ///
    /// Only **single-layer incremental** sessions export; everything else
    /// returns an empty set. In such a session every clause mentioning a
    /// layer variable positively carries the layer's negated activation
    /// literal (originals by construction; learnt clauses by induction —
    /// resolving a positive layer literal away must pass through a clause
    /// that carries `¬act`, and `¬act` itself can never be resolved away
    /// because no clause contains `act` positively). A learnt clause over
    /// global variables only is therefore derived from the global section
    /// alone — plus root-level facts, which in a single-layer session are
    /// themselves global consequences — so it is implied by the global
    /// clauses and sound in any solver sharing that prefix. A *multi*-layer
    /// session breaks the argument: retiring a layer freezes its variables
    /// with unguarded root units, and first-UIP learning silently drops
    /// root-false literals, leaving global-only clauses conditional on
    /// those arbitrary freezes.
    pub(crate) fn export_shared(&self, max_len: usize, cap: usize) -> Vec<Vec<Lit>> {
        let Some(enc) = self.enc.as_ref() else {
            return Vec::new();
        };
        if !self.incremental || enc.layers != 1 {
            return Vec::new();
        }
        let global = enc.global_base;
        enc.solver
            .export_learned(max_len)
            .into_iter()
            .filter(|c| c.iter().all(|l| l.var() < global))
            .take(cap)
            .collect()
    }
}

/// One-shot convenience wrapper: a single probe on a fresh
/// [`SatProbeSession`] honouring [`ExactOptions::sat_incremental`]. The
/// scheduler probes through a persistent session instead; this wrapper
/// backs the unit tests below.
#[cfg(test)]
pub(crate) fn solve_fixed_ii_sat(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    steps_used: &mut u64,
    cancel: Option<&AtomicBool>,
) -> FixedIiOutcome {
    SatProbeSession::new(p, options.sat_incremental)
        .probe(ii, options, steps_used, cancel)
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;
    use mvp_machine::presets;

    fn probe(l: &Loop, machine: &mvp_machine::MachineConfig, ii: u32) -> FixedIiOutcome {
        let p = Problem::new(l, machine).unwrap();
        let mut steps = 0;
        solve_fixed_ii_sat(&p, ii, &ExactOptions::new(), &mut steps, None)
    }

    /// The same probe through a from-scratch (unguarded) session.
    fn probe_scratch(l: &Loop, machine: &mvp_machine::MachineConfig, ii: u32) -> FixedIiOutcome {
        let p = Problem::new(l, machine).unwrap();
        let mut steps = 0;
        let options = ExactOptions::new().with_sat_incremental(false);
        solve_fixed_ii_sat(&p, ii, &options, &mut steps, None)
    }

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn feasible_probes_return_placements_for_every_op() {
        let l = chain();
        let machine = presets::two_cluster();
        for outcome in [probe(&l, &machine, 1), probe_scratch(&l, &machine, 1)] {
            match outcome {
                FixedIiOutcome::Feasible { ops, .. } => {
                    assert_eq!(ops.len(), 3);
                    assert!(ops.iter().all(|p| p.cluster < 2));
                    assert!(ops.iter().all(|p| !p.miss_scheduled));
                }
                other => panic!("expected feasible at II=1, got {other:?}"),
            }
        }
    }

    #[test]
    fn verdicts_match_the_branch_and_bound_on_recurrences() {
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        assert!(matches!(probe(&l, &machine, 3), FixedIiOutcome::Infeasible));
        assert!(matches!(
            probe(&l, &machine, 4),
            FixedIiOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn resource_bound_is_certified_infeasible() {
        let mut b = Loop::builder("wide");
        for k in 0..5 {
            b.fp_op(format!("F{k}"));
        }
        let l = b.build().unwrap();
        let machine = presets::four_cluster();
        assert!(matches!(probe(&l, &machine, 1), FixedIiOutcome::Infeasible));
        assert!(matches!(
            probe(&l, &machine, 2),
            FixedIiOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn cross_cluster_recurrences_account_for_the_bus_latency() {
        // The same "bus-rec" case the branch-and-bound pins: the recurrence
        // only fits co-located, so the encoder's guarded cross-cluster
        // clauses and transfer windows must agree with the kernel.
        let mut b = Loop::builder("bus-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::motivating_example_machine();
        assert!(matches!(probe(&l, &machine, 3), FixedIiOutcome::Infeasible));
        match probe(&l, &machine, 4) {
            FixedIiOutcome::Feasible { ops, comms } => {
                assert_eq!(ops[0].cluster, ops[1].cluster);
                assert!(comms.is_empty());
            }
            other => panic!("expected feasible at II=4, got {other:?}"),
        }
    }

    #[test]
    fn tiny_budgets_report_budget_not_infeasible() {
        // A formula that needs at least one decision: II=2 on the chain has
        // real windows, so a 1-step budget trips before any verdict.
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let mut steps = 0;
        let out = solve_fixed_ii_sat(
            &p,
            2,
            &ExactOptions::new().with_node_budget(1),
            &mut steps,
            None,
        );
        assert!(matches!(out, FixedIiOutcome::Budget), "{out:?}");
        assert!(steps >= 1);
    }

    #[test]
    fn a_raised_poison_flag_cancels_the_probe() {
        use std::sync::atomic::AtomicBool;
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let cancel = AtomicBool::new(true);
        let mut steps = 0;
        let out = solve_fixed_ii_sat(&p, 2, &ExactOptions::new(), &mut steps, Some(&cancel));
        assert!(matches!(out, FixedIiOutcome::Cancelled), "{out:?}");
    }

    #[test]
    fn register_pressure_refinement_rejects_overflowing_models() {
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        // One cluster with a 1-register file: X's value must die as fast as
        // possible; a long X→Y lifetime overflows and the refinement loop
        // must steer the solver to the tight placement (or prove none fits).
        let machine = MachineConfig::builder("tiny-regs")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 2, 1, CacheGeometry::direct_mapped(1024)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        let mut b = Loop::builder("tight");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        let l = b.build().unwrap();
        match probe(&l, &machine, 1) {
            FixedIiOutcome::Feasible { ops, .. } => {
                // Lifetime exactly the latency: 2 cycles at II=1 needs 2
                // registers > 1, so II=1 must actually be infeasible — reaching
                // here with a validated schedule would mean the refinement
                // leaked an overflowing model.
                panic!("II=1 cannot satisfy the 1-register file, got {ops:?}");
            }
            FixedIiOutcome::Infeasible => {}
            other => panic!("unexpected {other:?}"),
        }
        // II=2 packs the lifetime into ceil(2/2) = 1 register.
        assert!(matches!(
            probe(&l, &machine, 2),
            FixedIiOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn sessions_reuse_clauses_and_learnt_state_across_probes() {
        // X→Y (d0), Y→X (d2): RecMII = 2, but the II=2 refutation needs
        // actual CNF search (windows and resource counts both pass), so the
        // session builds a layer there; the II=3 probe must retire it,
        // reuse the solver, and report the retention provenance.
        let mut b = Loop::builder("slack-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 2);
        let l = b.build().unwrap();
        let machine = presets::motivating_example_machine();
        let p = Problem::new(&l, &machine).unwrap();
        let mut session = SatProbeSession::new(&p, true);
        let mut steps = 0;
        let (first, first_stats) = session.probe(2, &ExactOptions::new(), &mut steps, None);
        assert!(matches!(first, FixedIiOutcome::Infeasible), "{first:?}");
        assert_eq!(first_stats.reused_clauses, 0, "first probe starts fresh");
        let (second, second_stats) = session.probe(3, &ExactOptions::new(), &mut steps, None);
        assert!(matches!(second, FixedIiOutcome::Feasible { .. }));
        assert!(
            second_stats.reused_clauses > 0,
            "the II=3 probe must reuse the II=2 instance's clauses"
        );
    }

    #[test]
    fn shared_clauses_flow_between_single_layer_sessions_without_changing_verdicts() {
        // The ladder pattern: one single-layer session per II, the earlier
        // rung's exports seeding the later rung's solver. Verdicts must be
        // unaffected, and only global-prefix clauses may travel.
        let mut b = Loop::builder("slack-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 2);
        let l = b.build().unwrap();
        let machine = presets::motivating_example_machine();
        let p = Problem::new(&l, &machine).unwrap();

        let mut first = SatProbeSession::new(&p, true);
        let mut steps = 0;
        let (v2, _) = first.probe(2, &ExactOptions::new(), &mut steps, None);
        assert!(matches!(v2, FixedIiOutcome::Infeasible), "{v2:?}");
        let pool = first.export_shared(4, 256);
        assert!(
            pool.iter().all(|c| (2..=4).contains(&c.len())),
            "exports are short attached clauses: {pool:?}"
        );

        let mut second = SatProbeSession::new(&p, true);
        let mut steps = 0;
        let (v3, _, imported) =
            second.probe_seeded(3, &ExactOptions::new(), &mut steps, None, &pool);
        assert!(matches!(v3, FixedIiOutcome::Feasible { .. }), "{v3:?}");
        assert_eq!(
            imported,
            pool.len() as u64,
            "prefix-only pools import whole"
        );

        // A multi-layer session refuses to export (soundness guard).
        let mut multi = SatProbeSession::new(&p, true);
        let mut steps = 0;
        let _ = multi.probe(2, &ExactOptions::new(), &mut steps, None);
        let _ = multi.probe(3, &ExactOptions::new(), &mut steps, None);
        assert!(multi.export_shared(4, 256).is_empty());

        // From-scratch sessions never export either (their variable
        // numbering puts starts first, so no shared prefix exists).
        let mut scratch = SatProbeSession::new(&p, false);
        let mut steps = 0;
        let _ = scratch.probe(2, &ExactOptions::new(), &mut steps, None);
        assert!(scratch.export_shared(4, 256).is_empty());
    }

    #[test]
    fn incremental_and_scratch_sessions_agree_probe_by_probe() {
        let loops = [chain()];
        for l in &loops {
            for machine in [
                presets::unified(),
                presets::two_cluster(),
                presets::motivating_example_machine(),
            ] {
                let p = Problem::new(l, &machine).unwrap();
                let mut inc = SatProbeSession::new(&p, true);
                let mut scr = SatProbeSession::new(&p, false);
                for ii in 1..=4u32 {
                    let (mut si, mut ss) = (0, 0);
                    let (a, _) = inc.probe(ii, &ExactOptions::new(), &mut si, None);
                    let (b, _) = scr.probe(ii, &ExactOptions::new(), &mut ss, None);
                    assert_eq!(
                        matches!(a, FixedIiOutcome::Feasible { .. }),
                        matches!(b, FixedIiOutcome::Feasible { .. }),
                        "II={ii} on {} for {}",
                        machine.name,
                        l.name(),
                    );
                    assert_eq!(
                        matches!(a, FixedIiOutcome::Infeasible),
                        matches!(b, FixedIiOutcome::Infeasible),
                        "II={ii} on {} for {}",
                        machine.name,
                        l.name(),
                    );
                }
            }
        }
    }
}
