//! The CDCL SAT backend for fixed-II probes: the same satisfaction problem
//! the branch-and-bound search solves, lowered to CNF and handed to the
//! workspace's dependency-free solver (`mvp-sat`).
//!
//! # Encoding
//!
//! Per operation the start cycle is **order-encoded** over its static window
//! `[earliest, latest]` (from [`crate::propagate::windows`]): one-hot start
//! variables `s[op][t]` channelled to monotone prefix variables
//! `P[op][k] ⇔ start ≤ earliest + k`, so the dependence difference
//! constraints become single watched clauses instead of quadratic conflict
//! ladders. On multi-cluster machines each operation also carries a one-hot
//! cluster choice restricted to clusters owning a unit of its kind.
//!
//! The validator's rule set maps onto clauses as follows:
//!
//! * **dependences** (`DependenceViolated`): for every edge and every
//!   candidate consumer start `t`, `¬s_dst(t) ∨ (start_src ≤ t − w)` with
//!   `w = latency − II·distance`; cross-cluster data edges add the stronger
//!   `¬s_dst(t) ∨ same ∨ (start_src ≤ t − w − bus_latency)` guarded by the
//!   pair's co-location variable;
//! * **functional units** (`FuOversubscribed`): modulo-row variables
//!   `r[op][ρ]` channelled from the start variables, conjoined with the
//!   cluster choice into occupancy literals counted by a sequential-counter
//!   *at-most-k* per (cluster, unit kind, row) — only for unit kinds that
//!   can actually oversubscribe;
//! * **communication** (`MissingCommunication`, `CommunicationOutsideWindow`,
//!   `BusOverlap`): on finite bus sets every cross-capable producer/consumer
//!   pair gets transfer variables `y[bus][row]`; a cross pair must pick
//!   exactly one (`same ∨ ⋁y` plus at-most-one), the decoded start — the
//!   earliest cycle of the chosen row class after the producer completes —
//!   must meet every parallel edge's deadline, and per (bus, row) the
//!   transfers whose `bus_latency`-cycle span covers the row are mutually
//!   exclusive. Transfers longer than the II force co-location outright;
//!   unbounded bus sets need no clauses at all (any window cycle is free);
//! * **register pressure** (`RegisterFileOverflow`): checked *outside* the
//!   CNF by counterexample-guided refinement — a model whose exact MaxLive
//!   pressure overflows a register file is excluded by a blocking clause
//!   over its start and cluster literals and the solver re-runs on its
//!   learnt state. The paper corpus never triggers a refinement, so the
//!   common path pays nothing for the rule.
//!
//! The **time-shift dominance rule** of the branch-and-bound search carries
//! over as a single clause: some operation with `earliest == 0` starts at
//! cycle 0 (any legal schedule shifts down to such a normalized one).
//!
//! # Decoding and trust
//!
//! A model is decoded back through the shared incremental constraint kernel
//! ([`PartialSchedule`]) — every placement re-checked by `try_reserve_op`,
//! every transfer by `reserve_transfer_at` — and the assembled schedule is
//! unconditionally re-validated with [`mvp_core::validate_schedule`] (not
//! just in debug builds): a SAT certificate is only trusted after the
//! independent oracle accepts the schedule it decodes to.
//!
//! Budget accounting mirrors the branch-and-bound: one *step* is one solver
//! decision or conflict, drawn from the same shared pool as search nodes.

use crate::model::Problem;
use crate::options::ExactOptions;
use crate::propagate::{windows, Windows};
use crate::search::FixedIiOutcome;
use mvp_core::lifetime;
use mvp_ir::{EdgeKind, OpId};
use mvp_resmodel::PartialSchedule;
use mvp_sat::{Lit, SolveResult, Solver, Var};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;

/// The order-encoding query "start(op) ≤ t": a literal inside the window, a
/// constant outside it.
#[derive(Clone, Copy)]
enum Bound {
    True,
    False,
    Is(Lit),
}

impl Bound {
    /// Appends this bound (negated when `positive` is false) to a clause
    /// under construction. Returns `false` when the constant already
    /// satisfies the clause (the caller must drop the whole clause).
    fn push_onto(self, clause: &mut Vec<Lit>, positive: bool) -> bool {
        match (self, positive) {
            (Bound::True, true) | (Bound::False, false) => false,
            (Bound::True, false) | (Bound::False, true) => true,
            (Bound::Is(l), true) => {
                clause.push(l);
                true
            }
            (Bound::Is(l), false) => {
                clause.push(!l);
                true
            }
        }
    }
}

struct Encoder<'a, 'l, 'm> {
    p: &'a Problem<'l, 'm>,
    ii: i64,
    win: &'a Windows,
    solver: Solver,
    /// One-hot start variables: `starts[op][k]` ⇔ start = `earliest[op] + k`.
    starts: Vec<Vec<Var>>,
    /// Monotone prefix variables: `prefix[op][k]` ⇔ start ≤ `earliest + k`,
    /// for `k` in `0..w−1` (the `≤ latest` query is constant true).
    prefix: Vec<Vec<Var>>,
    /// One-hot cluster choice per operation (empty on single-cluster
    /// machines, where the choice is void).
    clusters: Vec<Vec<Var>>,
    /// Co-location variable per unordered operation pair, created on demand.
    /// A `BTreeMap` keeps clause emission deterministic — clause order feeds
    /// VSIDS, which picks the model.
    same: BTreeMap<(OpId, OpId), Lit>,
    /// Transfer variables per ordered cross-capable Data pair:
    /// `y[bus][row]` ⇔ the pair's transfer runs on `bus` starting at a cycle
    /// congruent to `row`. Only populated on finite bus sets with
    /// `1 ≤ bus_latency ≤ II`.
    transfers: BTreeMap<(OpId, OpId), Vec<Vec<Var>>>,
}

impl<'a, 'l, 'm> Encoder<'a, 'l, 'm> {
    fn new(p: &'a Problem<'l, 'm>, ii: u32, win: &'a Windows) -> Self {
        let mut enc = Self {
            p,
            ii: i64::from(ii),
            win,
            solver: Solver::new(),
            starts: Vec::new(),
            prefix: Vec::new(),
            clusters: Vec::new(),
            same: BTreeMap::new(),
            transfers: BTreeMap::new(),
        };
        enc.encode_starts();
        enc.encode_clusters();
        enc.encode_dependences();
        enc.encode_fu_occupancy();
        enc.encode_transfers();
        enc.encode_anchor();
        enc
    }

    fn width(&self, op: OpId) -> usize {
        (self.win.latest[op.index()] - self.win.earliest[op.index()] + 1) as usize
    }

    fn start_lit(&self, op: OpId, t: i64) -> Lit {
        let k = (t - self.win.earliest[op.index()]) as usize;
        Lit::positive(self.starts[op.index()][k])
    }

    /// The "start(op) ≤ t" query against the order encoding.
    fn leq(&self, op: OpId, t: i64) -> Bound {
        let lo = self.win.earliest[op.index()];
        let hi = self.win.latest[op.index()];
        if t < lo {
            Bound::False
        } else if t >= hi {
            Bound::True
        } else {
            Bound::Is(Lit::positive(self.prefix[op.index()][(t - lo) as usize]))
        }
    }

    /// One-hot starts channelled to the monotone prefix chain. The chain
    /// alone forces exactly one start: it has exactly one false→true
    /// boundary, and `s[k] ⇔ P[k] ∧ ¬P[k−1]` pins the start to it.
    fn encode_starts(&mut self) {
        for op in self.p.l.op_ids() {
            let w = self.width(op);
            let s: Vec<Var> = (0..w).map(|_| self.solver.new_var()).collect();
            if w == 1 {
                self.solver.add_clause(&[Lit::positive(s[0])]);
                self.starts.push(s);
                self.prefix.push(Vec::new());
                continue;
            }
            let pf: Vec<Var> = (0..w - 1).map(|_| self.solver.new_var()).collect();
            for k in 0..w - 2 {
                self.solver
                    .add_clause(&[Lit::negative(pf[k]), Lit::positive(pf[k + 1])]);
            }
            self.solver
                .add_clause(&[Lit::negative(s[0]), Lit::positive(pf[0])]);
            self.solver
                .add_clause(&[Lit::negative(pf[0]), Lit::positive(s[0])]);
            for k in 1..w - 1 {
                self.solver
                    .add_clause(&[Lit::negative(s[k]), Lit::positive(pf[k])]);
                self.solver
                    .add_clause(&[Lit::negative(s[k]), Lit::negative(pf[k - 1])]);
                self.solver.add_clause(&[
                    Lit::negative(pf[k]),
                    Lit::positive(pf[k - 1]),
                    Lit::positive(s[k]),
                ]);
            }
            self.solver
                .add_clause(&[Lit::negative(s[w - 1]), Lit::negative(pf[w - 2])]);
            self.solver
                .add_clause(&[Lit::positive(pf[w - 2]), Lit::positive(s[w - 1])]);
            self.starts.push(s);
            self.prefix.push(pf);
        }
    }

    /// One-hot cluster choice over the clusters owning a unit of the
    /// operation's kind ([`Problem::new`] guarantees at least one exists).
    fn encode_clusters(&mut self) {
        let nc = self.p.machine.num_clusters();
        if nc <= 1 {
            return;
        }
        for op in self.p.l.op_ids() {
            let kind = self.p.fu_kind[op.index()].index();
            let c: Vec<Var> = (0..nc).map(|_| self.solver.new_var()).collect();
            let allowed: Vec<Lit> = (0..nc)
                .filter(|&k| self.p.fu_count[k][kind] > 0)
                .map(|k| Lit::positive(c[k]))
                .collect();
            self.solver.exactly_one(&allowed);
            for (k, &v) in c.iter().enumerate() {
                if self.p.fu_count[k][kind] == 0 {
                    self.solver.add_clause(&[Lit::negative(v)]);
                }
            }
            self.clusters.push(c);
        }
    }

    /// The co-location variable of an unordered pair, biconditionally tied
    /// to the cluster choices on first use.
    fn same_lit(&mut self, a: OpId, b: OpId) -> Lit {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&l) = self.same.get(&key) {
            return l;
        }
        let sm = Lit::positive(self.solver.new_var());
        for k in 0..self.p.machine.num_clusters() {
            let ca = Lit::positive(self.clusters[key.0.index()][k]);
            let cb = Lit::positive(self.clusters[key.1.index()][k]);
            self.solver.add_clause(&[!ca, !cb, sm]);
            self.solver.add_clause(&[!sm, !ca, cb]);
        }
        self.same.insert(key, sm);
        sm
    }

    /// Dependence difference constraints, solved for the producer via the
    /// prefix chain: per consumer start `t`, the producer must have started
    /// early enough. Self-loop edges constrain the II alone and are already
    /// discharged by window propagation (a violated one is a positive
    /// cycle).
    fn encode_dependences(&mut self) {
        let multi = self.p.machine.num_clusters() > 1;
        let bus_lat = i64::from(self.p.bus_latency);
        let ii = u32::try_from(self.ii).expect("probe IIs fit u32");
        for e in self.p.l.edges() {
            if e.src == e.dst {
                continue;
            }
            let w_same = self.p.edge_weight(e, ii);
            let cross_pays_bus = multi && e.kind == EdgeKind::Data && bus_lat > 0;
            let sm = cross_pays_bus.then(|| self.same_lit(e.src, e.dst));
            let (lo, hi) = (
                self.win.earliest[e.dst.index()],
                self.win.latest[e.dst.index()],
            );
            for t in lo..=hi {
                let not_here = !self.start_lit(e.dst, t);
                // Same-cluster bound (the weaker one; valid unconditionally).
                let mut clause = vec![not_here];
                if self.leq(e.src, t - w_same).push_onto(&mut clause, true) {
                    self.solver.add_clause(&clause);
                }
                // Cross-cluster bound, guarded by the co-location variable.
                if let Some(sm) = sm {
                    let mut clause = vec![not_here, sm];
                    if self
                        .leq(e.src, t - w_same - bus_lat)
                        .push_onto(&mut clause, true)
                    {
                        self.solver.add_clause(&clause);
                    }
                }
            }
        }
    }

    /// Modulo functional-unit occupancy: at most `fu_count` operations of a
    /// kind per (cluster, row). Only kinds that can oversubscribe somewhere
    /// get row variables and counters at all.
    fn encode_fu_occupancy(&mut self) {
        let nc = self.p.machine.num_clusters();
        let rows = self.ii as usize;
        for kind in 0..3 {
            let count = self.p.ops_per_kind[kind];
            let caps: Vec<usize> = (0..nc).map(|k| self.p.fu_count[k][kind]).collect();
            if !caps.iter().any(|&cap| cap > 0 && cap < count) {
                continue;
            }
            let ops: Vec<OpId> = self
                .p
                .l
                .op_ids()
                .filter(|op| self.p.fu_kind[op.index()].index() == kind)
                .collect();
            // Row variables channelled both ways: `s(t) → r[t mod II]` and
            // `r[ρ] → ⋁ s(t ≡ ρ)` (a spuriously-true row would over-count).
            let mut row_vars: BTreeMap<OpId, Vec<Var>> = BTreeMap::new();
            for &op in &ops {
                let r: Vec<Var> = (0..rows).map(|_| self.solver.new_var()).collect();
                let lo = self.win.earliest[op.index()];
                let hi = self.win.latest[op.index()];
                for t in lo..=hi {
                    let rho = t.rem_euclid(self.ii) as usize;
                    self.solver
                        .add_clause(&[!self.start_lit(op, t), Lit::positive(r[rho])]);
                }
                for (rho, &rv) in r.iter().enumerate() {
                    let mut clause = vec![Lit::negative(rv)];
                    clause.extend(
                        (lo..=hi)
                            .filter(|t| t.rem_euclid(self.ii) as usize == rho)
                            .map(|t| self.start_lit(op, t)),
                    );
                    self.solver.add_clause(&clause);
                }
                row_vars.insert(op, r);
            }
            for (k, &cap) in caps.iter().enumerate() {
                if cap == 0 || cap >= count {
                    continue;
                }
                // `rho` indexes every op's row-variable vector, not one
                // slice, so a range loop is the natural shape here.
                #[allow(clippy::needless_range_loop)]
                for rho in 0..rows {
                    // Occupancy literal per op: `cluster ∧ row → z` (one
                    // directional suffices — the solver only sets z when
                    // forced, and the counter only reads it).
                    let zs: Vec<Lit> = ops
                        .iter()
                        .map(|&op| {
                            let z = Lit::positive(self.solver.new_var());
                            let r = Lit::positive(row_vars[&op][rho]);
                            if nc > 1 {
                                let c = Lit::positive(self.clusters[op.index()][k]);
                                self.solver.add_clause(&[!c, !r, z]);
                            } else {
                                self.solver.add_clause(&[!r, z]);
                            }
                            z
                        })
                        .collect();
                    self.solver.at_most_k(&zs, cap);
                }
            }
        }
    }

    /// Cross-cluster transfers on finite bus sets: pick one (bus, row) per
    /// cross pair, meet every parallel edge's window, and never overlap on a
    /// (bus, row). Unbounded bus sets — and zero-latency buses — admit any
    /// window cycle, so the dependence clauses already say everything.
    fn encode_transfers(&mut self) {
        if self.p.machine.num_clusters() <= 1 {
            return;
        }
        let Some(num_buses) = self.p.num_buses else {
            return;
        };
        let bus_lat = i64::from(self.p.bus_latency);
        if bus_lat == 0 {
            return;
        }
        let rows = self.ii as usize;

        let mut pair_edges: BTreeMap<(OpId, OpId), Vec<u32>> = BTreeMap::new();
        for e in self.p.l.edges() {
            if e.kind == EdgeKind::Data && e.src != e.dst {
                pair_edges
                    .entry((e.src, e.dst))
                    .or_default()
                    .push(e.distance);
            }
        }

        if bus_lat > self.ii {
            // A transfer overlaps its own next-iteration instance: every
            // Data pair must co-locate (the kernel's `reserve_transfer_*`
            // reject such transfers outright).
            for &(a, b) in pair_edges.keys().collect::<Vec<_>>() {
                let sm = self.same_lit(a, b);
                self.solver.add_clause(&[sm]);
            }
            return;
        }

        // Bus occupancy groups: the y literals whose span covers (bus, row).
        let mut covering: Vec<Vec<Vec<Lit>>> = vec![vec![Vec::new(); rows]; num_buses];

        for (&(a, b), distances) in &pair_edges {
            let sm = self.same_lit(a, b);
            let y: Vec<Vec<Var>> = (0..num_buses)
                .map(|_| (0..rows).map(|_| self.solver.new_var()).collect())
                .collect();
            let all: Vec<Lit> = y.iter().flatten().map(|&v| Lit::positive(v)).collect();
            // A cross pair books exactly one transfer; a co-located pair none.
            let mut coverage = vec![sm];
            coverage.extend(&all);
            self.solver.add_clause(&coverage);
            self.solver.at_most_one(&all);
            for &l in &all {
                self.solver.add_clause(&[!l, !sm]);
            }
            for (bus, per_row) in y.iter().enumerate() {
                for (rho, &v) in per_row.iter().enumerate() {
                    for o in 0..bus_lat as usize {
                        covering[bus][(rho + o) % rows].push(Lit::positive(v));
                    }
                }
            }
            // Row selectors factor the window clauses over the buses.
            let yr: Vec<Lit> = (0..rows)
                .map(|_| Lit::positive(self.solver.new_var()))
                .collect();
            for per_row in &y {
                for (rho, &v) in per_row.iter().enumerate() {
                    self.solver.add_clause(&[Lit::negative(v), yr[rho]]);
                }
            }
            // Window clauses: with the producer at `t1`, the decoded start of
            // row class ρ is the earliest congruent cycle after completion;
            // it must meet every parallel edge's consumer deadline.
            let lat_a = i64::from(self.p.latency[a.index()]);
            let (lo_a, hi_a) = (self.win.earliest[a.index()], self.win.latest[a.index()]);
            for (rho, &yr_l) in yr.iter().enumerate() {
                for t1 in lo_a..=hi_a {
                    let lo1 = t1 + lat_a;
                    let sigma = lo1 + (rho as i64 - lo1).rem_euclid(self.ii);
                    for &d in distances {
                        // Need start(b) ≥ σ + bus_lat − II·d.
                        let deadline = sigma + bus_lat - self.ii * i64::from(d) - 1;
                        let mut clause = vec![!yr_l, !self.start_lit(a, t1)];
                        if self.leq(b, deadline).push_onto(&mut clause, false) {
                            self.solver.add_clause(&clause);
                        }
                    }
                }
            }
            self.transfers.insert((a, b), y);
        }

        for per_bus in &covering {
            for group in per_bus {
                self.solver.at_most_one(group);
            }
        }
    }

    /// Time-shift dominance: any legal schedule shifts down (rotating all
    /// modulo rows in lockstep) until its minimum start cycle is 0, and that
    /// minimum must land on an operation whose ASAP bound is 0 — the set is
    /// never empty, because the longest-path closure always leaves some
    /// path-source at its base bound.
    fn encode_anchor(&mut self) {
        let clause: Vec<Lit> = self
            .p
            .l
            .op_ids()
            .filter(|op| self.win.earliest[op.index()] == 0)
            .map(|op| self.start_lit(op, 0))
            .collect();
        self.solver.add_clause(&clause);
    }

    /// Decodes the current model through the shared constraint kernel,
    /// re-checking every placement and transfer against the same rules the
    /// branch-and-bound enforces incrementally.
    fn decode(&self) -> PartialSchedule<'a, 'l, 'm> {
        let mut ps = PartialSchedule::new(self.p.model(), self.ii as u32);
        for op in self.p.l.op_ids() {
            let t = self.decoded_start(op);
            let cluster = self.decoded_cluster(op);
            ps.try_reserve_op(op, cluster, t, self.p.latency[op.index()], false, 0)
                .expect("the CNF model satisfies the functional-unit rules");
        }
        for op in self.p.l.op_ids() {
            // Each cross pair appears once from the consumer side.
            for pair in ps.transfer_pairs(op) {
                if pair.dst != op {
                    continue;
                }
                let (start, bus) = match self.transfers.get(&(pair.src, pair.dst)) {
                    None => (pair.lo, 0), // unbounded or zero-latency buses
                    Some(y) => {
                        let (bus, rho) = y
                            .iter()
                            .enumerate()
                            .flat_map(|(bus, per_row)| {
                                per_row
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, &v)| self.solver.value(v))
                                    .map(move |(rho, _)| (bus, rho))
                            })
                            .next()
                            .expect("cross pairs select a transfer");
                        let sigma = pair.lo + (rho as i64 - pair.lo).rem_euclid(self.ii);
                        (sigma, bus)
                    }
                };
                ps.reserve_transfer_at(pair.src, pair.dst, pair.from, pair.to, start, bus, 0)
                    .expect("the CNF model satisfies the bus rules");
            }
        }
        assert!(
            ps.all_cross_edges_covered(),
            "decoded SAT models cover every cross-cluster edge"
        );
        ps
    }

    fn decoded_start(&self, op: OpId) -> i64 {
        let k = self.starts[op.index()]
            .iter()
            .position(|&v| self.solver.value(v))
            .expect("the start one-hot selects a cycle");
        self.win.earliest[op.index()] + k as i64
    }

    fn decoded_cluster(&self, op: OpId) -> usize {
        if self.clusters.is_empty() {
            return 0;
        }
        self.clusters[op.index()]
            .iter()
            .position(|&v| self.solver.value(v))
            .expect("the cluster one-hot selects a cluster")
    }

    /// Excludes the current model's (start, cluster) combination — the
    /// counterexample-guided refinement step for register pressure.
    fn block_current_model(&mut self) {
        let mut clause: Vec<Lit> = self
            .p
            .l
            .op_ids()
            .map(|op| !self.start_lit(op, self.decoded_start(op)))
            .collect();
        if !self.clusters.is_empty() {
            clause.extend(
                self.p
                    .l
                    .op_ids()
                    .map(|op| Lit::negative(self.clusters[op.index()][self.decoded_cluster(op)])),
            );
        }
        self.solver.add_clause(&clause);
    }
}

/// Runs one fixed-II probe on the SAT backend: certificates first (resource
/// counts, positive dependence cycles — shared with the branch-and-bound),
/// then CNF encoding, CDCL search and kernel-checked decoding.
/// `steps_used` is incremented by the solver steps (decisions + conflicts)
/// the probe consumed; the budget and cancellation contracts match
/// [`crate::search::solve_fixed_ii`].
pub(crate) fn solve_fixed_ii_sat(
    p: &Problem<'_, '_>,
    ii: u32,
    options: &ExactOptions,
    steps_used: &mut u64,
    cancel: Option<&AtomicBool>,
) -> FixedIiOutcome {
    if ii == 0 || p.resource_infeasible(ii) {
        return FixedIiOutcome::Infeasible;
    }
    let Some(win) = windows(p, ii, |asap| p.horizon(asap, ii, options)) else {
        return FixedIiOutcome::Infeasible;
    };
    let mut enc = Encoder::new(p, ii, &win);
    let _span = mvp_trace::span!("exact.sat.probe", ii = ii, vars = enc.solver.num_vars());
    mvp_trace::counter_handle!("exact.sat.encoded_vars", Stable).add(enc.solver.num_vars() as u64);
    mvp_trace::counter_handle!("exact.sat.encoded_clauses", Stable)
        .add(enc.solver.num_clauses() as u64);
    let outcome = loop {
        let remaining = options.node_budget.saturating_sub(enc.solver.steps());
        if remaining == 0 {
            break FixedIiOutcome::Budget;
        }
        match enc.solver.solve(Some(remaining), cancel) {
            SolveResult::Unsat => break FixedIiOutcome::Infeasible,
            SolveResult::Budget => break FixedIiOutcome::Budget,
            SolveResult::Cancelled => break FixedIiOutcome::Cancelled,
            SolveResult::Sat => {}
        }
        let ps = enc.decode();
        let ops = ps.placed_ops();
        if options.enforce_register_pressure {
            let pressure = lifetime::register_pressure(p.l, &ops, ii, p.machine.num_clusters());
            if pressure
                .iter()
                .zip(&p.register_file)
                .any(|(&used, &cap)| used > cap)
            {
                enc.block_current_model();
                mvp_trace::counter_handle!("exact.sat.cegar_rounds", Stable).incr();
                mvp_trace::instant!("exact.sat.cegar_round", ii = ii);
                continue;
            }
        }
        let comms = ps.communications();
        // A SAT certificate is only as good as the schedule it decodes to:
        // re-validate with the independent oracle in every build.
        let pressure = lifetime::register_pressure(p.l, &ops, ii, p.machine.num_clusters());
        let schedule = mvp_core::Schedule::new(
            p.machine.name.clone(),
            "exact-sat",
            ii,
            ops.clone(),
            comms.clone(),
            pressure,
        );
        let violations = mvp_core::validate_schedule(p.l, p.machine, &schedule);
        assert!(
            violations.is_empty(),
            "the SAT backend decoded an illegal schedule for {}: {violations:?}",
            p.l.name(),
        );
        break FixedIiOutcome::Feasible { ops, comms };
    };
    *steps_used += enc.solver.steps();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::Loop;
    use mvp_machine::presets;

    fn probe(l: &Loop, machine: &mvp_machine::MachineConfig, ii: u32) -> FixedIiOutcome {
        let p = Problem::new(l, machine).unwrap();
        let mut steps = 0;
        solve_fixed_ii_sat(&p, ii, &ExactOptions::new(), &mut steps, None)
    }

    fn chain() -> Loop {
        let mut b = Loop::builder("chain");
        let i = b.dimension("I", 64);
        let a = b.auto_array("A", 4096);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f, 0);
        b.data_edge(f, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn feasible_probes_return_placements_for_every_op() {
        let l = chain();
        let machine = presets::two_cluster();
        match probe(&l, &machine, 1) {
            FixedIiOutcome::Feasible { ops, .. } => {
                assert_eq!(ops.len(), 3);
                assert!(ops.iter().all(|p| p.cluster < 2));
                assert!(ops.iter().all(|p| !p.miss_scheduled));
            }
            other => panic!("expected feasible at II=1, got {other:?}"),
        }
    }

    #[test]
    fn verdicts_match_the_branch_and_bound_on_recurrences() {
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        assert!(matches!(probe(&l, &machine, 3), FixedIiOutcome::Infeasible));
        assert!(matches!(
            probe(&l, &machine, 4),
            FixedIiOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn resource_bound_is_certified_infeasible() {
        let mut b = Loop::builder("wide");
        for k in 0..5 {
            b.fp_op(format!("F{k}"));
        }
        let l = b.build().unwrap();
        let machine = presets::four_cluster();
        assert!(matches!(probe(&l, &machine, 1), FixedIiOutcome::Infeasible));
        assert!(matches!(
            probe(&l, &machine, 2),
            FixedIiOutcome::Feasible { .. }
        ));
    }

    #[test]
    fn cross_cluster_recurrences_account_for_the_bus_latency() {
        // The same "bus-rec" case the branch-and-bound pins: the recurrence
        // only fits co-located, so the encoder's guarded cross-cluster
        // clauses and transfer windows must agree with the kernel.
        let mut b = Loop::builder("bus-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        let l = b.build().unwrap();
        let machine = presets::motivating_example_machine();
        assert!(matches!(probe(&l, &machine, 3), FixedIiOutcome::Infeasible));
        match probe(&l, &machine, 4) {
            FixedIiOutcome::Feasible { ops, comms } => {
                assert_eq!(ops[0].cluster, ops[1].cluster);
                assert!(comms.is_empty());
            }
            other => panic!("expected feasible at II=4, got {other:?}"),
        }
    }

    #[test]
    fn tiny_budgets_report_budget_not_infeasible() {
        // A formula that needs at least one decision: II=2 on the chain has
        // real windows, so a 1-step budget trips before any verdict.
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let mut steps = 0;
        let out = solve_fixed_ii_sat(
            &p,
            2,
            &ExactOptions::new().with_node_budget(1),
            &mut steps,
            None,
        );
        assert!(matches!(out, FixedIiOutcome::Budget), "{out:?}");
        assert!(steps >= 1);
    }

    #[test]
    fn a_raised_poison_flag_cancels_the_probe() {
        use std::sync::atomic::AtomicBool;
        let l = chain();
        let machine = presets::two_cluster();
        let p = Problem::new(&l, &machine).unwrap();
        let cancel = AtomicBool::new(true);
        let mut steps = 0;
        let out = solve_fixed_ii_sat(&p, 2, &ExactOptions::new(), &mut steps, Some(&cancel));
        assert!(matches!(out, FixedIiOutcome::Cancelled), "{out:?}");
    }

    #[test]
    fn register_pressure_refinement_rejects_overflowing_models() {
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        // One cluster with a 1-register file: X's value must die as fast as
        // possible; a long X→Y lifetime overflows and the refinement loop
        // must steer the solver to the tight placement (or prove none fits).
        let machine = MachineConfig::builder("tiny-regs")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 2, 1, CacheGeometry::direct_mapped(1024)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        let mut b = Loop::builder("tight");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        let l = b.build().unwrap();
        match probe(&l, &machine, 1) {
            FixedIiOutcome::Feasible { ops, .. } => {
                // Lifetime exactly the latency: 2 cycles at II=1 needs 2
                // registers > 1, so II=1 must actually be infeasible — reaching
                // here with a validated schedule would mean the refinement
                // leaked an overflowing model.
                panic!("II=1 cannot satisfy the 1-register file, got {ops:?}");
            }
            FixedIiOutcome::Infeasible => {}
            other => panic!("unexpected {other:?}"),
        }
        // II=2 packs the lifetime into ceil(2/2) = 1 register.
        assert!(matches!(
            probe(&l, &machine, 2),
            FixedIiOutcome::Feasible { .. }
        ));
    }
}
