//! Modulo reservation table (MRT).
//!
//! Modulo scheduling places every operation at an absolute cycle, but resource
//! usage repeats every II cycles, so resources are tracked modulo II. The MRT
//! tracks, per cluster, the issue slots of every functional-unit kind and, per
//! register bus, the cycles during which the bus is busy with a transfer (a
//! bus stays busy for its whole latency, Section 2.1 of the paper).

use crate::bus::BusCount;
use crate::error::MachineError;
use crate::fu::FuKind;
use crate::machine::{ClusterId, MachineConfig};

/// Token recorded in an MRT slot: the identifier of the operation (or
/// communication) occupying the slot. Purely informational; the MRT only
/// cares about occupancy.
pub type SlotToken = u32;

/// A reserved functional-unit issue slot, returned by
/// [`ModuloReservationTable::reserve_fu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuSlot {
    /// Cluster the slot belongs to.
    pub cluster: ClusterId,
    /// Functional-unit kind.
    pub kind: FuKind,
    /// Unit index within the kind.
    pub unit: usize,
    /// Row of the MRT (cycle modulo II).
    pub row: u32,
}

/// A reserved register-bus transfer, returned by
/// [`ModuloReservationTable::reserve_register_bus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusSlot {
    /// Bus index (0 when the bus set is unbounded).
    pub bus: usize,
    /// First row (cycle modulo II) occupied by the transfer.
    pub start_row: u32,
    /// Number of consecutive rows occupied (the bus latency).
    pub duration: u32,
    /// Whether the reservation was made on an unbounded bus set (never
    /// conflicts, not tracked in the table).
    pub unbounded: bool,
}

/// The modulo reservation table for one (machine, II) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloReservationTable {
    ii: u32,
    /// `fu[cluster][kind][row * units + unit]`
    fu: Vec<[Vec<Option<SlotToken>>; 3]>,
    fu_units: Vec<[usize; 3]>,
    /// `register_bus[bus][row]`, empty when the bus set is unbounded.
    register_bus: Vec<Vec<Option<SlotToken>>>,
    register_bus_latency: u32,
    unbounded_register_buses: bool,
    /// Count of register-bus transfers reserved (including on unbounded bus
    /// sets), for statistics.
    transfers: usize,
}

impl ModuloReservationTable {
    /// Creates an empty MRT for `machine` at initiation interval `ii`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::ZeroInitiationInterval`] when `ii == 0`.
    pub fn new(machine: &MachineConfig, ii: u32) -> Result<Self, MachineError> {
        if ii == 0 {
            return Err(MachineError::ZeroInitiationInterval);
        }
        let mut fu = Vec::with_capacity(machine.num_clusters());
        let mut fu_units = Vec::with_capacity(machine.num_clusters());
        for (_, cluster) in machine.clusters() {
            let mut per_kind: [Vec<Option<SlotToken>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            let mut units = [0usize; 3];
            for kind in FuKind::ALL {
                let n = cluster.fu_count(kind);
                units[kind.index()] = n;
                per_kind[kind.index()] = vec![None; n * ii as usize];
            }
            fu.push(per_kind);
            fu_units.push(units);
        }
        let (register_bus, unbounded) = match machine.register_buses.count {
            BusCount::Finite(n) => (vec![vec![None; ii as usize]; n], false),
            BusCount::Unbounded => (Vec::new(), true),
        };
        Ok(Self {
            ii,
            fu,
            fu_units,
            register_bus,
            register_bus_latency: machine.register_buses.latency,
            unbounded_register_buses: unbounded,
            transfers: 0,
        })
    }

    /// The initiation interval this table was built for.
    #[must_use]
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Number of register-bus transfers reserved so far.
    #[must_use]
    pub fn num_transfers(&self) -> usize {
        self.transfers
    }

    /// Row (cycle modulo II) of an absolute cycle.
    #[must_use]
    pub fn row_of(&self, cycle: u32) -> u32 {
        cycle % self.ii
    }

    fn fu_cell(
        &self,
        cluster: ClusterId,
        kind: FuKind,
        row: u32,
        unit: usize,
    ) -> &Option<SlotToken> {
        &self.fu[cluster][kind.index()][row as usize * self.fu_units[cluster][kind.index()] + unit]
    }

    fn fu_cell_mut(
        &mut self,
        cluster: ClusterId,
        kind: FuKind,
        row: u32,
        unit: usize,
    ) -> &mut Option<SlotToken> {
        let units = self.fu_units[cluster][kind.index()];
        &mut self.fu[cluster][kind.index()][row as usize * units + unit]
    }

    /// Whether cluster `cluster` has a free issue slot of `kind` at `cycle`.
    #[must_use]
    pub fn has_free_fu(&self, cluster: ClusterId, kind: FuKind, cycle: u32) -> bool {
        let row = self.row_of(cycle);
        let units = self.fu_units[cluster][kind.index()];
        (0..units).any(|u| self.fu_cell(cluster, kind, row, u).is_none())
    }

    /// Reserves an issue slot of `kind` in `cluster` at `cycle` for `token`.
    ///
    /// Returns `None` when every unit of that kind is already busy in that
    /// row.
    pub fn reserve_fu(
        &mut self,
        cluster: ClusterId,
        kind: FuKind,
        cycle: u32,
        token: SlotToken,
    ) -> Option<FuSlot> {
        let row = self.row_of(cycle);
        let units = self.fu_units[cluster][kind.index()];
        for unit in 0..units {
            if self.fu_cell(cluster, kind, row, unit).is_none() {
                *self.fu_cell_mut(cluster, kind, row, unit) = Some(token);
                return Some(FuSlot {
                    cluster,
                    kind,
                    unit,
                    row,
                });
            }
        }
        None
    }

    /// Releases a previously reserved functional-unit slot.
    pub fn release_fu(&mut self, slot: FuSlot) {
        *self.fu_cell_mut(slot.cluster, slot.kind, slot.row, slot.unit) = None;
    }

    /// Number of free issue slots of `kind` in `cluster` at `cycle`.
    #[must_use]
    pub fn free_fu_slots(&self, cluster: ClusterId, kind: FuKind, cycle: u32) -> usize {
        let row = self.row_of(cycle);
        let units = self.fu_units[cluster][kind.index()];
        (0..units)
            .filter(|&u| self.fu_cell(cluster, kind, row, u).is_none())
            .count()
    }

    /// Whether a register-bus transfer of the configured latency can start at
    /// `cycle` on some bus.
    #[must_use]
    pub fn can_reserve_register_bus(&self, cycle: u32) -> bool {
        if self.unbounded_register_buses {
            return true;
        }
        if self.register_bus_latency > self.ii {
            // A transfer longer than the II would overlap with the same
            // transfer of the next iteration on any single bus.
            return false;
        }
        self.register_bus
            .iter()
            .any(|bus| self.bus_window_free(bus, cycle))
    }

    fn bus_window_free(&self, bus: &[Option<SlotToken>], cycle: u32) -> bool {
        (0..self.register_bus_latency).all(|d| bus[self.row_of(cycle + d) as usize].is_none())
    }

    /// Reserves a register-bus transfer starting at `cycle` (occupying the bus
    /// for its full latency, modulo II). Returns `None` if every bus is busy
    /// in the window.
    pub fn reserve_register_bus(&mut self, cycle: u32, token: SlotToken) -> Option<BusSlot> {
        if self.unbounded_register_buses {
            self.transfers += 1;
            return Some(BusSlot {
                bus: 0,
                start_row: self.row_of(cycle),
                duration: self.register_bus_latency,
                unbounded: true,
            });
        }
        if self.register_bus_latency > self.ii {
            return None;
        }
        let start_row = self.row_of(cycle);
        let latency = self.register_bus_latency;
        let ii = self.ii;
        let chosen = self
            .register_bus
            .iter()
            .position(|bus| (0..latency).all(|d| bus[((start_row + d) % ii) as usize].is_none()))?;
        for d in 0..latency {
            let row = ((start_row + d) % ii) as usize;
            self.register_bus[chosen][row] = Some(token);
        }
        self.transfers += 1;
        Some(BusSlot {
            bus: chosen,
            start_row,
            duration: latency,
            unbounded: false,
        })
    }

    /// Releases a previously reserved register-bus transfer.
    pub fn release_register_bus(&mut self, slot: BusSlot) {
        if slot.unbounded {
            self.transfers = self.transfers.saturating_sub(1);
            return;
        }
        for d in 0..slot.duration {
            let row = ((slot.start_row + d) % self.ii) as usize;
            self.register_bus[slot.bus][row] = None;
        }
        self.transfers = self.transfers.saturating_sub(1);
    }

    /// Fraction of functional-unit issue slots of `kind` in `cluster` that are
    /// occupied (0.0–1.0). Returns 0.0 for kinds with no units.
    #[must_use]
    pub fn fu_utilization(&self, cluster: ClusterId, kind: FuKind) -> f64 {
        let units = self.fu_units[cluster][kind.index()];
        let total = units * self.ii as usize;
        if total == 0 {
            return 0.0;
        }
        let used = self.fu[cluster][kind.index()]
            .iter()
            .filter(|c| c.is_some())
            .count();
        used as f64 / total as f64
    }

    /// Fraction of register-bus slots that are occupied (0.0 for unbounded
    /// bus sets, which never saturate).
    #[must_use]
    pub fn register_bus_utilization(&self) -> f64 {
        if self.unbounded_register_buses || self.register_bus.is_empty() {
            return 0.0;
        }
        let total = self.register_bus.len() * self.ii as usize;
        let used: usize = self
            .register_bus
            .iter()
            .map(|bus| bus.iter().filter(|c| c.is_some()).count())
            .sum();
        used as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn zero_ii_is_rejected() {
        let machine = presets::two_cluster();
        assert_eq!(
            ModuloReservationTable::new(&machine, 0).unwrap_err(),
            MachineError::ZeroInitiationInterval
        );
    }

    #[test]
    fn fu_reservation_fills_all_units_then_fails() {
        let machine = presets::two_cluster(); // 2 memory units per cluster
        let mut mrt = ModuloReservationTable::new(&machine, 3).unwrap();
        assert!(mrt.has_free_fu(0, FuKind::Memory, 5));
        assert_eq!(mrt.free_fu_slots(0, FuKind::Memory, 5), 2);
        let a = mrt.reserve_fu(0, FuKind::Memory, 5, 1).unwrap();
        let b = mrt.reserve_fu(0, FuKind::Memory, 5, 2).unwrap();
        assert_ne!(a.unit, b.unit);
        assert_eq!(a.row, 2);
        assert!(!mrt.has_free_fu(0, FuKind::Memory, 5));
        // Cycle 8 maps to the same row (8 mod 3 == 2) and is also full.
        assert!(mrt.reserve_fu(0, FuKind::Memory, 8, 3).is_none());
        // Another row is still free.
        assert!(mrt.reserve_fu(0, FuKind::Memory, 6, 4).is_some());
        // Another cluster is unaffected.
        assert!(mrt.has_free_fu(1, FuKind::Memory, 5));
        // Releasing frees the slot again.
        mrt.release_fu(a);
        assert!(mrt.has_free_fu(0, FuKind::Memory, 5));
    }

    #[test]
    fn register_bus_reservation_respects_latency_window() {
        // 1 register bus with 2-cycle latency.
        let machine = presets::motivating_example_machine();
        let mut mrt = ModuloReservationTable::new(&machine, 4).unwrap();
        assert!(mrt.can_reserve_register_bus(1));
        let slot = mrt.reserve_register_bus(1, 10).unwrap();
        assert!(!slot.unbounded);
        assert_eq!(slot.start_row, 1);
        // Rows 1 and 2 are now busy; a transfer starting at row 2 conflicts.
        assert!(!mrt.can_reserve_register_bus(2));
        // Row 0 conflicts too (would occupy rows 0 and 1).
        assert!(!mrt.can_reserve_register_bus(0));
        // Row 3 occupies rows 3 and 0: free.
        assert!(mrt.can_reserve_register_bus(3));
        let slot2 = mrt.reserve_register_bus(3, 11).unwrap();
        assert_eq!(mrt.num_transfers(), 2);
        // Everything is now busy.
        for cycle in 0..4 {
            assert!(!mrt.can_reserve_register_bus(cycle));
        }
        assert!((mrt.register_bus_utilization() - 1.0).abs() < 1e-12);
        mrt.release_register_bus(slot2);
        assert!(mrt.can_reserve_register_bus(3));
        assert_eq!(mrt.num_transfers(), 1);
    }

    #[test]
    fn bus_latency_longer_than_ii_cannot_be_reserved() {
        let machine = presets::motivating_example_machine(); // bus latency 2
        let mut mrt = ModuloReservationTable::new(&machine, 1).unwrap();
        assert!(!mrt.can_reserve_register_bus(0));
        assert!(mrt.reserve_register_bus(0, 1).is_none());
    }

    #[test]
    fn unbounded_register_buses_never_conflict() {
        let machine = presets::two_cluster().with_register_buses(crate::BusConfig::unbounded(2));
        let mut mrt = ModuloReservationTable::new(&machine, 2).unwrap();
        for i in 0..100 {
            assert!(mrt.can_reserve_register_bus(i));
            let slot = mrt.reserve_register_bus(i, i).unwrap();
            assert!(slot.unbounded);
        }
        assert_eq!(mrt.num_transfers(), 100);
        assert_eq!(mrt.register_bus_utilization(), 0.0);
    }

    #[test]
    fn utilization_reflects_reservations() {
        let machine = presets::four_cluster(); // 1 unit of each kind per cluster
        let mut mrt = ModuloReservationTable::new(&machine, 2).unwrap();
        assert_eq!(mrt.fu_utilization(0, FuKind::Integer), 0.0);
        mrt.reserve_fu(0, FuKind::Integer, 0, 1).unwrap();
        assert!((mrt.fu_utilization(0, FuKind::Integer) - 0.5).abs() < 1e-12);
        mrt.reserve_fu(0, FuKind::Integer, 1, 2).unwrap();
        assert!((mrt.fu_utilization(0, FuKind::Integer) - 1.0).abs() < 1e-12);
    }
}
