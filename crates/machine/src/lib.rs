//! Machine model for the *multiVLIWprocessor* — the fully-distributed
//! clustered VLIW architecture proposed by Sánchez & González (MICRO 2000).
//!
//! The crate describes the hardware that the modulo schedulers in
//! [`mvp-core`](https://docs.rs/mvp-core) target and that the cycle-level
//! simulator in [`mvp-sim`](https://docs.rs/mvp-sim) models:
//!
//! * [`ClusterConfig`] — a cluster with its own functional units, register
//!   file and local data cache,
//! * [`BusConfig`] — the shared register buses and memory buses that connect
//!   clusters (and main memory),
//! * [`MachineConfig`] — a full machine built from homogeneous clusters,
//!   with the Table-1 presets of the paper available from [`presets`],
//! * [`isa`] — the VLIW instruction format of Figure 2 (per-cluster
//!   functional-unit slots plus `IN BUS` / `OUT BUS` fields and the incoming
//!   register value latch, IRV).
//!
//! Modulo reservation bookkeeping (functional-unit issue slots, bus
//! transfer slots) lives in the shared constraint kernel `mvp-resmodel`,
//! which every scheduler reserves through.
//!
//! # Example
//!
//! ```
//! use mvp_machine::{presets, FuKind};
//!
//! let machine = presets::two_cluster();
//! assert_eq!(machine.num_clusters(), 2);
//! assert_eq!(machine.issue_width(), 12);
//! assert_eq!(machine.cluster(0).fu_count(FuKind::Memory), 2);
//! // The 8KB L1 is split evenly among the clusters.
//! assert_eq!(machine.cluster(0).cache.capacity_bytes, 4096);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bus;
pub mod cache_geom;
pub mod cluster;
pub mod error;
pub mod fu;
pub mod isa;
pub mod latency;
pub mod machine;
pub mod presets;

pub use bus::{BusConfig, BusCount, BusKind};
pub use cache_geom::CacheGeometry;
pub use cluster::ClusterConfig;
pub use error::MachineError;
pub use fu::{FuKind, FunctionalUnit};
pub use latency::OperationLatencies;
pub use machine::{ClusterId, MachineBuilder, MachineConfig};
