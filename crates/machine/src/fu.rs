//! Functional-unit kinds of the multiVLIWprocessor.
//!
//! The paper assumes three kinds of functional units per cluster: integer
//! arithmetic, floating-point arithmetic and memory ports (Section 2.1).

use std::fmt;

/// Kind of a functional unit (and, by extension, of the operation classes it
/// can execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuKind {
    /// Integer arithmetic / logic unit.
    Integer,
    /// Floating-point arithmetic unit.
    Float,
    /// Memory port (executes loads and stores against the local L1 cache).
    Memory,
}

impl FuKind {
    /// All functional-unit kinds, in a fixed canonical order.
    pub const ALL: [FuKind; 3] = [FuKind::Integer, FuKind::Float, FuKind::Memory];

    /// Canonical index of this kind (0, 1 or 2), usable to index per-kind
    /// arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FuKind::Integer => 0,
            FuKind::Float => 1,
            FuKind::Memory => 2,
        }
    }

    /// Inverse of [`FuKind::index`]. Returns `None` for indices `>= 3`.
    #[must_use]
    pub fn from_index(index: usize) -> Option<Self> {
        match index {
            0 => Some(FuKind::Integer),
            1 => Some(FuKind::Float),
            2 => Some(FuKind::Memory),
            _ => None,
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FuKind::Integer => "integer",
            FuKind::Float => "float",
            FuKind::Memory => "memory",
        };
        f.write_str(name)
    }
}

/// A single functional unit instance inside a cluster.
///
/// Units are fully pipelined: a new operation can be issued every cycle and
/// the only resource conflict is on the issue slot itself, which matches the
/// resource model used by modulo scheduling reservation tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FunctionalUnit {
    /// Kind of operations this unit executes.
    pub kind: FuKind,
    /// Index of the unit among the units of the same kind in its cluster.
    pub index: usize,
}

impl FunctionalUnit {
    /// Creates a functional unit descriptor.
    #[must_use]
    pub fn new(kind: FuKind, index: usize) -> Self {
        Self { kind, index }
    }
}

impl fmt::Display for FunctionalUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for kind in FuKind::ALL {
            assert_eq!(FuKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(FuKind::from_index(3), None);
        assert_eq!(FuKind::from_index(usize::MAX), None);
    }

    #[test]
    fn all_kinds_are_distinct() {
        let mut indices: Vec<usize> = FuKind::ALL.iter().map(|k| k.index()).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), 3);
    }

    #[test]
    fn display_names() {
        assert_eq!(FuKind::Integer.to_string(), "integer");
        assert_eq!(FuKind::Float.to_string(), "float");
        assert_eq!(FuKind::Memory.to_string(), "memory");
        assert_eq!(
            FunctionalUnit::new(FuKind::Memory, 1).to_string(),
            "memory[1]"
        );
    }

    #[test]
    fn ordering_follows_canonical_index() {
        assert!(FuKind::Integer < FuKind::Float);
        assert!(FuKind::Float < FuKind::Memory);
    }
}
