//! Error type for machine-model construction and resource allocation.

use std::error::Error;
use std::fmt;

/// Errors raised while building a [`crate::MachineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// The machine was configured with no clusters.
    NoClusters,
    /// A cluster was configured with no functional units at all.
    EmptyCluster {
        /// Index of the offending cluster.
        cluster: usize,
    },
    /// A cluster index was out of range.
    InvalidCluster {
        /// The requested cluster index.
        cluster: usize,
        /// Number of clusters in the machine.
        num_clusters: usize,
    },
    /// A cache geometry was invalid (zero capacity, non-power-of-two block
    /// size, block larger than capacity, ...).
    InvalidCacheGeometry {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A bus configuration was invalid (e.g. zero latency).
    InvalidBus {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A modulo table (one row per cycle of the initiation interval) was
    /// requested for a zero initiation interval.
    ZeroInitiationInterval,
    /// An operation latency was configured as zero where a positive value is
    /// required.
    InvalidLatency {
        /// Name of the latency field.
        which: &'static str,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoClusters => write!(f, "machine has no clusters"),
            MachineError::EmptyCluster { cluster } => {
                write!(f, "cluster {cluster} has no functional units")
            }
            MachineError::InvalidCluster {
                cluster,
                num_clusters,
            } => write!(
                f,
                "cluster index {cluster} out of range for machine with {num_clusters} clusters"
            ),
            MachineError::InvalidCacheGeometry { reason } => {
                write!(f, "invalid cache geometry: {reason}")
            }
            MachineError::InvalidBus { reason } => write!(f, "invalid bus configuration: {reason}"),
            MachineError::ZeroInitiationInterval => {
                write!(f, "initiation interval must be at least 1")
            }
            MachineError::InvalidLatency { which } => {
                write!(f, "latency `{which}` must be at least 1")
            }
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs = [
            MachineError::NoClusters,
            MachineError::EmptyCluster { cluster: 3 },
            MachineError::InvalidCluster {
                cluster: 7,
                num_clusters: 2,
            },
            MachineError::InvalidCacheGeometry {
                reason: "capacity is zero".into(),
            },
            MachineError::InvalidBus {
                reason: "latency is zero".into(),
            },
            MachineError::ZeroInitiationInterval,
            MachineError::InvalidLatency { which: "load_hit" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineError>();
    }
}
