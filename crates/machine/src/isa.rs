//! The VLIW instruction format of the multiVLIWprocessor (Figure 2).
//!
//! Every VLIW instruction is split into one *cluster word* per cluster. A
//! cluster word contains one operation slot per functional unit of the
//! cluster plus, for every register bus, an `IN BUS` field and an `OUT BUS`
//! field:
//!
//! * the `OUT BUS` field names the local register (or bypassed functional
//!   unit result) that the cluster drives onto the bus this cycle;
//! * the `IN BUS` field names the local register into which the value latched
//!   in the cluster's *incoming register value* (IRV) register is written.
//!
//! All inter-cluster register communication is therefore encoded statically;
//! no hardware arbitration is needed for register buses.

use crate::fu::FuKind;
use std::fmt;

/// Index of an architectural register within a cluster's local register file.
pub type RegisterIndex = u16;

/// Index of a register bus.
pub type BusIndex = usize;

/// An operation placed in a functional-unit slot of a cluster word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotOp {
    /// Identifier of the operation in the scheduled loop (opaque to the ISA).
    pub op: u32,
    /// Kind of functional unit the operation executes on.
    pub kind: FuKind,
    /// Destination register in the local register file, if the operation
    /// produces a value.
    pub dest: Option<RegisterIndex>,
}

/// `OUT BUS` field: drive a local value onto a register bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutBusField {
    /// Local register whose value is driven (possibly bypassed from a
    /// functional-unit output being written this cycle).
    pub source: RegisterIndex,
}

/// `IN BUS` field: store the value latched in the IRV into a local register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InBusField {
    /// Local register that receives the IRV contents.
    pub dest: RegisterIndex,
}

/// The part of a VLIW instruction executed by one cluster in one cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterWord {
    /// One slot per functional unit of the cluster (index = unit index in
    /// [`crate::ClusterConfig::functional_units`] order); `None` is a no-op.
    pub fu_slots: Vec<Option<SlotOp>>,
    /// One `IN BUS` field per register bus.
    pub in_bus: Vec<Option<InBusField>>,
    /// One `OUT BUS` field per register bus.
    pub out_bus: Vec<Option<OutBusField>>,
}

impl ClusterWord {
    /// Creates an empty (all no-op) cluster word for a cluster with
    /// `num_fus` functional units and `num_buses` register buses.
    #[must_use]
    pub fn empty(num_fus: usize, num_buses: usize) -> Self {
        Self {
            fu_slots: vec![None; num_fus],
            in_bus: vec![None; num_buses],
            out_bus: vec![None; num_buses],
        }
    }

    /// Whether the word encodes no work at all.
    #[must_use]
    pub fn is_nop(&self) -> bool {
        self.fu_slots.iter().all(Option::is_none)
            && self.in_bus.iter().all(Option::is_none)
            && self.out_bus.iter().all(Option::is_none)
    }

    /// Number of operations (occupied functional-unit slots).
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.fu_slots.iter().filter(|s| s.is_some()).count()
    }

    /// Number of bus fields in use (either direction).
    #[must_use]
    pub fn num_bus_fields(&self) -> usize {
        self.in_bus.iter().filter(|s| s.is_some()).count()
            + self.out_bus.iter().filter(|s| s.is_some()).count()
    }
}

/// A full VLIW instruction: one [`ClusterWord`] per cluster, all issued in
/// lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VliwInstruction {
    /// Per-cluster words, indexed by cluster id.
    pub clusters: Vec<ClusterWord>,
}

impl VliwInstruction {
    /// Creates an empty instruction for `num_clusters` identical clusters.
    #[must_use]
    pub fn empty(num_clusters: usize, fus_per_cluster: usize, num_buses: usize) -> Self {
        Self {
            clusters: (0..num_clusters)
                .map(|_| ClusterWord::empty(fus_per_cluster, num_buses))
                .collect(),
        }
    }

    /// Whether the instruction encodes no work at all.
    #[must_use]
    pub fn is_nop(&self) -> bool {
        self.clusters.iter().all(ClusterWord::is_nop)
    }

    /// Total number of operations across all clusters.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.clusters.iter().map(ClusterWord::num_ops).sum()
    }

    /// Serialises the instruction to a compact textual encoding.
    ///
    /// The encoding is line-oriented (`cluster/slot` prefixed fields) and is
    /// intended for golden tests and debugging rather than as a binary ISA.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for (c, word) in self.clusters.iter().enumerate() {
            for (s, slot) in word.fu_slots.iter().enumerate() {
                if let Some(op) = slot {
                    let dest = op.dest.map_or(-1i32, i32::from);
                    out.push_str(&format!("F {c} {s} {} {} {dest}\n", op.op, op.kind.index()));
                }
            }
            for (b, field) in word.out_bus.iter().enumerate() {
                if let Some(f) = field {
                    out.push_str(&format!("O {c} {b} {}\n", f.source));
                }
            }
            for (b, field) in word.in_bus.iter().enumerate() {
                if let Some(f) = field {
                    out.push_str(&format!("I {c} {b} {}\n", f.dest));
                }
            }
        }
        out
    }

    /// Parses an instruction from the encoding produced by
    /// [`VliwInstruction::encode`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive string when a line is malformed or refers to a
    /// cluster/slot/bus outside the shape of `template`.
    pub fn decode(
        encoded: &str,
        num_clusters: usize,
        fus_per_cluster: usize,
        num_buses: usize,
    ) -> Result<Self, String> {
        let mut inst = Self::empty(num_clusters, fus_per_cluster, num_buses);
        for (lineno, line) in encoded.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parse = |s: &str| -> Result<i64, String> {
                s.parse::<i64>()
                    .map_err(|e| format!("line {}: bad integer `{s}`: {e}", lineno + 1))
            };
            match fields.first().copied() {
                Some("F") if fields.len() == 6 => {
                    let c = parse(fields[1])? as usize;
                    let s = parse(fields[2])? as usize;
                    let op = parse(fields[3])? as u32;
                    let kind = FuKind::from_index(parse(fields[4])? as usize)
                        .ok_or_else(|| format!("line {}: bad FU kind", lineno + 1))?;
                    let dest = parse(fields[5])?;
                    let dest = if dest < 0 {
                        None
                    } else {
                        Some(dest as RegisterIndex)
                    };
                    let word = inst
                        .clusters
                        .get_mut(c)
                        .ok_or_else(|| format!("line {}: cluster {c} out of range", lineno + 1))?;
                    let slot = word
                        .fu_slots
                        .get_mut(s)
                        .ok_or_else(|| format!("line {}: slot {s} out of range", lineno + 1))?;
                    *slot = Some(SlotOp { op, kind, dest });
                }
                Some("O") if fields.len() == 4 => {
                    let c = parse(fields[1])? as usize;
                    let b = parse(fields[2])? as usize;
                    let source = parse(fields[3])? as RegisterIndex;
                    let word = inst
                        .clusters
                        .get_mut(c)
                        .ok_or_else(|| format!("line {}: cluster {c} out of range", lineno + 1))?;
                    let field = word
                        .out_bus
                        .get_mut(b)
                        .ok_or_else(|| format!("line {}: bus {b} out of range", lineno + 1))?;
                    *field = Some(OutBusField { source });
                }
                Some("I") if fields.len() == 4 => {
                    let c = parse(fields[1])? as usize;
                    let b = parse(fields[2])? as usize;
                    let dest = parse(fields[3])? as RegisterIndex;
                    let word = inst
                        .clusters
                        .get_mut(c)
                        .ok_or_else(|| format!("line {}: cluster {c} out of range", lineno + 1))?;
                    let field = word
                        .in_bus
                        .get_mut(b)
                        .ok_or_else(|| format!("line {}: bus {b} out of range", lineno + 1))?;
                    *field = Some(InBusField { dest });
                }
                _ => return Err(format!("line {}: malformed field `{line}`", lineno + 1)),
            }
        }
        Ok(inst)
    }
}

impl fmt::Display for VliwInstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VliwInstruction {
        let mut inst = VliwInstruction::empty(2, 3, 2);
        inst.clusters[0].fu_slots[0] = Some(SlotOp {
            op: 7,
            kind: FuKind::Integer,
            dest: Some(3),
        });
        inst.clusters[0].fu_slots[2] = Some(SlotOp {
            op: 9,
            kind: FuKind::Memory,
            dest: None,
        });
        inst.clusters[0].out_bus[1] = Some(OutBusField { source: 3 });
        inst.clusters[1].in_bus[1] = Some(InBusField { dest: 12 });
        inst.clusters[1].fu_slots[1] = Some(SlotOp {
            op: 11,
            kind: FuKind::Float,
            dest: Some(12),
        });
        inst
    }

    #[test]
    fn empty_instruction_is_nop() {
        let inst = VliwInstruction::empty(4, 3, 2);
        assert!(inst.is_nop());
        assert_eq!(inst.num_ops(), 0);
        assert_eq!(inst.clusters.len(), 4);
    }

    #[test]
    fn counting_ops_and_bus_fields() {
        let inst = sample();
        assert!(!inst.is_nop());
        assert_eq!(inst.num_ops(), 3);
        assert_eq!(inst.clusters[0].num_ops(), 2);
        assert_eq!(inst.clusters[0].num_bus_fields(), 1);
        assert_eq!(inst.clusters[1].num_bus_fields(), 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let inst = sample();
        let encoded = inst.encode();
        let decoded = VliwInstruction::decode(&encoded, 2, 3, 2).unwrap();
        assert_eq!(inst, decoded);
    }

    #[test]
    fn display_matches_encode() {
        let inst = sample();
        assert_eq!(inst.to_string(), inst.encode());
    }

    #[test]
    fn decode_rejects_out_of_range_and_malformed_input() {
        assert!(VliwInstruction::decode("F 9 0 1 0 -1", 2, 3, 2).is_err());
        assert!(VliwInstruction::decode("F 0 9 1 0 -1", 2, 3, 2).is_err());
        assert!(VliwInstruction::decode("O 0 9 1", 2, 3, 2).is_err());
        assert!(VliwInstruction::decode("X 0 0 1", 2, 3, 2).is_err());
        assert!(VliwInstruction::decode("F 0 0 nonsense 0 -1", 2, 3, 2).is_err());
        assert!(VliwInstruction::decode("F 0 0 1 7 -1", 2, 3, 2).is_err());
        // Blank lines are fine.
        assert!(VliwInstruction::decode("\n\n", 2, 3, 2).is_ok());
    }
}
