//! Per-cluster configuration: functional units, register file and local cache.

use crate::cache_geom::CacheGeometry;
use crate::error::MachineError;
use crate::fu::{FuKind, FunctionalUnit};

/// Configuration of one cluster of the multiVLIWprocessor.
///
/// Every cluster owns its functional units, a local register file and a local
/// slice of the L1 data cache (plus a local instruction cache which is not
/// modelled further since instruction fetch never stalls in the paper's
/// experiments).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    /// Number of functional units of each kind, indexed by [`FuKind::index`].
    fu_counts: [usize; 3],
    /// Number of general-purpose registers in the local register file.
    pub register_file_size: usize,
    /// Geometry of the local L1 data cache.
    pub cache: CacheGeometry,
}

impl ClusterConfig {
    /// Creates a cluster with `int`/`float`/`memory` functional units, a
    /// register file of `registers` entries and the given local cache.
    #[must_use]
    pub fn new(
        int: usize,
        float: usize,
        memory: usize,
        registers: usize,
        cache: CacheGeometry,
    ) -> Self {
        Self {
            fu_counts: [int, float, memory],
            register_file_size: registers,
            cache,
        }
    }

    /// Number of functional units of the given kind.
    #[must_use]
    pub fn fu_count(&self, kind: FuKind) -> usize {
        self.fu_counts[kind.index()]
    }

    /// Total number of functional units (the cluster's issue width).
    #[must_use]
    pub fn issue_width(&self) -> usize {
        self.fu_counts.iter().sum()
    }

    /// Iterator over all functional units of the cluster.
    pub fn functional_units(&self) -> impl Iterator<Item = FunctionalUnit> + '_ {
        FuKind::ALL.into_iter().flat_map(move |kind| {
            (0..self.fu_count(kind)).map(move |i| FunctionalUnit::new(kind, i))
        })
    }

    /// Validates the cluster: it must contain at least one functional unit, a
    /// non-empty register file and a valid cache geometry.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`MachineError`]; the `cluster`
    /// index recorded in the error is the one supplied by the caller.
    pub fn validate(&self, cluster_index: usize) -> Result<(), MachineError> {
        if self.issue_width() == 0 {
            return Err(MachineError::EmptyCluster {
                cluster: cluster_index,
            });
        }
        if self.register_file_size == 0 {
            return Err(MachineError::InvalidCacheGeometry {
                reason: format!("cluster {cluster_index} has an empty register file"),
            });
        }
        self.cache.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CacheGeometry {
        CacheGeometry::direct_mapped(4096)
    }

    #[test]
    fn fu_counts_and_issue_width() {
        let c = ClusterConfig::new(2, 2, 2, 32, cache());
        assert_eq!(c.fu_count(FuKind::Integer), 2);
        assert_eq!(c.fu_count(FuKind::Float), 2);
        assert_eq!(c.fu_count(FuKind::Memory), 2);
        assert_eq!(c.issue_width(), 6);
        assert!(c.validate(0).is_ok());
    }

    #[test]
    fn functional_units_enumeration() {
        let c = ClusterConfig::new(1, 2, 1, 16, cache());
        let units: Vec<_> = c.functional_units().collect();
        assert_eq!(units.len(), 4);
        assert_eq!(units[0], FunctionalUnit::new(FuKind::Integer, 0));
        assert_eq!(units[1], FunctionalUnit::new(FuKind::Float, 0));
        assert_eq!(units[2], FunctionalUnit::new(FuKind::Float, 1));
        assert_eq!(units[3], FunctionalUnit::new(FuKind::Memory, 0));
    }

    #[test]
    fn empty_cluster_is_rejected() {
        let c = ClusterConfig::new(0, 0, 0, 32, cache());
        assert_eq!(
            c.validate(5),
            Err(MachineError::EmptyCluster { cluster: 5 })
        );
    }

    #[test]
    fn empty_register_file_is_rejected() {
        let c = ClusterConfig::new(1, 1, 1, 0, cache());
        assert!(c.validate(0).is_err());
    }

    #[test]
    fn invalid_cache_is_rejected() {
        let mut bad = cache();
        bad.block_bytes = 3;
        let c = ClusterConfig::new(1, 1, 1, 32, bad);
        assert!(c.validate(0).is_err());
    }
}
