//! The machine configurations of Table 1 of the paper.
//!
//! All three configurations are 12-issue machines with an 8 KB total L1 data
//! cache split evenly among the clusters (direct-mapped, non-blocking with 10
//! MSHR entries, 2-cycle local hit, 10-cycle main memory):
//!
//! | configuration | clusters | FUs per cluster (int/fp/mem) | registers per cluster |
//! |---------------|----------|------------------------------|-----------------------|
//! | `unified`     | 1        | 4 / 4 / 4                    | 64                    |
//! | `two_cluster` | 2        | 2 / 2 / 2                    | 32                    |
//! | `four_cluster`| 4        | 1 / 1 / 1                    | 16                    |
//!
//! Bus configurations are left at the "realistic" defaults used in Section
//! 5.3 (2 register buses of latency 1, 1 memory bus of latency 1); the bus
//! sweeps of Figures 5 and 6 override them with
//! [`MachineConfig::with_register_buses`] / [`MachineConfig::with_memory_buses`].

use crate::bus::BusConfig;
use crate::cache_geom::CacheGeometry;
use crate::cluster::ClusterConfig;
use crate::latency::OperationLatencies;
use crate::machine::{split_cache, MachineConfig};

/// Total L1 data cache capacity shared by every Table-1 configuration (8 KB).
pub const TOTAL_L1_BYTES: u64 = 8 * 1024;

/// Total issue width of every Table-1 configuration.
pub const TOTAL_ISSUE_WIDTH: usize = 12;

/// Total number of architectural registers of every Table-1 configuration.
pub const TOTAL_REGISTERS: usize = 64;

fn preset(
    name: &str,
    num_clusters: usize,
    fus_per_kind: usize,
    regs_per_cluster: usize,
) -> MachineConfig {
    let cache = split_cache(CacheGeometry::direct_mapped(TOTAL_L1_BYTES), num_clusters);
    MachineConfig::builder(name)
        .homogeneous_clusters(
            num_clusters,
            ClusterConfig::new(
                fus_per_kind,
                fus_per_kind,
                fus_per_kind,
                regs_per_cluster,
                cache,
            ),
        )
        .register_buses(BusConfig::finite(2, 1))
        .memory_buses(BusConfig::finite(1, 1))
        .latencies(OperationLatencies::paper_defaults())
        .build()
        .expect("table-1 presets are valid by construction")
}

/// The *Unified* baseline: a single cluster with 4 functional units of each
/// kind and a 64-entry register file.
#[must_use]
pub fn unified() -> MachineConfig {
    preset("unified", 1, 4, 64)
}

/// The 2-cluster configuration: 2 functional units of each kind and 32
/// registers per cluster.
#[must_use]
pub fn two_cluster() -> MachineConfig {
    preset("2-cluster", 2, 2, 32)
}

/// The 4-cluster configuration: 1 functional unit of each kind and 16
/// registers per cluster.
#[must_use]
pub fn four_cluster() -> MachineConfig {
    preset("4-cluster", 4, 1, 16)
}

/// The clustered configuration with `clusters` clusters (2 or 4), or the
/// unified machine for `clusters == 1`.
///
/// # Panics
///
/// Panics for cluster counts other than 1, 2 or 4, which are the only
/// configurations evaluated by the paper.
#[must_use]
pub fn by_cluster_count(clusters: usize) -> MachineConfig {
    match clusters {
        1 => unified(),
        2 => two_cluster(),
        4 => four_cluster(),
        other => panic!("the paper evaluates 1, 2 or 4 clusters, not {other}"),
    }
}

/// The 2-cluster machine used by the Section 3 motivating example: each
/// cluster has 1 arithmetic (floating-point) unit and 1 memory unit, a
/// direct-mapped local cache, one register bus with 2-cycle latency, 2-cycle
/// local cache hits, 2-cycle bus transactions and 10-cycle main memory.
#[must_use]
pub fn motivating_example_machine() -> MachineConfig {
    let cache = CacheGeometry::direct_mapped(1024);
    MachineConfig::builder("motivating-2-cluster")
        .homogeneous_clusters(2, ClusterConfig::new(1, 1, 1, 32, cache))
        .register_buses(BusConfig::finite(1, 2))
        .memory_buses(BusConfig::unbounded(2))
        .latencies(OperationLatencies {
            int_op: 1,
            fp_op: 2,
            load_hit: 2,
            store: 1,
            main_memory: 10,
        })
        .build()
        .expect("motivating example machine is valid by construction")
}

/// All three Table-1 configurations in presentation order.
#[must_use]
pub fn table1() -> Vec<MachineConfig> {
    vec![unified(), two_cluster(), four_cluster()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::FuKind;

    #[test]
    fn all_presets_are_12_issue_64_regs_8kb() {
        for m in table1() {
            assert_eq!(m.issue_width(), TOTAL_ISSUE_WIDTH, "{}", m.name);
            assert_eq!(m.total_registers(), TOTAL_REGISTERS, "{}", m.name);
            assert_eq!(m.total_cache_bytes(), TOTAL_L1_BYTES, "{}", m.name);
            assert!(m.validate().is_ok());
        }
    }

    #[test]
    fn unified_has_one_cluster_with_four_of_each() {
        let m = unified();
        assert!(m.is_unified());
        for kind in FuKind::ALL {
            assert_eq!(m.cluster(0).fu_count(kind), 4);
        }
        assert_eq!(m.cluster(0).register_file_size, 64);
        assert_eq!(m.cluster(0).cache.capacity_bytes, 8192);
    }

    #[test]
    fn two_cluster_splits_resources_in_half() {
        let m = two_cluster();
        assert_eq!(m.num_clusters(), 2);
        for (_, c) in m.clusters() {
            for kind in FuKind::ALL {
                assert_eq!(c.fu_count(kind), 2);
            }
            assert_eq!(c.register_file_size, 32);
            assert_eq!(c.cache.capacity_bytes, 4096);
        }
    }

    #[test]
    fn four_cluster_splits_resources_in_four() {
        let m = four_cluster();
        assert_eq!(m.num_clusters(), 4);
        for (_, c) in m.clusters() {
            for kind in FuKind::ALL {
                assert_eq!(c.fu_count(kind), 1);
            }
            assert_eq!(c.register_file_size, 16);
            assert_eq!(c.cache.capacity_bytes, 2048);
        }
    }

    #[test]
    fn by_cluster_count_dispatches() {
        assert_eq!(by_cluster_count(1).num_clusters(), 1);
        assert_eq!(by_cluster_count(2).num_clusters(), 2);
        assert_eq!(by_cluster_count(4).num_clusters(), 4);
    }

    #[test]
    #[should_panic(expected = "1, 2 or 4 clusters")]
    fn by_cluster_count_rejects_other_counts() {
        let _ = by_cluster_count(3);
    }

    #[test]
    fn motivating_machine_matches_section3() {
        let m = motivating_example_machine();
        assert_eq!(m.num_clusters(), 2);
        assert_eq!(m.register_buses.latency, 2);
        assert_eq!(m.register_buses.count.finite(), Some(1));
        assert_eq!(m.latencies.load_hit, 2);
        assert_eq!(m.latencies.main_memory, 10);
        // Miss latency of the example: 2 + 2 + 10 = 14.
        assert_eq!(m.load_miss_latency(), 14);
    }
}
