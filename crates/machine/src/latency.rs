//! Operation latencies of the multiVLIWprocessor (Table 1).
//!
//! The paper's evaluation uses a 2-cycle local-cache hit, a 10-cycle main
//! memory access and parameterised bus latencies. Arithmetic latencies follow
//! the motivating example of Section 3 (2-cycle arithmetic operations); the
//! exact values are configurable so that sensitivity studies are possible.

use crate::error::MachineError;

/// Latencies (in cycles) of the operation classes executed by the machine.
///
/// All latencies are *defined* latencies as seen by the static scheduler: the
/// number of cycles between the issue of an operation and the first cycle in
/// which a dependent operation may issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperationLatencies {
    /// Integer arithmetic / logic operations.
    pub int_op: u32,
    /// Floating-point arithmetic operations.
    pub fp_op: u32,
    /// Load that hits in the local L1 data cache (the optimistic latency the
    /// scheduler assumes by default).
    pub load_hit: u32,
    /// Store operation (occupies the memory port; produces no register value).
    pub store: u32,
    /// Access to main memory, once a miss request reaches it.
    pub main_memory: u32,
}

impl OperationLatencies {
    /// Latencies used throughout the paper's evaluation (Table 1 and the
    /// Section 3 example): 1-cycle integer ops, 2-cycle floating-point ops,
    /// 2-cycle local cache hit, 1-cycle store issue, 10-cycle main memory.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            int_op: 1,
            fp_op: 2,
            load_hit: 2,
            store: 1,
            main_memory: 10,
        }
    }

    /// Validates that every latency that must be positive is positive.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidLatency`] naming the offending field.
    pub fn validate(&self) -> Result<(), MachineError> {
        let checks: [(&'static str, u32); 5] = [
            ("int_op", self.int_op),
            ("fp_op", self.fp_op),
            ("load_hit", self.load_hit),
            ("store", self.store),
            ("main_memory", self.main_memory),
        ];
        for (name, value) in checks {
            if value == 0 {
                return Err(MachineError::InvalidLatency { which: name });
            }
        }
        Ok(())
    }

    /// Latency the scheduler should assume for a load scheduled with the
    /// *cache-miss* latency (binding prefetching): local cache access plus a
    /// memory-bus transfer plus the main memory access, as defined in
    /// Section 4.3 of the paper.
    #[must_use]
    pub fn load_miss(&self, memory_bus_latency: u32) -> u32 {
        self.load_hit + memory_bus_latency + self.main_memory
    }
}

impl Default for OperationLatencies {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table1() {
        let lat = OperationLatencies::paper_defaults();
        assert_eq!(lat.load_hit, 2);
        assert_eq!(lat.main_memory, 10);
        assert_eq!(lat.fp_op, 2);
        assert!(lat.validate().is_ok());
    }

    #[test]
    fn default_equals_paper_defaults() {
        assert_eq!(
            OperationLatencies::default(),
            OperationLatencies::paper_defaults()
        );
    }

    #[test]
    fn zero_latency_is_rejected() {
        let mut lat = OperationLatencies::paper_defaults();
        lat.load_hit = 0;
        assert_eq!(
            lat.validate(),
            Err(MachineError::InvalidLatency { which: "load_hit" })
        );
        let mut lat = OperationLatencies::paper_defaults();
        lat.main_memory = 0;
        assert!(lat.validate().is_err());
    }

    #[test]
    fn miss_latency_is_hit_plus_bus_plus_memory() {
        let lat = OperationLatencies::paper_defaults();
        // Section 3 example: 2 (local cache) + 2 (bus) + 10 (memory) = 14.
        assert_eq!(lat.load_miss(2), 14);
        assert_eq!(lat.load_miss(1), 13);
        assert_eq!(lat.load_miss(4), 16);
    }
}
