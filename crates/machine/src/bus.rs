//! Inter-cluster buses: register buses and memory buses.
//!
//! Register buses carry register values between clusters under compiler
//! control (the `IN BUS` / `OUT BUS` instruction fields); memory buses carry
//! cache-miss traffic and coherence transactions under hardware control.

use crate::error::MachineError;
use std::fmt;

/// Which set of buses a configuration refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusKind {
    /// Compiler-managed register buses.
    Register,
    /// Hardware-managed memory buses (miss requests, fills, coherence).
    Memory,
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Register => f.write_str("register"),
            BusKind::Memory => f.write_str("memory"),
        }
    }
}

/// Number of buses in a bus set.
///
/// The paper evaluates both realistic bus counts and an *unbounded* number of
/// buses (Section 5.2) to isolate the effect of bus bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusCount {
    /// A fixed number of buses shared by all clusters.
    Finite(usize),
    /// An unlimited number of buses (a transfer never waits for a free bus).
    Unbounded,
}

impl BusCount {
    /// Returns the finite count, or `None` when unbounded.
    #[must_use]
    pub fn finite(self) -> Option<usize> {
        match self {
            BusCount::Finite(n) => Some(n),
            BusCount::Unbounded => None,
        }
    }

    /// Whether the count is unbounded.
    #[must_use]
    pub fn is_unbounded(self) -> bool {
        matches!(self, BusCount::Unbounded)
    }
}

impl fmt::Display for BusCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusCount::Finite(n) => write!(f, "{n}"),
            BusCount::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// Configuration of one set of buses (register or memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusConfig {
    /// How many buses are available.
    pub count: BusCount,
    /// Latency, in cycles, of one transfer over a bus. A bus stays busy for
    /// the entire latency of a transfer (Section 2.1).
    pub latency: u32,
}

impl BusConfig {
    /// A finite set of `count` buses with the given per-transfer latency.
    #[must_use]
    pub fn finite(count: usize, latency: u32) -> Self {
        Self {
            count: BusCount::Finite(count),
            latency,
        }
    }

    /// An unbounded set of buses with the given per-transfer latency.
    #[must_use]
    pub fn unbounded(latency: u32) -> Self {
        Self {
            count: BusCount::Unbounded,
            latency,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidBus`] when the latency is zero or a
    /// finite count is zero (a machine with more than one cluster needs at
    /// least one bus of each kind; that cross-check is done by
    /// [`crate::MachineConfig::validate`]).
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.latency == 0 {
            return Err(MachineError::InvalidBus {
                reason: "bus latency must be at least 1 cycle".into(),
            });
        }
        if let BusCount::Finite(0) = self.count {
            return Err(MachineError::InvalidBus {
                reason: "finite bus count must be at least 1".into(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for BusConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} bus(es), latency {}", self.count, self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_and_unbounded_constructors() {
        let b = BusConfig::finite(2, 1);
        assert_eq!(b.count.finite(), Some(2));
        assert!(!b.count.is_unbounded());
        assert!(b.validate().is_ok());

        let u = BusConfig::unbounded(4);
        assert_eq!(u.count.finite(), None);
        assert!(u.count.is_unbounded());
        assert!(u.validate().is_ok());
    }

    #[test]
    fn zero_latency_or_zero_count_rejected() {
        assert!(BusConfig::finite(1, 0).validate().is_err());
        assert!(BusConfig::finite(0, 1).validate().is_err());
        assert!(BusConfig::unbounded(0).validate().is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(BusConfig::finite(2, 1).to_string(), "2 bus(es), latency 1");
        assert_eq!(
            BusConfig::unbounded(4).to_string(),
            "unbounded bus(es), latency 4"
        );
        assert_eq!(BusKind::Register.to_string(), "register");
        assert_eq!(BusKind::Memory.to_string(), "memory");
    }
}
