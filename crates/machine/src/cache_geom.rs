//! Geometry of a local L1 data cache.

use crate::error::MachineError;

/// Geometry of a (set-associative) data cache.
///
/// The paper's local caches are direct-mapped, non-blocking and hold an equal
/// share of an 8 KB total L1 capacity; the geometry is nevertheless kept
/// general so that associativity and capacity studies are possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache block (line) size in bytes.
    pub block_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub associativity: u64,
    /// Number of MSHR entries of the non-blocking cache (Table 1 uses 10).
    pub mshr_entries: usize,
}

impl CacheGeometry {
    /// Creates a direct-mapped geometry with the paper's default 32-byte
    /// blocks and 10 MSHR entries.
    #[must_use]
    pub fn direct_mapped(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            block_bytes: 32,
            associativity: 1,
            mshr_entries: 10,
        }
    }

    /// Number of cache sets.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.capacity_bytes / (self.block_bytes * self.associativity)
    }

    /// Number of cache blocks.
    #[must_use]
    pub fn num_blocks(&self) -> u64 {
        self.capacity_bytes / self.block_bytes
    }

    /// Cache set index of a byte address.
    #[must_use]
    pub fn set_of(&self, address: u64) -> u64 {
        (address / self.block_bytes) % self.num_sets()
    }

    /// Block-aligned tag of a byte address (block number).
    #[must_use]
    pub fn block_of(&self, address: u64) -> u64 {
        address / self.block_bytes
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidCacheGeometry`] when the capacity or
    /// block size is zero, the block size is not a power of two, the capacity
    /// is not a multiple of `block_bytes * associativity`, or the MSHR has no
    /// entries.
    pub fn validate(&self) -> Result<(), MachineError> {
        let err = |reason: &str| MachineError::InvalidCacheGeometry {
            reason: reason.to_string(),
        };
        if self.capacity_bytes == 0 {
            return Err(err("capacity is zero"));
        }
        if self.block_bytes == 0 {
            return Err(err("block size is zero"));
        }
        if !self.block_bytes.is_power_of_two() {
            return Err(err("block size is not a power of two"));
        }
        if self.associativity == 0 {
            return Err(err("associativity is zero"));
        }
        if !self
            .capacity_bytes
            .is_multiple_of(self.block_bytes * self.associativity)
        {
            return Err(err(
                "capacity is not a multiple of block size times associativity",
            ));
        }
        if self.capacity_bytes < self.block_bytes {
            return Err(err("capacity is smaller than one block"));
        }
        if self.mshr_entries == 0 {
            return Err(err("MSHR has no entries"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_defaults() {
        let g = CacheGeometry::direct_mapped(4096);
        assert_eq!(g.associativity, 1);
        assert_eq!(g.block_bytes, 32);
        assert_eq!(g.num_sets(), 128);
        assert_eq!(g.num_blocks(), 128);
        assert_eq!(g.mshr_entries, 10);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn set_mapping_wraps_modulo_sets() {
        let g = CacheGeometry::direct_mapped(1024); // 32 sets
        assert_eq!(g.num_sets(), 32);
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(31), 0);
        assert_eq!(g.set_of(32), 1);
        // Addresses one cache-capacity apart map to the same set: ping-pong.
        assert_eq!(g.set_of(40), g.set_of(40 + 1024));
        assert_eq!(g.set_of(40), g.set_of(40 + 3 * 1024));
    }

    #[test]
    fn block_of_is_address_over_block_size() {
        let g = CacheGeometry::direct_mapped(4096);
        assert_eq!(g.block_of(0), 0);
        assert_eq!(g.block_of(31), 0);
        assert_eq!(g.block_of(32), 1);
        assert_eq!(g.block_of(64), 2);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        let mut g = CacheGeometry::direct_mapped(4096);
        g.capacity_bytes = 0;
        assert!(g.validate().is_err());

        let mut g = CacheGeometry::direct_mapped(4096);
        g.block_bytes = 48; // not a power of two
        assert!(g.validate().is_err());

        let mut g = CacheGeometry::direct_mapped(4096);
        g.block_bytes = 0;
        assert!(g.validate().is_err());

        let mut g = CacheGeometry::direct_mapped(4096);
        g.associativity = 0;
        assert!(g.validate().is_err());

        let mut g = CacheGeometry::direct_mapped(4096);
        g.mshr_entries = 0;
        assert!(g.validate().is_err());

        let mut g = CacheGeometry::direct_mapped(4096);
        g.capacity_bytes = 100; // not a multiple of the block size
        assert!(g.validate().is_err());
    }

    #[test]
    fn two_way_geometry_halves_sets() {
        let g = CacheGeometry {
            capacity_bytes: 4096,
            block_bytes: 32,
            associativity: 2,
            mshr_entries: 10,
        };
        assert!(g.validate().is_ok());
        assert_eq!(g.num_sets(), 64);
        assert_eq!(g.num_blocks(), 128);
    }
}
