//! Whole-machine configuration and builder.

use crate::bus::{BusConfig, BusCount};
use crate::cache_geom::CacheGeometry;
use crate::cluster::ClusterConfig;
use crate::error::MachineError;
use crate::fu::FuKind;
use crate::latency::OperationLatencies;
use std::fmt;

/// Identifier of a cluster within a [`MachineConfig`].
pub type ClusterId = usize;

/// Complete description of a multiVLIWprocessor configuration.
///
/// A machine is a set of clusters (usually homogeneous), a set of register
/// buses, a set of memory buses and the operation latencies of Table 1. The
/// *Unified* configuration of the paper is simply a machine with a single
/// cluster holding all resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Human-readable name (used in result tables, e.g. `"2-cluster"`).
    pub name: String,
    clusters: Vec<ClusterConfig>,
    /// Register-bus configuration (inter-cluster register communication).
    pub register_buses: BusConfig,
    /// Memory-bus configuration (miss and coherence traffic).
    pub memory_buses: BusConfig,
    /// Operation latencies.
    pub latencies: OperationLatencies,
}

impl MachineConfig {
    /// Starts building a machine with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> MachineBuilder {
        MachineBuilder::new(name)
    }

    /// Number of clusters.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Whether this is a single-cluster (unified) machine.
    #[must_use]
    pub fn is_unified(&self) -> bool {
        self.clusters.len() == 1
    }

    /// The configuration of cluster `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; use [`MachineConfig::try_cluster`] for
    /// a fallible accessor.
    #[must_use]
    pub fn cluster(&self, id: ClusterId) -> &ClusterConfig {
        &self.clusters[id]
    }

    /// Fallible accessor for the configuration of cluster `id`.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::InvalidCluster`] when `id` is out of range.
    pub fn try_cluster(&self, id: ClusterId) -> Result<&ClusterConfig, MachineError> {
        self.clusters.get(id).ok_or(MachineError::InvalidCluster {
            cluster: id,
            num_clusters: self.clusters.len(),
        })
    }

    /// Iterator over `(ClusterId, &ClusterConfig)`.
    pub fn clusters(&self) -> impl Iterator<Item = (ClusterId, &ClusterConfig)> {
        self.clusters.iter().enumerate()
    }

    /// Iterator over all cluster identifiers.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> {
        0..self.clusters.len()
    }

    /// Total number of functional units of `kind` across all clusters.
    #[must_use]
    pub fn total_fu_count(&self, kind: FuKind) -> usize {
        self.clusters.iter().map(|c| c.fu_count(kind)).sum()
    }

    /// Total issue width (sum of the issue widths of all clusters).
    #[must_use]
    pub fn issue_width(&self) -> usize {
        self.clusters.iter().map(ClusterConfig::issue_width).sum()
    }

    /// Total number of architectural registers across all clusters.
    #[must_use]
    pub fn total_registers(&self) -> usize {
        self.clusters.iter().map(|c| c.register_file_size).sum()
    }

    /// Total L1 data-cache capacity across all clusters, in bytes.
    #[must_use]
    pub fn total_cache_bytes(&self) -> u64 {
        self.clusters.iter().map(|c| c.cache.capacity_bytes).sum()
    }

    /// Latency assumed by the scheduler for a load scheduled with the
    /// cache-miss latency on this machine (see
    /// [`OperationLatencies::load_miss`]).
    #[must_use]
    pub fn load_miss_latency(&self) -> u32 {
        self.latencies.load_miss(self.memory_buses.latency)
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violation found: no clusters, an invalid cluster,
    /// invalid bus configurations, or invalid latencies. A multi-cluster
    /// machine additionally requires at least one register bus and one memory
    /// bus (finite zero counts are already rejected by
    /// [`BusConfig::validate`]).
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.clusters.is_empty() {
            return Err(MachineError::NoClusters);
        }
        for (i, cluster) in self.clusters.iter().enumerate() {
            cluster.validate(i)?;
        }
        self.register_buses.validate()?;
        self.memory_buses.validate()?;
        self.latencies.validate()?;
        Ok(())
    }

    /// Returns a copy of this machine with a different register-bus
    /// configuration (convenient for bus sweeps).
    #[must_use]
    pub fn with_register_buses(&self, buses: BusConfig) -> Self {
        let mut m = self.clone();
        m.register_buses = buses;
        m
    }

    /// Returns a copy of this machine with a different memory-bus
    /// configuration (convenient for bus sweeps).
    #[must_use]
    pub fn with_memory_buses(&self, buses: BusConfig) -> Self {
        let mut m = self.clone();
        m.memory_buses = buses;
        m
    }

    /// Returns a copy of this machine with a different name.
    #[must_use]
    pub fn with_name(&self, name: impl Into<String>) -> Self {
        let mut m = self.clone();
        m.name = name.into();
        m
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cluster(s), {}-issue, {} regs, {} B L1, register buses: {}, memory buses: {}",
            self.name,
            self.num_clusters(),
            self.issue_width(),
            self.total_registers(),
            self.total_cache_bytes(),
            self.register_buses,
            self.memory_buses
        )
    }
}

/// Builder for [`MachineConfig`] (see `C-BUILDER`).
///
/// # Example
///
/// ```
/// use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig, OperationLatencies};
///
/// # fn main() -> Result<(), mvp_machine::MachineError> {
/// let cache = CacheGeometry::direct_mapped(4096);
/// let machine = MachineConfig::builder("custom")
///     .homogeneous_clusters(2, ClusterConfig::new(2, 2, 2, 32, cache))
///     .register_buses(BusConfig::finite(2, 1))
///     .memory_buses(BusConfig::finite(1, 4))
///     .latencies(OperationLatencies::paper_defaults())
///     .build()?;
/// assert_eq!(machine.num_clusters(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    name: String,
    clusters: Vec<ClusterConfig>,
    register_buses: BusConfig,
    memory_buses: BusConfig,
    latencies: OperationLatencies,
}

impl MachineBuilder {
    /// Creates a builder with paper-default buses (1 register bus of latency
    /// 1, 1 memory bus of latency 1) and paper-default latencies.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            clusters: Vec::new(),
            register_buses: BusConfig::finite(1, 1),
            memory_buses: BusConfig::finite(1, 1),
            latencies: OperationLatencies::paper_defaults(),
        }
    }

    /// Adds one cluster.
    #[must_use]
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.clusters.push(cluster);
        self
    }

    /// Adds `count` identical clusters.
    #[must_use]
    pub fn homogeneous_clusters(mut self, count: usize, cluster: ClusterConfig) -> Self {
        for _ in 0..count {
            self.clusters.push(cluster.clone());
        }
        self
    }

    /// Sets the register-bus configuration.
    #[must_use]
    pub fn register_buses(mut self, buses: BusConfig) -> Self {
        self.register_buses = buses;
        self
    }

    /// Sets the memory-bus configuration.
    #[must_use]
    pub fn memory_buses(mut self, buses: BusConfig) -> Self {
        self.memory_buses = buses;
        self
    }

    /// Sets the operation latencies.
    #[must_use]
    pub fn latencies(mut self, latencies: OperationLatencies) -> Self {
        self.latencies = latencies;
        self
    }

    /// Builds and validates the machine.
    ///
    /// # Errors
    ///
    /// Propagates any validation error from [`MachineConfig::validate`].
    pub fn build(self) -> Result<MachineConfig, MachineError> {
        let machine = MachineConfig {
            name: self.name,
            clusters: self.clusters,
            register_buses: self.register_buses,
            memory_buses: self.memory_buses,
            latencies: self.latencies,
        };
        machine.validate()?;
        Ok(machine)
    }
}

/// Splits a total cache capacity evenly among `num_clusters` clusters,
/// preserving block size, associativity and MSHR configuration.
#[must_use]
pub fn split_cache(total: CacheGeometry, num_clusters: usize) -> CacheGeometry {
    let clusters = num_clusters.max(1) as u64;
    CacheGeometry {
        capacity_bytes: total.capacity_bytes / clusters,
        ..total
    }
}

/// Convenience alias used by schedulers when a bus count is needed as a
/// number: unbounded bus sets are represented as `usize::MAX`.
#[must_use]
pub fn effective_bus_count(count: BusCount) -> usize {
    match count {
        BusCount::Finite(n) => n,
        BusCount::Unbounded => usize::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(regs: usize) -> ClusterConfig {
        ClusterConfig::new(1, 1, 1, regs, CacheGeometry::direct_mapped(2048))
    }

    #[test]
    fn builder_builds_valid_machine() {
        let m = MachineConfig::builder("test")
            .homogeneous_clusters(4, cluster(16))
            .register_buses(BusConfig::finite(2, 1))
            .memory_buses(BusConfig::finite(1, 4))
            .build()
            .unwrap();
        assert_eq!(m.num_clusters(), 4);
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.total_registers(), 64);
        assert_eq!(m.total_cache_bytes(), 8192);
        assert_eq!(m.total_fu_count(FuKind::Memory), 4);
        assert!(!m.is_unified());
    }

    #[test]
    fn empty_machine_is_rejected() {
        let err = MachineConfig::builder("empty").build().unwrap_err();
        assert_eq!(err, MachineError::NoClusters);
    }

    #[test]
    fn invalid_cluster_propagates() {
        let bad = ClusterConfig::new(0, 0, 0, 16, CacheGeometry::direct_mapped(2048));
        let err = MachineConfig::builder("bad")
            .cluster(bad)
            .build()
            .unwrap_err();
        assert_eq!(err, MachineError::EmptyCluster { cluster: 0 });
    }

    #[test]
    fn try_cluster_bounds_check() {
        let m = MachineConfig::builder("test")
            .homogeneous_clusters(2, cluster(32))
            .build()
            .unwrap();
        assert!(m.try_cluster(1).is_ok());
        assert_eq!(
            m.try_cluster(2),
            Err(MachineError::InvalidCluster {
                cluster: 2,
                num_clusters: 2
            })
        );
    }

    #[test]
    fn with_buses_overrides() {
        let m = MachineConfig::builder("test")
            .homogeneous_clusters(2, cluster(32))
            .build()
            .unwrap();
        let m2 = m.with_memory_buses(BusConfig::unbounded(4));
        assert!(m2.memory_buses.count.is_unbounded());
        assert_eq!(m2.memory_buses.latency, 4);
        let m3 = m.with_register_buses(BusConfig::finite(3, 2));
        assert_eq!(m3.register_buses.count.finite(), Some(3));
        let m4 = m.with_name("renamed");
        assert_eq!(m4.name, "renamed");
    }

    #[test]
    fn split_cache_divides_capacity() {
        let total = CacheGeometry::direct_mapped(8192);
        let per_cluster = split_cache(total, 4);
        assert_eq!(per_cluster.capacity_bytes, 2048);
        assert_eq!(per_cluster.block_bytes, total.block_bytes);
        let unified = split_cache(total, 1);
        assert_eq!(unified.capacity_bytes, 8192);
        // Degenerate zero-cluster input behaves as one cluster.
        assert_eq!(split_cache(total, 0).capacity_bytes, 8192);
    }

    #[test]
    fn effective_bus_count_maps_unbounded_to_max() {
        assert_eq!(effective_bus_count(BusCount::Finite(2)), 2);
        assert_eq!(effective_bus_count(BusCount::Unbounded), usize::MAX);
    }

    #[test]
    fn display_contains_name_and_cluster_count() {
        let m = MachineConfig::builder("demo")
            .homogeneous_clusters(2, cluster(32))
            .build()
            .unwrap();
        let s = m.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("2 cluster"));
    }
}
