//! Property-style tests of the machine-model data structures, driven by a
//! seeded RNG sweep (the workspace builds without `proptest`).

use mvp_machine::{presets, CacheGeometry, FuKind, ModuloReservationTable};
use mvp_testutil::SplitMix64;

/// Set indices always stay inside the set array, and addresses within the
/// same block map to the same set.
#[test]
fn cache_set_mapping_is_total_and_block_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0xD44D);
    for _ in 0..256 {
        let capacity_exp = rng.gen_range_inclusive(8, 15) as u32; // 256 B .. 32 KB
        let block_exp = rng.gen_range_inclusive(4, 6) as u32; // 16 .. 64 B blocks
        let address = rng.next_u64() % (1 << 40);
        let offset = rng.gen_index(16) as u64;

        let geometry = CacheGeometry {
            capacity_bytes: 1 << capacity_exp,
            block_bytes: 1 << block_exp,
            associativity: 1,
            mshr_entries: 10,
        };
        if geometry.validate().is_err() {
            continue;
        }
        let set = geometry.set_of(address);
        assert!(set < geometry.num_sets());
        // An address in the same block maps to the same set and block.
        let same_block =
            address - (address % geometry.block_bytes) + (offset % geometry.block_bytes);
        assert_eq!(geometry.set_of(same_block), set);
        assert_eq!(geometry.block_of(same_block), geometry.block_of(address));
    }
}

/// A functional-unit row never accepts more reservations than the cluster
/// has units of that kind, and releasing restores the capacity.
#[test]
fn mrt_fu_capacity_is_respected() {
    let mut rng = SplitMix64::seed_from_u64(0xE55E);
    for _ in 0..128 {
        let ii = rng.gen_range_inclusive(1, 11) as u32;
        let cycle = rng.gen_index(200) as u32;
        let extra = rng.gen_range_inclusive(1, 3) as u32;

        let machine = presets::two_cluster();
        let mut mrt = ModuloReservationTable::new(&machine, ii).unwrap();
        let kind = FuKind::Memory;
        let capacity = machine.cluster(0).fu_count(kind);
        let mut slots = Vec::new();
        let mut token = 0;
        // Fill the row completely.
        while let Some(slot) = mrt.reserve_fu(0, kind, cycle, token) {
            slots.push(slot);
            token += 1;
            assert!(slots.len() <= capacity);
        }
        assert_eq!(slots.len(), capacity);
        // Any cycle mapping to the same row is also full.
        assert!(!mrt.has_free_fu(0, kind, cycle + extra * ii));
        // Releasing one slot frees exactly one reservation.
        mrt.release_fu(slots.pop().unwrap());
        assert!(mrt.has_free_fu(0, kind, cycle));
        assert_eq!(mrt.free_fu_slots(0, kind, cycle), 1);
    }
}

/// Register-bus transfers never overlap on the same bus and releasing
/// them restores full capacity.
#[test]
fn mrt_register_bus_reservations_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0xF66F);
    for _ in 0..128 {
        let ii = rng.gen_range_inclusive(2, 9) as u32;
        let start = rng.gen_index(40) as u32;

        let machine = presets::two_cluster(); // 2 buses, latency 1
        let mut mrt = ModuloReservationTable::new(&machine, ii).unwrap();
        let mut reserved = Vec::new();
        let mut cycle = start;
        while let Some(slot) = mrt.reserve_register_bus(cycle, cycle) {
            reserved.push(slot);
            cycle += 1;
            assert!(reserved.len() <= 2 * ii as usize);
        }
        // With 2 buses of latency 1 the table holds exactly 2 * II transfers.
        assert_eq!(reserved.len(), 2 * ii as usize);
        for slot in reserved {
            mrt.release_register_bus(slot);
        }
        assert_eq!(mrt.num_transfers(), 0);
        assert!(mrt.can_reserve_register_bus(start));
    }
}
