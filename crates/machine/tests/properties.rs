//! Property-style tests of the machine-model data structures, driven by a
//! seeded RNG sweep (the workspace builds without `proptest`).

use mvp_machine::CacheGeometry;
use mvp_testutil::SplitMix64;

/// Set indices always stay inside the set array, and addresses within the
/// same block map to the same set.
#[test]
fn cache_set_mapping_is_total_and_block_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0xD44D);
    for _ in 0..256 {
        let capacity_exp = rng.gen_range_inclusive(8, 15) as u32; // 256 B .. 32 KB
        let block_exp = rng.gen_range_inclusive(4, 6) as u32; // 16 .. 64 B blocks
        let address = rng.next_u64() % (1 << 40);
        let offset = rng.gen_index(16) as u64;

        let geometry = CacheGeometry {
            capacity_bytes: 1 << capacity_exp,
            block_bytes: 1 << block_exp,
            associativity: 1,
            mshr_entries: 10,
        };
        if geometry.validate().is_err() {
            continue;
        }
        let set = geometry.set_of(address);
        assert!(set < geometry.num_sets());
        // An address in the same block maps to the same set and block.
        let same_block =
            address - (address % geometry.block_bytes) + (offset % geometry.block_bytes);
        assert_eq!(geometry.set_of(same_block), set);
        assert_eq!(geometry.block_of(same_block), geometry.block_of(address));
    }
}

// Modulo reservation round-trip properties (functional-unit capacity, bus
// occupancy) live with the shared constraint kernel:
// `crates/resmodel/tests/properties.rs`.
