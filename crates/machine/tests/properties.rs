//! Property-based tests of the machine-model data structures.

use mvp_machine::{presets, CacheGeometry, FuKind, ModuloReservationTable};
use proptest::prelude::*;

proptest! {
    /// Set indices always stay inside the set array, and addresses within the
    /// same block map to the same set.
    #[test]
    fn cache_set_mapping_is_total_and_block_consistent(
        capacity_exp in 8u32..16,     // 256 B .. 32 KB
        block_exp in 4u32..7,         // 16 .. 64 B blocks
        address in 0u64..(1 << 40),
        offset in 0u64..16,
    ) {
        let geometry = CacheGeometry {
            capacity_bytes: 1 << capacity_exp,
            block_bytes: 1 << block_exp,
            associativity: 1,
            mshr_entries: 10,
        };
        prop_assume!(geometry.validate().is_ok());
        let set = geometry.set_of(address);
        prop_assert!(set < geometry.num_sets());
        // An address in the same block maps to the same set and block.
        let same_block = address - (address % geometry.block_bytes) + (offset % geometry.block_bytes);
        prop_assert_eq!(geometry.set_of(same_block), set);
        prop_assert_eq!(geometry.block_of(same_block), geometry.block_of(address));
    }

    /// A functional-unit row never accepts more reservations than the cluster
    /// has units of that kind, and releasing restores the capacity.
    #[test]
    fn mrt_fu_capacity_is_respected(ii in 1u32..12, cycle in 0u32..200, extra in 1u32..4) {
        let machine = presets::two_cluster();
        let mut mrt = ModuloReservationTable::new(&machine, ii).unwrap();
        let kind = FuKind::Memory;
        let capacity = machine.cluster(0).fu_count(kind);
        let mut slots = Vec::new();
        let mut token = 0;
        // Fill the row completely.
        while let Some(slot) = mrt.reserve_fu(0, kind, cycle, token) {
            slots.push(slot);
            token += 1;
            prop_assert!(slots.len() <= capacity);
        }
        prop_assert_eq!(slots.len(), capacity);
        // Any cycle mapping to the same row is also full.
        prop_assert!(!mrt.has_free_fu(0, kind, cycle + extra * ii));
        // Releasing one slot frees exactly one reservation.
        mrt.release_fu(slots.pop().unwrap());
        prop_assert!(mrt.has_free_fu(0, kind, cycle));
        prop_assert_eq!(mrt.free_fu_slots(0, kind, cycle), 1);
    }

    /// Register-bus transfers never overlap on the same bus and releasing
    /// them restores full capacity.
    #[test]
    fn mrt_register_bus_reservations_round_trip(ii in 2u32..10, start in 0u32..40) {
        let machine = presets::two_cluster(); // 2 buses, latency 1
        let mut mrt = ModuloReservationTable::new(&machine, ii).unwrap();
        let mut reserved = Vec::new();
        let mut cycle = start;
        while let Some(slot) = mrt.reserve_register_bus(cycle, cycle) {
            reserved.push(slot);
            cycle += 1;
            prop_assert!(reserved.len() <= 2 * ii as usize);
        }
        // With 2 buses of latency 1 the table holds exactly 2 * II transfers.
        prop_assert_eq!(reserved.len(), 2 * ii as usize);
        for slot in reserved {
            mrt.release_register_bus(slot);
        }
        prop_assert_eq!(mrt.num_transfers(), 0);
        prop_assert!(mrt.can_reserve_register_bus(start));
    }
}
