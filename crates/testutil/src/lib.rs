//! Dependency-free test and micro-benchmark utilities.
//!
//! The workspace builds without any external crates, so the pieces that
//! would normally come from `rand`, `proptest` and `criterion` live here:
//!
//! * [`rng`] — a seeded SplitMix64 generator used by the random-loop
//!   generator and the property-style tests,
//! * [`microbench`] — a small criterion-compatible micro-benchmark harness
//!   used by the `benches/` targets of `mvp-bench`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod microbench;
pub mod rng;

pub use microbench::{BenchmarkId, Criterion};
pub use rng::SplitMix64;
