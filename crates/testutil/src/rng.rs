//! Small deterministic pseudo-random number generator.
//!
//! The workspace builds without external dependencies, so the loop generator
//! and the property tests use this SplitMix64 generator instead of `rand`.
//! SplitMix64 passes BigCrush for the statistics that matter here (uniform
//! index and Bernoulli draws) and is trivially reproducible from a `u64`
//! seed.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index needs a non-empty range");
        // Multiply-shift; the bias for n << 2^64 is negligible for tests.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Returns a uniform value in the inclusive range `lo..=hi`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "gen_range_inclusive needs lo <= hi");
        lo + self.gen_index(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b = SplitMix64::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SplitMix64::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range_inclusive(3, 7);
            assert!((3..=7).contains(&v));
            assert!(r.gen_index(5) < 5);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
