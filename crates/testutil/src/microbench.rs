//! Criterion-compatible micro-benchmark harness.
//!
//! The benches under `crates/bench/benches/` were written against the
//! criterion API. This module provides the small subset they use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`] and the [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — backed by a plain
//! [`std::time::Instant`] timing loop, so `cargo bench` works
//! without network access. Results (min / median / mean per sample) are
//! printed to stdout.
//!
//! # Machine-readable output
//!
//! Setting the `MVP_MICROBENCH_CSV` environment variable (or calling
//! [`Criterion::with_csv_path`]) additionally appends one CSV row per
//! benchmark to the given file:
//!
//! ```csv
//! group,benchmark,min_ns,median_ns,mean_ns,samples
//! sched_throughput,rmca/tomcatv,81234,83012,83977,30
//! ```
//!
//! The header is written once, when the file is created or empty; repeated
//! runs append, so CI can collect one artifact per run and diff scheduler
//! throughput across commits.

use std::fmt::Display;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

/// Environment variable naming the CSV file benchmark results are appended
/// to (in addition to the stdout report).
pub const CSV_ENV_VAR: &str = "MVP_MICROBENCH_CSV";

#[derive(Debug)]
struct CsvSink {
    file: File,
}

impl CsvSink {
    fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut sink = Self { file };
        if sink.file.metadata()?.len() == 0 {
            writeln!(
                sink.file,
                "group,benchmark,min_ns,median_ns,mean_ns,samples"
            )?;
        }
        Ok(sink)
    }

    fn row(
        &mut self,
        group: &str,
        benchmark: &str,
        min: Duration,
        median: Duration,
        mean: Duration,
        samples: usize,
    ) {
        writeln!(
            self.file,
            "{group},{benchmark},{},{},{},{samples}",
            min.as_nanos(),
            median.as_nanos(),
            mean.as_nanos()
        )
        .expect("benchmark CSV row is writable");
    }
}

/// Entry point of a benchmark run; create one per `main` (the
/// [`criterion_main!`](crate::criterion_main) macro does this for you).
///
/// When the [`CSV_ENV_VAR`] environment variable is set, every benchmark
/// result is also appended to that CSV file (see the
/// [module documentation](self)).
#[derive(Debug)]
pub struct Criterion {
    csv: Option<CsvSink>,
}

impl Default for Criterion {
    fn default() -> Self {
        match std::env::var_os(CSV_ENV_VAR) {
            Some(path) => Self::with_csv_path(Path::new(&path)),
            None => Self { csv: None },
        }
    }
}

impl Criterion {
    /// Creates a harness that appends every result to the CSV file at
    /// `path` (creating it, with a header row, if needed).
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be opened for appending — CSV output is
    /// an explicit opt-in for CI tracking, and silently dropping it would
    /// defeat the purpose.
    #[must_use]
    pub fn with_csv_path(path: &Path) -> Self {
        let sink = CsvSink::open(path)
            .unwrap_or_else(|e| panic!("cannot open benchmark CSV {}: {e}", path.display()));
        Self { csv: Some(sink) }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 30,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        let mut samples = bencher.samples;
        samples.sort_unstable();
        let (min, median, mean) = if samples.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            let total: Duration = samples.iter().sum();
            (
                samples[0],
                samples[samples.len() / 2],
                total / samples.len() as u32,
            )
        };
        println!(
            "{}/{:<40} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({} samples)",
            self.name,
            id.label,
            min,
            median,
            mean,
            samples.len()
        );
        if let Some(sink) = &mut self.criterion.csv {
            sink.row(&self.name, &id.label, min, median, mean, samples.len());
        }
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Timing loop handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` runs of `f` after one untimed warm-up run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("count", 1), &2u64, |b, &two| {
            b.iter(|| {
                runs += 1;
                two * 2
            });
        });
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_render_function_and_parameter() {
        let id = BenchmarkId::new("sweep", 42);
        assert_eq!(id.label, "sweep/42");
    }

    #[test]
    fn csv_sink_writes_header_once_and_appends_rows() {
        let path = std::env::temp_dir().join(format!(
            "mvp-microbench-{}-{:?}.csv",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);

        for _ in 0..2 {
            let mut c = Criterion::with_csv_path(&path);
            let mut group = c.benchmark_group("csv_smoke");
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("noop", 1), &1u64, |b, &one| {
                b.iter(|| one + 1);
            });
            group.finish();
        }

        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        // One header plus one row per run: the header is not repeated on
        // append.
        assert_eq!(lines.len(), 3, "{contents}");
        assert_eq!(lines[0], "group,benchmark,min_ns,median_ns,mean_ns,samples");
        for row in &lines[1..] {
            assert!(row.starts_with("csv_smoke,noop/1,"), "{row}");
            assert!(row.ends_with(",2"), "{row}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
