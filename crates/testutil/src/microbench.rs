//! Criterion-compatible micro-benchmark harness.
//!
//! The benches under `crates/bench/benches/` were written against the
//! criterion API. This module provides the small subset they use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`] and the [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros — backed by a plain
//! [`std::time::Instant`] timing loop, so `cargo bench` works
//! without network access. Results (min / median / mean per sample) are
//! printed to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point of a benchmark run; create one per `main` (the
/// [`criterion_main!`](crate::criterion_main) macro does this for you).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 30,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark of the group with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        let mut samples = bencher.samples;
        samples.sort_unstable();
        let (min, median, mean) = if samples.is_empty() {
            (Duration::ZERO, Duration::ZERO, Duration::ZERO)
        } else {
            let total: Duration = samples.iter().sum();
            (
                samples[0],
                samples[samples.len() / 2],
                total / samples.len() as u32,
            )
        };
        println!(
            "{}/{:<40} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({} samples)",
            self.name,
            id.label,
            min,
            median,
            mean,
            samples.len()
        );
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Timing loop handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` runs of `f` after one untimed warm-up run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("count", 1), &2u64, |b, &two| {
            b.iter(|| {
                runs += 1;
                two * 2
            });
        });
        group.finish();
        // One warm-up + three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_ids_render_function_and_parameter() {
        let id = BenchmarkId::new("sweep", 42);
        assert_eq!(id.label, "sweep/42");
    }
}
