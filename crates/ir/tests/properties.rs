//! Property-style tests of the loop IR, driven by a seeded RNG sweep
//! (the workspace builds without `proptest`).

use mvp_ir::{mii, ArrayRef, DimId, Loop, LoopNest};
use mvp_machine::presets;
use mvp_testutil::SplitMix64;

/// Affine references are linear: the address difference between two
/// iteration vectors equals the dot product of the strides with the
/// iteration-vector difference.
#[test]
fn array_ref_addresses_are_affine() {
    let mut rng = SplitMix64::seed_from_u64(0xA11A);
    for _ in 0..256 {
        let base = rng.next_u64() % 1_000_000;
        let offset = rng.gen_index(4096) as i64;
        let s0 = rng.gen_index(128) as i64 - 64;
        let s1 = rng.gen_index(128) as i64 - 64;
        let iv_a = (rng.gen_index(100) as u64, rng.gen_index(100) as u64);
        let iv_b = (rng.gen_index(100) as u64, rng.gen_index(100) as u64);

        let r = ArrayRef::builder(mvp_ir::ArrayId::from_index(0))
            .offset(offset)
            .stride(DimId::from_index(0), s0)
            .stride(DimId::from_index(1), s1)
            .build();
        // Keep addresses positive.
        let base = base + 1_000_000;
        let a = r.address(base, &[iv_a.0, iv_a.1]) as i64;
        let b = r.address(base, &[iv_b.0, iv_b.1]) as i64;
        let expected = s0 * (iv_a.0 as i64 - iv_b.0 as i64) + s1 * (iv_a.1 as i64 - iv_b.1 as i64);
        assert_eq!(a - b, expected);
    }
}

/// The iteration-vector iterator visits exactly the product of the trip
/// counts, in lexicographic order.
#[test]
fn loop_nest_iteration_space_is_complete() {
    let mut rng = SplitMix64::seed_from_u64(0xB22B);
    for _ in 0..64 {
        let depth = rng.gen_range_inclusive(1, 3);
        let trips: Vec<u64> = (0..depth)
            .map(|_| rng.gen_range_inclusive(1, 5) as u64)
            .collect();
        let mut nest = LoopNest::new();
        for (k, &t) in trips.iter().enumerate() {
            nest.push_dimension(format!("D{k}"), t);
        }
        let points: Vec<Vec<u64>> = nest.iteration_vectors().collect();
        assert_eq!(points.len() as u64, trips.iter().product::<u64>());
        // Lexicographic and in-bounds.
        for w in points.windows(2) {
            assert!(w[0] < w[1]);
        }
        for p in &points {
            for (d, &x) in p.iter().enumerate() {
                assert!(x < trips[d]);
            }
        }
    }
}

/// The minimum II never exceeds the sum of all operation latencies and is
/// always at least 1; the scheduling order is a permutation.
#[test]
fn mii_and_ordering_are_well_formed() {
    let mut rng = SplitMix64::seed_from_u64(0xC33C);
    for _ in 0..128 {
        let n_ops = rng.gen_range_inclusive(2, 11);
        let back_edge = rng.gen_index(8);
        let distance = rng.gen_range_inclusive(1, 2) as u32;

        let mut b = Loop::builder("chain");
        let ops: Vec<_> = (0..n_ops).map(|k| b.fp_op(format!("F{k}"))).collect();
        for w in 0..n_ops - 1 {
            b.data_edge(ops[w], ops[w + 1], 0);
        }
        // Optional loop-carried back edge to form a recurrence.
        let src = back_edge.min(n_ops - 1);
        b.data_edge(ops[n_ops - 1], ops[src], distance);
        let l = b.build().unwrap();
        let machine = presets::unified();
        let bound = mii::minimum_ii(&l, &machine);
        assert!(bound >= 1);
        assert!(bound <= 2 * n_ops as u32);
        let order = mvp_ir::ordering::schedule_order(&l, |op| {
            l.op(op).kind.hit_latency(&machine.latencies)
        });
        let mut seen: Vec<usize> = order.iter().map(|o| o.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..n_ops).collect::<Vec<_>>());
    }
}
