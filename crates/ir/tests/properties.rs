//! Property-based tests of the loop IR.

use mvp_ir::{mii, ArrayRef, DimId, Loop, LoopNest};
use mvp_machine::presets;
use proptest::prelude::*;

proptest! {
    /// Affine references are linear: the address difference between two
    /// iteration vectors equals the dot product of the strides with the
    /// iteration-vector difference.
    #[test]
    fn array_ref_addresses_are_affine(
        base in 0u64..1_000_000,
        offset in 0i64..4096,
        s0 in -64i64..64,
        s1 in -64i64..64,
        iv_a in (0u64..100, 0u64..100),
        iv_b in (0u64..100, 0u64..100),
    ) {
        let r = ArrayRef::builder(mvp_ir::ArrayId::from_index(0))
            .offset(offset)
            .stride(DimId::from_index(0), s0)
            .stride(DimId::from_index(1), s1)
            .build();
        // Keep addresses positive.
        let base = base + 1_000_000;
        let a = r.address(base, &[iv_a.0, iv_a.1]) as i64;
        let b = r.address(base, &[iv_b.0, iv_b.1]) as i64;
        let expected = s0 * (iv_a.0 as i64 - iv_b.0 as i64) + s1 * (iv_a.1 as i64 - iv_b.1 as i64);
        prop_assert_eq!(a - b, expected);
    }

    /// The iteration-vector iterator visits exactly the product of the trip
    /// counts, in lexicographic order.
    #[test]
    fn loop_nest_iteration_space_is_complete(trips in proptest::collection::vec(1u64..6, 1..4)) {
        let mut nest = LoopNest::new();
        for (k, &t) in trips.iter().enumerate() {
            nest.push_dimension(format!("D{k}"), t);
        }
        let points: Vec<Vec<u64>> = nest.iteration_vectors().collect();
        prop_assert_eq!(points.len() as u64, trips.iter().product::<u64>());
        // Lexicographic and in-bounds.
        for w in points.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for p in &points {
            for (d, &x) in p.iter().enumerate() {
                prop_assert!(x < trips[d]);
            }
        }
    }

    /// The minimum II never exceeds the sum of all operation latencies and is
    /// always at least 1; the scheduling order is a permutation.
    #[test]
    fn mii_and_ordering_are_well_formed(n_ops in 2usize..12, back_edge in 0usize..8, distance in 1u32..3) {
        let mut b = Loop::builder("chain");
        let ops: Vec<_> = (0..n_ops).map(|k| b.fp_op(format!("F{k}"))).collect();
        for w in 0..n_ops - 1 {
            b.data_edge(ops[w], ops[w + 1], 0);
        }
        // Optional loop-carried back edge to form a recurrence.
        let src = back_edge.min(n_ops - 1);
        b.data_edge(ops[n_ops - 1], ops[src], distance);
        let l = b.build().unwrap();
        let machine = presets::unified();
        let bound = mii::minimum_ii(&l, &machine);
        prop_assert!(bound >= 1);
        prop_assert!(bound <= 2 * n_ops as u32);
        let order = mvp_ir::ordering::schedule_order(&l, |op| l.op(op).kind.hit_latency(&machine.latencies));
        let mut seen: Vec<usize> = order.iter().map(|o| o.index()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_ops).collect::<Vec<_>>());
    }
}
