//! Arrays and affine array references.
//!
//! A reference is *affine* when the accessed element is a linear function of
//! the loop induction variables — the common case in the numeric codes the
//! paper evaluates and the prerequisite for the Cache Miss Equations
//! analysis. A reference computes a byte address
//!
//! ```text
//! addr(iv) = base(array) + offset + Σ_d stride_d * iv_d
//! ```
//!
//! where strides and the offset are expressed in bytes.

use crate::loop_nest::{DimId, LoopNest};
use std::fmt;

/// Identifier of an [`Array`] within a [`crate::Loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub(crate) u32);

impl ArrayId {
    /// Index of the array in [`crate::Loop::arrays`] order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an identifier from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array{}", self.0)
    }
}

/// A declared array (or scalar region) with a base address in the simulated
/// address space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Array {
    /// Identifier of the array.
    pub id: ArrayId,
    /// Name of the array (e.g. `"B"`).
    pub name: String,
    /// Base byte address of the array in the simulated address space. Base
    /// addresses matter: the Figure-3 ping-pong interference appears exactly
    /// when two arrays are a multiple of the cache capacity apart.
    pub base_address: u64,
    /// Size of the array in bytes (used for footprint statistics and for
    /// placing arrays without overlap).
    pub size_bytes: u64,
}

/// An affine reference into an array, attached to a load or store operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The referenced array.
    pub array: ArrayId,
    /// Constant byte offset from the array base.
    pub offset: i64,
    /// Byte stride per loop dimension, indexed by [`DimId::index`]. Missing
    /// entries (shorter vector) behave as stride 0.
    pub strides: Vec<i64>,
    /// Size in bytes of the accessed element (8 for double precision).
    pub element_bytes: u32,
}

impl ArrayRef {
    /// Starts building a reference to `array`.
    #[must_use]
    pub fn builder(array: ArrayId) -> ArrayRefBuilder {
        ArrayRefBuilder {
            array,
            offset: 0,
            strides: Vec::new(),
            element_bytes: 8,
        }
    }

    /// Byte stride of the reference along dimension `dim` (0 when the
    /// reference does not depend on that dimension).
    #[must_use]
    pub fn stride(&self, dim: DimId) -> i64 {
        self.strides.get(dim.index()).copied().unwrap_or(0)
    }

    /// Byte stride along the innermost dimension of `nest`.
    #[must_use]
    pub fn inner_stride(&self, nest: &LoopNest) -> i64 {
        nest.innermost().map_or(0, |d| self.stride(d))
    }

    /// Byte address accessed at iteration vector `iv`, given the base address
    /// of the referenced array.
    ///
    /// `iv` entries beyond the stride vector are ignored; missing entries
    /// behave as 0.
    #[must_use]
    pub fn address(&self, array_base: u64, iv: &[u64]) -> u64 {
        let mut addr = array_base as i64 + self.offset;
        for (d, stride) in self.strides.iter().enumerate() {
            let i = iv.get(d).copied().unwrap_or(0) as i64;
            addr += stride * i;
        }
        debug_assert!(addr >= 0, "affine reference computed a negative address");
        addr.max(0) as u64
    }

    /// Whether the reference touches a different address on consecutive
    /// iterations of the innermost loop of `nest`.
    #[must_use]
    pub fn varies_with_inner(&self, nest: &LoopNest) -> bool {
        self.inner_stride(nest) != 0
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{:+}", self.array, self.offset)?;
        for (d, s) in self.strides.iter().enumerate() {
            if *s != 0 {
                write!(f, " {:+}*i{}", s, d)?;
            }
        }
        write!(f, "]")
    }
}

/// Builder for [`ArrayRef`] (obtained from [`ArrayRef::builder`] or
/// [`crate::LoopBuilder::array_ref`]).
#[derive(Debug, Clone)]
pub struct ArrayRefBuilder {
    array: ArrayId,
    offset: i64,
    strides: Vec<i64>,
    element_bytes: u32,
}

impl ArrayRefBuilder {
    /// Sets the constant byte offset from the array base.
    #[must_use]
    pub fn offset(mut self, offset_bytes: i64) -> Self {
        self.offset = offset_bytes;
        self
    }

    /// Sets the byte stride along dimension `dim`.
    #[must_use]
    pub fn stride(mut self, dim: DimId, stride_bytes: i64) -> Self {
        if self.strides.len() <= dim.index() {
            self.strides.resize(dim.index() + 1, 0);
        }
        self.strides[dim.index()] = stride_bytes;
        self
    }

    /// Sets the element size in bytes (defaults to 8, double precision).
    #[must_use]
    pub fn element_bytes(mut self, bytes: u32) -> Self {
        self.element_bytes = bytes;
        self
    }

    /// Finishes building the reference.
    #[must_use]
    pub fn build(self) -> ArrayRef {
        ArrayRef {
            array: self.array,
            offset: self.offset,
            strides: self.strides,
            element_bytes: self.element_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loop_nest::LoopNest;

    fn nest_2d() -> (LoopNest, DimId, DimId) {
        let mut nest = LoopNest::new();
        let j = nest.push_dimension("J", 4);
        let i = nest.push_dimension("I", 8);
        (nest, j, i)
    }

    #[test]
    fn builder_sets_fields() {
        let (_, j, i) = nest_2d();
        let r = ArrayRef::builder(ArrayId::from_index(2))
            .offset(16)
            .stride(i, 8)
            .stride(j, 256)
            .element_bytes(4)
            .build();
        assert_eq!(r.array.index(), 2);
        assert_eq!(r.offset, 16);
        assert_eq!(r.stride(i), 8);
        assert_eq!(r.stride(j), 256);
        assert_eq!(r.element_bytes, 4);
        // A dimension never set has stride 0.
        assert_eq!(r.stride(DimId::from_index(7)), 0);
    }

    #[test]
    fn address_is_affine_in_the_iteration_vector() {
        let (_, j, i) = nest_2d();
        let r = ArrayRef::builder(ArrayId::from_index(0))
            .offset(8)
            .stride(i, 8)
            .stride(j, 64)
            .build();
        let base = 0x1000;
        assert_eq!(r.address(base, &[0, 0]), 0x1008);
        assert_eq!(r.address(base, &[0, 3]), 0x1008 + 24);
        assert_eq!(r.address(base, &[2, 3]), 0x1008 + 128 + 24);
        // Shorter iteration vectors treat missing dims as zero.
        assert_eq!(r.address(base, &[2]), 0x1008 + 128);
        assert_eq!(r.address(base, &[]), 0x1008);
    }

    #[test]
    fn negative_offsets_are_supported() {
        let (_, _, i) = nest_2d();
        let r = ArrayRef::builder(ArrayId::from_index(0))
            .offset(-8)
            .stride(i, 8)
            .build();
        assert_eq!(r.address(0x1000, &[0, 1]), 0x1000);
        assert_eq!(r.address(0x1000, &[0, 0]), 0x1000 - 8);
    }

    #[test]
    fn inner_stride_and_variation() {
        let (nest, j, i) = nest_2d();
        let varies = ArrayRef::builder(ArrayId::from_index(0))
            .stride(i, 8)
            .build();
        let constant = ArrayRef::builder(ArrayId::from_index(0))
            .stride(j, 8)
            .build();
        assert_eq!(varies.inner_stride(&nest), 8);
        assert!(varies.varies_with_inner(&nest));
        assert_eq!(constant.inner_stride(&nest), 0);
        assert!(!constant.varies_with_inner(&nest));
    }

    #[test]
    fn display_mentions_nonzero_strides_only() {
        let (_, j, i) = nest_2d();
        let r = ArrayRef::builder(ArrayId::from_index(1))
            .offset(8)
            .stride(i, 8)
            .stride(j, 0)
            .build();
        let s = r.to_string();
        assert!(s.contains("array1"));
        assert!(s.contains("+8*i1"));
        assert!(!s.contains("i0"));
    }
}
