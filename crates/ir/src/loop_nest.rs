//! Loop nests: the iteration space that memory references are affine in.
//!
//! The modulo schedulers of the paper pipeline the *innermost* loop of a
//! nest; the outer dimensions only matter for the locality analysis (they
//! determine how often the innermost loop is re-entered and with which base
//! offsets) and for the cycle model
//! `NCYCLE_compute = NTIMES * ((NITER + SC - 1) * II)`.

use std::fmt;

/// Identifier of a loop dimension within a [`LoopNest`]. Dimension 0 is the
/// outermost loop; the highest index is the innermost (pipelined) loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DimId(pub(crate) u32);

impl DimId {
    /// Index of the dimension (0 = outermost).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an identifier from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Display for DimId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dim{}", self.0)
    }
}

/// One dimension (induction variable) of a loop nest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopDim {
    /// Name of the induction variable (e.g. `"I"`).
    pub name: String,
    /// Number of iterations of this dimension.
    pub trip_count: u64,
}

/// A perfect loop nest. The innermost dimension is the pipelined loop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct LoopNest {
    dims: Vec<LoopDim>,
}

impl LoopNest {
    /// Creates an empty nest (no dimensions yet).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a dimension inside the current innermost one and returns its
    /// identifier.
    pub fn push_dimension(&mut self, name: impl Into<String>, trip_count: u64) -> DimId {
        let id = DimId(self.dims.len() as u32);
        self.dims.push(LoopDim {
            name: name.into(),
            trip_count,
        });
        id
    }

    /// Number of dimensions.
    #[must_use]
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Whether the nest has no dimensions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The dimensions, outermost first.
    #[must_use]
    pub fn dims(&self) -> &[LoopDim] {
        &self.dims
    }

    /// The dimension with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this nest.
    #[must_use]
    pub fn dim(&self, id: DimId) -> &LoopDim {
        &self.dims[id.index()]
    }

    /// Identifier of the innermost (pipelined) dimension, if any.
    #[must_use]
    pub fn innermost(&self) -> Option<DimId> {
        if self.dims.is_empty() {
            None
        } else {
            Some(DimId((self.dims.len() - 1) as u32))
        }
    }

    /// Trip count of the innermost dimension (`NITER` in the paper's cycle
    /// model); 1 when the nest is empty.
    #[must_use]
    pub fn inner_trip_count(&self) -> u64 {
        self.dims.last().map_or(1, |d| d.trip_count)
    }

    /// Product of the trip counts of all *outer* dimensions (`NTIMES` in the
    /// paper's cycle model); 1 when there is at most one dimension.
    #[must_use]
    pub fn outer_trip_count(&self) -> u64 {
        if self.dims.len() <= 1 {
            1
        } else {
            self.dims[..self.dims.len() - 1]
                .iter()
                .map(|d| d.trip_count)
                .product()
        }
    }

    /// Total number of points in the iteration space.
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.dims.iter().map(|d| d.trip_count).product()
    }

    /// Iterates over the iteration space in lexicographic order (outermost
    /// dimension slowest), yielding the full iteration vector.
    ///
    /// The iterator visits `total_iterations()` points; callers that only
    /// need a window should `take(..)` it.
    #[must_use]
    pub fn iteration_vectors(&self) -> IterationVectors {
        IterationVectors {
            trip_counts: self.dims.iter().map(|d| d.trip_count).collect(),
            current: vec![0; self.dims.len()],
            done: self.dims.iter().any(|d| d.trip_count == 0),
            started: false,
        }
    }
}

/// Iterator over the iteration vectors of a [`LoopNest`], produced by
/// [`LoopNest::iteration_vectors`].
#[derive(Debug, Clone)]
pub struct IterationVectors {
    trip_counts: Vec<u64>,
    current: Vec<u64>,
    done: bool,
    started: bool,
}

impl Iterator for IterationVectors {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.current.clone());
        }
        // Advance like an odometer, innermost dimension fastest.
        let mut level = self.current.len();
        loop {
            if level == 0 {
                self.done = true;
                return None;
            }
            level -= 1;
            self.current[level] += 1;
            if self.current[level] < self.trip_counts[level] {
                break;
            }
            self.current[level] = 0;
        }
        Some(self.current.clone())
    }
}

impl fmt::Display for LoopNest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dims.is_empty() {
            return f.write_str("<no loops>");
        }
        let parts: Vec<String> = self
            .dims
            .iter()
            .map(|d| format!("{}[0..{})", d.name, d.trip_count))
            .collect();
        f.write_str(&parts.join(" / "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query_dimensions() {
        let mut nest = LoopNest::new();
        assert!(nest.is_empty());
        assert_eq!(nest.innermost(), None);
        assert_eq!(nest.inner_trip_count(), 1);
        assert_eq!(nest.outer_trip_count(), 1);

        let j = nest.push_dimension("J", 10);
        let i = nest.push_dimension("I", 20);
        assert_eq!(nest.num_dims(), 2);
        assert_eq!(nest.dim(j).name, "J");
        assert_eq!(nest.dim(i).trip_count, 20);
        assert_eq!(nest.innermost(), Some(i));
        assert_eq!(nest.inner_trip_count(), 20);
        assert_eq!(nest.outer_trip_count(), 10);
        assert_eq!(nest.total_iterations(), 200);
    }

    #[test]
    fn iteration_vectors_are_lexicographic() {
        let mut nest = LoopNest::new();
        nest.push_dimension("J", 2);
        nest.push_dimension("I", 3);
        let points: Vec<Vec<u64>> = nest.iteration_vectors().collect();
        assert_eq!(
            points,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2],
            ]
        );
    }

    #[test]
    fn empty_nest_yields_one_empty_vector() {
        let nest = LoopNest::new();
        let points: Vec<Vec<u64>> = nest.iteration_vectors().collect();
        assert_eq!(points, vec![Vec::<u64>::new()]);
    }

    #[test]
    fn zero_trip_dimension_yields_nothing() {
        let mut nest = LoopNest::new();
        nest.push_dimension("I", 0);
        assert_eq!(nest.iteration_vectors().count(), 0);
        assert_eq!(nest.total_iterations(), 0);
    }

    #[test]
    fn display_shows_all_dimensions() {
        let mut nest = LoopNest::new();
        nest.push_dimension("J", 4);
        nest.push_dimension("I", 8);
        assert_eq!(nest.to_string(), "J[0..4) / I[0..8)");
        assert_eq!(LoopNest::new().to_string(), "<no loops>");
    }
}
