//! Node ordering for the unified assign-and-schedule pass.
//!
//! The paper reuses the ordering of its baseline scheduler \[22\]: nodes are
//! sorted so that, as far as possible, when a node is scheduled it has *only
//! predecessors or only successors* among the already-scheduled nodes — never
//! both — because a node squeezed between two already-placed neighbours has
//! the smallest scheduling window. Recurrence nodes come first (they are the
//! most constrained), ordered by the criticality of their recurrence.
//!
//! The implementation here is a faithful-in-spirit greedy version of that
//! ordering (the original is the swing-modulo-scheduling ordering): it starts
//! from the most critical node, then repeatedly extends the order with a
//! neighbour of the ordered set, preferring neighbours that do not yet have
//! both predecessors and successors ordered, breaking ties by height (for
//! successors-first growth) and by depth (for predecessors-first growth).

use crate::graph::Loop;
use crate::op::OpId;
use crate::recurrence;
use std::collections::HashSet;

/// Per-node priority information used by the ordering and by schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePriorities {
    /// Longest latency-weighted path from any graph source to the node
    /// (intra-iteration edges only).
    pub depth: Vec<u64>,
    /// Longest latency-weighted path from the node to any graph sink
    /// (intra-iteration edges only).
    pub height: Vec<u64>,
    /// Whether the node belongs to at least one recurrence.
    pub in_recurrence: Vec<bool>,
}

impl NodePriorities {
    /// Computes depth/height/recurrence membership for every node of `l`,
    /// using `latency_of` as the operation latency.
    pub fn compute(l: &Loop, mut latency_of: impl FnMut(OpId) -> u32) -> Self {
        let n = l.num_ops();
        let latencies: Vec<u64> = l.op_ids().map(|op| u64::from(latency_of(op))).collect();
        let order = topological_order_zero_distance(l);

        let mut depth = vec![0u64; n];
        for &node in &order {
            for edge in l.preds(OpId::from_index(node)) {
                if edge.distance != 0 {
                    continue;
                }
                let cand = depth[edge.src.index()] + latencies[edge.src.index()];
                if cand > depth[node] {
                    depth[node] = cand;
                }
            }
        }
        let mut height = vec![0u64; n];
        for &node in order.iter().rev() {
            height[node] = latencies[node];
            for edge in l.succs(OpId::from_index(node)) {
                if edge.distance != 0 {
                    continue;
                }
                let cand = latencies[node] + height[edge.dst.index()];
                if cand > height[node] {
                    height[node] = cand;
                }
            }
        }

        let rec_ops = recurrence::ops_in_recurrences(l);
        let in_recurrence = (0..n)
            .map(|i| rec_ops.contains(&OpId::from_index(i)))
            .collect();

        Self {
            depth,
            height,
            in_recurrence,
        }
    }
}

/// Topological order of the distance-0 subgraph (valid for any [`Loop`],
/// whose construction rejects distance-0 cycles).
fn topological_order_zero_distance(l: &Loop) -> Vec<usize> {
    let n = l.num_ops();
    let mut indegree = vec![0usize; n];
    for edge in l.edges() {
        if edge.distance == 0 {
            indegree[edge.dst.index()] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = ready.pop() {
        order.push(node);
        for edge in l.succs(OpId::from_index(node)) {
            if edge.distance != 0 {
                continue;
            }
            let d = edge.dst.index();
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.push(d);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "distance-0 subgraph must be acyclic");
    order
}

/// Computes the scheduling order of the loop's operations.
///
/// The returned permutation contains every operation exactly once.
pub fn schedule_order(l: &Loop, latency_of: impl FnMut(OpId) -> u32) -> Vec<OpId> {
    let n = l.num_ops();
    let prio = NodePriorities::compute(l, latency_of);
    let mut ordered: Vec<OpId> = Vec::with_capacity(n);
    let mut placed: HashSet<OpId> = HashSet::with_capacity(n);

    // Key for choosing the *seed* node of a new region: recurrence nodes
    // first, then the largest height (most critical), then smallest id for
    // determinism.
    let seed_key = |op: OpId| {
        (
            u64::from(prio.in_recurrence[op.index()]),
            prio.height[op.index()],
            u64::MAX - op.raw() as u64,
        )
    };

    while ordered.len() < n {
        // Candidate neighbours of the ordered set.
        let mut candidates: Vec<OpId> = Vec::new();
        for &done in &ordered {
            for edge in l.succs(done).chain(l.preds(done)) {
                for node in [edge.src, edge.dst] {
                    if !placed.contains(&node) && !candidates.contains(&node) {
                        candidates.push(node);
                    }
                }
            }
        }

        let next = if candidates.is_empty() {
            // Start a new connected region from the most critical node.
            l.op_ids()
                .filter(|op| !placed.contains(op))
                .max_by_key(|&op| seed_key(op))
                .expect("there are unordered nodes left")
        } else {
            // Prefer candidates that do not yet have both a predecessor and a
            // successor in the ordered set (the objective stated in [22]).
            let has_pred = |op: OpId| l.preds(op).any(|e| placed.contains(&e.src));
            let has_succ = |op: OpId| l.succs(op).any(|e| placed.contains(&e.dst));
            let key = |op: OpId| {
                let both = has_pred(op) && has_succ(op);
                let direction_priority = if has_pred(op) {
                    // Growing downwards: deeper (more critical from the top).
                    prio.height[op.index()]
                } else {
                    // Growing upwards: higher depth first.
                    prio.depth[op.index()]
                };
                (
                    u64::from(!both),
                    u64::from(prio.in_recurrence[op.index()]),
                    direction_priority,
                    u64::MAX - op.raw() as u64,
                )
            };
            candidates
                .into_iter()
                .max_by_key(|&op| key(op))
                .expect("candidate set is non-empty")
        };

        placed.insert(next);
        ordered.push(next);
    }
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::OperationLatencies;

    fn hit(l: &Loop) -> impl FnMut(OpId) -> u32 + '_ {
        let lat = OperationLatencies::paper_defaults();
        move |op| l.op(op).kind.hit_latency(&lat)
    }

    fn chain(n: usize) -> Loop {
        let mut b = Loop::builder("chain");
        let ops: Vec<_> = (0..n).map(|i| b.fp_op(format!("F{i}"))).collect();
        for w in 0..n - 1 {
            b.data_edge(ops[w], ops[w + 1], 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn order_is_a_permutation() {
        let l = chain(6);
        let order = schedule_order(&l, hit(&l));
        assert_eq!(order.len(), 6);
        let mut sorted: Vec<usize> = order.iter().map(|o| o.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn priorities_on_a_chain_decrease_with_position() {
        let l = chain(4);
        let prio = NodePriorities::compute(&l, hit(&l));
        // depth grows along the chain, height shrinks.
        assert!(prio.depth[0] < prio.depth[3]);
        assert!(prio.height[0] > prio.height[3]);
        assert_eq!(prio.depth[0], 0);
        assert_eq!(prio.height[3], 2);
        assert!(!prio.in_recurrence.iter().any(|&x| x));
    }

    #[test]
    fn recurrence_nodes_are_ordered_first() {
        let mut b = Loop::builder("mixed");
        // A 2-node recurrence plus an independent chain.
        let r1 = b.fp_op("R1");
        let r2 = b.fp_op("R2");
        b.data_edge(r1, r2, 0);
        b.data_edge(r2, r1, 1);
        let c1 = b.fp_op("C1");
        let c2 = b.fp_op("C2");
        b.data_edge(c1, c2, 0);
        let l = b.build().unwrap();
        let order = schedule_order(&l, hit(&l));
        let pos = |op: OpId| order.iter().position(|&o| o == op).unwrap();
        assert!(pos(r1).max(pos(r2)) < pos(c1).min(pos(c2)));
    }

    #[test]
    fn ordering_avoids_sandwiched_nodes_on_a_diamond() {
        // ld -> f1 -> st and ld -> f2 -> st: a good order never places both
        // ld and st before f1 (or f2).
        let mut b = Loop::builder("diamond");
        let ld = b.fp_op("LD");
        let f1 = b.fp_op("F1");
        let f2 = b.fp_op("F2");
        let st = b.fp_op("ST");
        b.data_edge(ld, f1, 0);
        b.data_edge(ld, f2, 0);
        b.data_edge(f1, st, 0);
        b.data_edge(f2, st, 0);
        let l = b.build().unwrap();
        let order = schedule_order(&l, hit(&l));
        let pos = |op: OpId| order.iter().position(|&o| o == op).unwrap();
        // Count nodes that, at ordering time, already had both a pred and a
        // succ ordered. For this diamond a good order has at most one.
        let mut sandwiched = 0;
        for (idx, &op) in order.iter().enumerate() {
            let before: HashSet<OpId> = order[..idx].iter().copied().collect();
            let has_pred = l.preds(op).any(|e| before.contains(&e.src));
            let has_succ = l.succs(op).any(|e| before.contains(&e.dst));
            if has_pred && has_succ {
                sandwiched += 1;
            }
        }
        assert!(
            sandwiched <= 1,
            "order {order:?} sandwiches {sandwiched} nodes"
        );
        // Sanity: the permutation covers every node.
        assert_eq!(pos(ld) + pos(f1) + pos(f2) + pos(st), 1 + 2 + 3);
    }

    #[test]
    fn disconnected_components_are_all_ordered() {
        let mut b = Loop::builder("disconnected");
        for i in 0..5 {
            b.fp_op(format!("F{i}"));
        }
        let l = b.build().unwrap();
        let order = schedule_order(&l, hit(&l));
        assert_eq!(order.len(), 5);
    }
}
