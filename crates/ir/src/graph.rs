//! The loop body: operations + dependence edges + iteration space + arrays.

use crate::array::{Array, ArrayId, ArrayRef, ArrayRefBuilder};
use crate::edge::DepEdge;
use crate::loop_nest::{DimId, LoopNest};
use crate::op::{OpId, OpKind, Operation};
use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a [`Loop`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// An edge refers to an operation that does not exist.
    UnknownOp {
        /// The offending identifier.
        op: OpId,
    },
    /// A memory reference points to an array that does not exist.
    UnknownArray {
        /// The offending identifier.
        array: ArrayId,
    },
    /// A memory reference uses a loop dimension outside the loop nest.
    StrideOutsideNest {
        /// Operation carrying the reference.
        op: OpId,
        /// Number of dimensions in the nest.
        nest_dims: usize,
        /// Number of stride entries in the reference.
        ref_dims: usize,
    },
    /// The intra-iteration (distance-0) dependence subgraph has a cycle, so no
    /// schedule exists.
    ZeroDistanceCycle {
        /// One operation on the cycle.
        op: OpId,
    },
    /// The loop has no operations.
    EmptyLoop,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownOp { op } => write!(f, "edge refers to unknown operation {op}"),
            IrError::UnknownArray { array } => {
                write!(f, "memory reference refers to unknown array {array}")
            }
            IrError::StrideOutsideNest {
                op,
                nest_dims,
                ref_dims,
            } => write!(
                f,
                "memory reference of {op} uses {ref_dims} dimensions but the loop nest has {nest_dims}"
            ),
            IrError::ZeroDistanceCycle { op } => write!(
                f,
                "intra-iteration dependence cycle through {op}; the loop body is unschedulable"
            ),
            IrError::EmptyLoop => write!(f, "loop has no operations"),
        }
    }
}

impl Error for IrError {}

/// A loop body ready for modulo scheduling: the data-dependence graph, the
/// loop nest it belongs to, and the arrays its memory operations reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    name: String,
    ops: Vec<Operation>,
    edges: Vec<DepEdge>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    nest: LoopNest,
    arrays: Vec<Array>,
    memory_refs: Vec<ArrayRef>,
}

impl Loop {
    /// Starts building a loop with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> LoopBuilder {
        LoopBuilder::new(name)
    }

    /// Name of the loop (e.g. `"tomcatv_l1"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations in the loop body.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// All operations, in identifier order.
    #[must_use]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Identifiers of all operations, in order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(OpId::from_index)
    }

    /// The operation with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this loop.
    #[must_use]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// All dependence edges.
    #[must_use]
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges whose destination is `id` (dependences `pred → id`).
    pub fn preds(&self, id: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.preds[id.index()].iter().map(move |&e| &self.edges[e])
    }

    /// Edges whose source is `id` (dependences `id → succ`).
    pub fn succs(&self, id: OpId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succs[id.index()].iter().map(move |&e| &self.edges[e])
    }

    /// The loop nest the body belongs to.
    #[must_use]
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// All declared arrays.
    #[must_use]
    pub fn arrays(&self) -> &[Array] {
        &self.arrays
    }

    /// The array with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this loop.
    #[must_use]
    pub fn array(&self, id: ArrayId) -> &Array {
        &self.arrays[id.index()]
    }

    /// All memory references, indexed by [`Operation::mem_ref`].
    #[must_use]
    pub fn memory_refs(&self) -> &[ArrayRef] {
        &self.memory_refs
    }

    /// The memory reference of operation `id`, if it is a load or store.
    #[must_use]
    pub fn memory_ref_of(&self, id: OpId) -> Option<&ArrayRef> {
        self.op(id).mem_ref.map(|i| &self.memory_refs[i])
    }

    /// Byte address accessed by memory operation `id` at iteration vector
    /// `iv`, or `None` for non-memory operations.
    #[must_use]
    pub fn address_of(&self, id: OpId, iv: &[u64]) -> Option<u64> {
        let r = self.memory_ref_of(id)?;
        Some(r.address(self.array(r.array).base_address, iv))
    }

    /// Identifiers of all memory operations (loads and stores), in order.
    pub fn memory_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops.iter().filter(|o| o.is_memory()).map(|o| o.id)
    }

    /// Identifiers of all load operations, in order.
    pub fn loads(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops.iter().filter(|o| o.is_load()).map(|o| o.id)
    }

    /// Number of operations of each [`OpKind`]: `(int, fp, load, store)`.
    #[must_use]
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for op in &self.ops {
            match op.kind {
                OpKind::IntOp => c.0 += 1,
                OpKind::FpOp => c.1 += 1,
                OpKind::Load => c.2 += 1,
                OpKind::Store => c.3 += 1,
            }
        }
        c
    }

    /// `NITER`: trip count of the pipelined (innermost) loop.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.nest.inner_trip_count()
    }

    /// `NTIMES`: how many times the innermost loop is entered (product of the
    /// outer trip counts).
    #[must_use]
    pub fn times_executed(&self) -> u64 {
        self.nest.outer_trip_count()
    }

    fn validate(&self) -> Result<(), IrError> {
        if self.ops.is_empty() {
            return Err(IrError::EmptyLoop);
        }
        for edge in &self.edges {
            for id in [edge.src, edge.dst] {
                if id.index() >= self.ops.len() {
                    return Err(IrError::UnknownOp { op: id });
                }
            }
        }
        for op in &self.ops {
            if let Some(r) = op.mem_ref.map(|i| &self.memory_refs[i]) {
                if r.array.index() >= self.arrays.len() {
                    return Err(IrError::UnknownArray { array: r.array });
                }
                if r.strides.len() > self.nest.num_dims() {
                    return Err(IrError::StrideOutsideNest {
                        op: op.id,
                        nest_dims: self.nest.num_dims(),
                        ref_dims: r.strides.len(),
                    });
                }
            }
        }
        self.check_zero_distance_acyclic()
    }

    /// Detects cycles in the distance-0 subgraph with an iterative
    /// three-colour DFS.
    fn check_zero_distance_acyclic(&self) -> Result<(), IrError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let n = self.ops.len();
        let mut colour = vec![Colour::White; n];
        for start in 0..n {
            if colour[start] != Colour::White {
                continue;
            }
            // Stack of (node, next-successor-index).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            colour[start] = Colour::Grey;
            while let Some(&(node, next)) = stack.last() {
                let succ_edges = &self.succs[node];
                if next < succ_edges.len() {
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    let edge = &self.edges[succ_edges[next]];
                    if edge.distance != 0 {
                        continue;
                    }
                    let target = edge.dst.index();
                    match colour[target] {
                        Colour::Grey => {
                            return Err(IrError::ZeroDistanceCycle { op: edge.dst });
                        }
                        Colour::White => {
                            colour[target] = Colour::Grey;
                            stack.push((target, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[node] = Colour::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Loop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ops, {} edges, nest {}",
            self.name,
            self.ops.len(),
            self.edges.len(),
            self.nest
        )
    }
}

/// Builder for [`Loop`] (see the crate-level example).
#[derive(Debug, Clone)]
pub struct LoopBuilder {
    name: String,
    ops: Vec<Operation>,
    edges: Vec<DepEdge>,
    nest: LoopNest,
    arrays: Vec<Array>,
    memory_refs: Vec<ArrayRef>,
    next_array_base: u64,
}

impl LoopBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
            edges: Vec::new(),
            nest: LoopNest::new(),
            arrays: Vec::new(),
            memory_refs: Vec::new(),
            next_array_base: 0x10_0000,
        }
    }

    /// Adds a loop dimension inside the current innermost one.
    pub fn dimension(&mut self, name: impl Into<String>, trip_count: u64) -> DimId {
        self.nest.push_dimension(name, trip_count)
    }

    /// Declares an array at an explicit base address.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        base_address: u64,
        size_bytes: u64,
    ) -> ArrayId {
        let id = ArrayId::from_index(self.arrays.len());
        self.arrays.push(Array {
            id,
            name: name.into(),
            base_address,
            size_bytes,
        });
        id
    }

    /// Declares an array placed automatically after all previously declared
    /// arrays, aligned to 64 bytes. Use [`LoopBuilder::array`] to control the
    /// base address precisely (e.g. to force the Figure-3 conflict alignment).
    pub fn auto_array(&mut self, name: impl Into<String>, size_bytes: u64) -> ArrayId {
        let base = self.next_array_base;
        self.next_array_base = (self.next_array_base + size_bytes + 63) & !63;
        self.array(name, base, size_bytes)
    }

    /// Starts an [`ArrayRef`] builder for `array`.
    #[must_use]
    pub fn array_ref(&self, array: ArrayId) -> ArrayRefBuilder {
        ArrayRef::builder(array)
    }

    fn push_op(&mut self, kind: OpKind, name: impl Into<String>, mem_ref: Option<usize>) -> OpId {
        let id = OpId::from_index(self.ops.len());
        self.ops.push(Operation {
            id,
            kind,
            name: name.into(),
            mem_ref,
        });
        id
    }

    /// Adds an integer operation.
    pub fn int_op(&mut self, name: impl Into<String>) -> OpId {
        self.push_op(OpKind::IntOp, name, None)
    }

    /// Adds a floating-point operation.
    pub fn fp_op(&mut self, name: impl Into<String>) -> OpId {
        self.push_op(OpKind::FpOp, name, None)
    }

    /// Adds a load of the given affine reference.
    pub fn load(&mut self, name: impl Into<String>, array_ref: ArrayRef) -> OpId {
        let idx = self.memory_refs.len();
        self.memory_refs.push(array_ref);
        self.push_op(OpKind::Load, name, Some(idx))
    }

    /// Adds a store of the given affine reference.
    pub fn store(&mut self, name: impl Into<String>, array_ref: ArrayRef) -> OpId {
        let idx = self.memory_refs.len();
        self.memory_refs.push(array_ref);
        self.push_op(OpKind::Store, name, Some(idx))
    }

    /// Adds a register-value dependence `src → dst` with the given iteration
    /// distance.
    pub fn data_edge(&mut self, src: OpId, dst: OpId, distance: u32) -> &mut Self {
        self.edges.push(DepEdge::data(src, dst, distance));
        self
    }

    /// Adds a memory-ordering dependence `src → dst` with the given iteration
    /// distance.
    pub fn memory_edge(&mut self, src: OpId, dst: OpId, distance: u32) -> &mut Self {
        self.edges.push(DepEdge::memory(src, dst, distance));
        self
    }

    /// Adds an explicit [`DepEdge`].
    pub fn edge(&mut self, edge: DepEdge) -> &mut Self {
        self.edges.push(edge);
        self
    }

    /// Number of operations added so far.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Builds and validates the loop.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] when the loop is empty, an edge or reference
    /// points outside the loop, or the distance-0 subgraph contains a cycle.
    pub fn build(self) -> Result<Loop, IrError> {
        let n = self.ops.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (i, edge) in self.edges.iter().enumerate() {
            if edge.src.index() >= n {
                return Err(IrError::UnknownOp { op: edge.src });
            }
            if edge.dst.index() >= n {
                return Err(IrError::UnknownOp { op: edge.dst });
            }
            succs[edge.src.index()].push(i);
            preds[edge.dst.index()].push(i);
        }
        let l = Loop {
            name: self.name,
            ops: self.ops,
            edges: self.edges,
            preds,
            succs,
            nest: self.nest,
            arrays: self.arrays,
            memory_refs: self.memory_refs,
        };
        l.validate()?;
        Ok(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small diamond with one loop-carried back edge.
    fn diamond() -> Loop {
        let mut b = Loop::builder("diamond");
        let i = b.dimension("I", 16);
        let a = b.auto_array("A", 1024);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f1 = b.fp_op("F1");
        let f2 = b.fp_op("F2");
        let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
        b.data_edge(ld, f1, 0);
        b.data_edge(ld, f2, 0);
        b.data_edge(f1, st, 0);
        b.data_edge(f2, st, 0);
        b.data_edge(st, ld, 1); // loop-carried
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_graph() {
        let l = diamond();
        assert_eq!(l.num_ops(), 4);
        assert_eq!(l.edges().len(), 5);
        assert_eq!(l.op_counts(), (0, 2, 1, 1));
        let ld = OpId::from_index(0);
        let st = OpId::from_index(3);
        assert_eq!(l.succs(ld).count(), 2);
        assert_eq!(l.preds(st).count(), 2);
        assert_eq!(l.preds(ld).count(), 1);
        assert!(l.preds(ld).next().unwrap().is_loop_carried());
        assert_eq!(l.memory_ops().count(), 2);
        assert_eq!(l.loads().count(), 1);
        assert_eq!(l.iterations(), 16);
        assert_eq!(l.times_executed(), 1);
        assert!(l.to_string().contains("diamond"));
    }

    #[test]
    fn addresses_follow_the_affine_reference() {
        let l = diamond();
        let ld = OpId::from_index(0);
        let base = l.array(ArrayId::from_index(0)).base_address;
        assert_eq!(l.address_of(ld, &[0]), Some(base));
        assert_eq!(l.address_of(ld, &[5]), Some(base + 40));
        // Non-memory ops have no address.
        assert_eq!(l.address_of(OpId::from_index(1), &[0]), None);
    }

    #[test]
    fn empty_loop_is_rejected() {
        let b = Loop::builder("empty");
        assert_eq!(b.build().unwrap_err(), IrError::EmptyLoop);
    }

    #[test]
    fn unknown_op_in_edge_is_rejected() {
        let mut b = Loop::builder("bad");
        let x = b.int_op("X");
        b.data_edge(x, OpId::from_index(9), 0);
        assert!(matches!(b.build().unwrap_err(), IrError::UnknownOp { .. }));
    }

    #[test]
    fn zero_distance_cycle_is_rejected() {
        let mut b = Loop::builder("cycle");
        let x = b.int_op("X");
        let y = b.int_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 0);
        assert!(matches!(
            b.build().unwrap_err(),
            IrError::ZeroDistanceCycle { .. }
        ));
    }

    #[test]
    fn loop_carried_cycle_is_accepted() {
        let mut b = Loop::builder("recurrence");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn stride_outside_nest_is_rejected() {
        let mut b = Loop::builder("bad-ref");
        let _i = b.dimension("I", 4);
        let a = b.auto_array("A", 64);
        // Reference uses dimension 3 but the nest has only 1 dimension.
        let r = b.array_ref(a).stride(DimId::from_index(3), 8).build();
        b.load("LD", r);
        assert!(matches!(
            b.build().unwrap_err(),
            IrError::StrideOutsideNest { .. }
        ));
    }

    #[test]
    fn auto_array_places_arrays_without_overlap() {
        let mut b = Loop::builder("alloc");
        let a = b.auto_array("A", 100);
        let c = b.auto_array("C", 100);
        let (a_base, a_size) = {
            let arr = &b.arrays[a.index()];
            (arr.base_address, arr.size_bytes)
        };
        let c_base = b.arrays[c.index()].base_address;
        assert!(c_base >= a_base + a_size);
        assert_eq!(c_base % 64, 0);
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            IrError::EmptyLoop,
            IrError::UnknownOp {
                op: OpId::from_index(1),
            },
            IrError::UnknownArray {
                array: ArrayId::from_index(0),
            },
            IrError::ZeroDistanceCycle {
                op: OpId::from_index(2),
            },
            IrError::StrideOutsideNest {
                op: OpId::from_index(0),
                nest_dims: 1,
                ref_dims: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
