//! Lower bounds on the initiation interval.
//!
//! Modulo scheduling starts at the *minimum initiation interval*
//! `MII = max(ResMII, RecMII)`: the resource-constrained bound (no functional
//! unit kind can issue more operations per II than it has slots) and the
//! recurrence-constrained bound (every dependence circuit must fit).

use crate::graph::Loop;
use crate::op::OpId;
use crate::recurrence;
use mvp_machine::{FuKind, MachineConfig};

/// Resource-constrained minimum initiation interval for `machine`.
///
/// Uses the *total* number of functional units of each kind across all
/// clusters, which is the classic lower bound; a clustered machine may of
/// course need a larger II once communication is accounted for.
#[must_use]
pub fn res_mii(l: &Loop, machine: &MachineConfig) -> u32 {
    let mut worst = 1u32;
    for kind in FuKind::ALL {
        let ops = l.ops().iter().filter(|o| o.kind.fu_kind() == kind).count() as u64;
        let units = machine.total_fu_count(kind) as u64;
        if ops == 0 {
            continue;
        }
        // A loop that uses a unit kind the machine does not have can never be
        // scheduled; report an effectively infinite bound so callers fail fast.
        let bound = if units == 0 {
            u32::MAX
        } else {
            ops.div_ceil(units) as u32
        };
        worst = worst.max(bound);
    }
    worst
}

/// Recurrence-constrained minimum initiation interval, assuming every load
/// hits in the local cache (the optimistic latency of the baseline).
#[must_use]
pub fn rec_mii(l: &Loop, machine: &MachineConfig) -> u32 {
    recurrence::rec_mii(l, |op: OpId| l.op(op).kind.hit_latency(&machine.latencies))
}

/// Minimum initiation interval: `max(ResMII, RecMII)`.
#[must_use]
pub fn minimum_ii(l: &Loop, machine: &MachineConfig) -> u32 {
    res_mii(l, machine).max(rec_mii(l, machine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::presets;

    /// Figure 3 loop shape: 4 loads, 2 fp multiplies, 1 fp add, 1 store.
    fn fig3_like() -> Loop {
        let mut b = Loop::builder("fig3");
        let i = b.dimension("I", 100);
        let bb = b.auto_array("B", 8192);
        let cc = b.auto_array("C", 8192);
        let aa = b.auto_array("A", 8192);
        let ld1 = b.load("LD1", b.array_ref(bb).stride(i, 16).build());
        let ld2 = b.load("LD2", b.array_ref(cc).stride(i, 16).build());
        let ld3 = b.load("LD3", b.array_ref(bb).offset(8).stride(i, 16).build());
        let ld4 = b.load("LD4", b.array_ref(cc).offset(8).stride(i, 16).build());
        let m1 = b.fp_op("MUL1");
        let m2 = b.fp_op("MUL2");
        let add = b.fp_op("ADD");
        let st = b.store("ST", b.array_ref(aa).stride(i, 8).build());
        b.data_edge(ld1, m1, 0);
        b.data_edge(ld2, m1, 0);
        b.data_edge(ld3, m2, 0);
        b.data_edge(ld4, m2, 0);
        b.data_edge(m1, add, 0);
        b.data_edge(m2, add, 0);
        b.data_edge(add, st, 0);
        b.build().unwrap()
    }

    #[test]
    fn res_mii_of_fig3_on_the_example_machine_is_three() {
        // The motivating-example machine has 1 memory unit and 1 fp unit per
        // cluster (2 of each in total). 5 memory ops / 2 units = 3 (ceil),
        // 3 fp ops / 2 units = 2, so ResMII = 3 — matching the mII = 3 quoted
        // in Section 3 for the equivalent unified architecture.
        let l = fig3_like();
        let machine = presets::motivating_example_machine();
        assert_eq!(res_mii(&l, &machine), 3);
        assert_eq!(rec_mii(&l, &machine), 1);
        assert_eq!(minimum_ii(&l, &machine), 3);
    }

    #[test]
    fn res_mii_on_wider_machines_is_smaller() {
        let l = fig3_like();
        // Unified: 4 memory units -> ceil(5/4) = 2.
        assert_eq!(res_mii(&l, &presets::unified()), 2);
        // 2-cluster: 4 memory units in total as well.
        assert_eq!(res_mii(&l, &presets::two_cluster()), 2);
        // 4-cluster: 4 memory units in total as well.
        assert_eq!(res_mii(&l, &presets::four_cluster()), 2);
    }

    #[test]
    fn rec_mii_dominates_when_recurrence_is_long() {
        let mut b = Loop::builder("long-rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        let z = b.fp_op("Z");
        b.data_edge(x, y, 0);
        b.data_edge(y, z, 0);
        b.data_edge(z, x, 1);
        let l = b.build().unwrap();
        let machine = presets::unified();
        assert_eq!(res_mii(&l, &machine), 1);
        assert_eq!(rec_mii(&l, &machine), 6);
        assert_eq!(minimum_ii(&l, &machine), 6);
    }

    #[test]
    fn missing_unit_kind_gives_unschedulable_bound() {
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        // A machine with no memory units at all.
        let machine = MachineConfig::builder("no-mem")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 0, 32, CacheGeometry::direct_mapped(4096)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        let l = fig3_like();
        assert_eq!(res_mii(&l, &machine), u32::MAX);
    }
}
