//! Recurrence (elementary-circuit) analysis of the dependence graph.
//!
//! Loop-carried dependence cycles bound the initiation interval from below:
//! for every elementary circuit `c`, `II >= ceil(latency(c) / distance(c))`.
//! The maximum over all circuits is the *recurrence-constrained minimum II*
//! (RecMII). The RMCA scheduler additionally needs to know, for a given load,
//! how much its latency can grow before some recurrence through it starts
//! constraining the II (Section 4.3: a load is only scheduled with the miss
//! latency "provided that this latency does not increase the II if the
//! operation is in a recurrence").

use crate::graph::Loop;
use crate::op::OpId;
use std::collections::HashSet;

/// An elementary circuit of the dependence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    /// Operations on the circuit, in traversal order.
    pub ops: Vec<OpId>,
    /// Sum of the iteration distances of the edges on the circuit (always
    /// at least 1 for a valid loop).
    pub distance: u32,
}

impl Circuit {
    /// Sum of the latencies of the operations on the circuit, using the
    /// supplied per-operation latency function.
    pub fn latency(&self, mut latency_of: impl FnMut(OpId) -> u32) -> u64 {
        self.ops.iter().map(|&op| u64::from(latency_of(op))).sum()
    }

    /// Minimum initiation interval imposed by this circuit alone:
    /// `ceil(latency / distance)`.
    pub fn min_ii(&self, latency_of: impl FnMut(OpId) -> u32) -> u32 {
        let lat = self.latency(latency_of);
        let dist = u64::from(self.distance.max(1));
        lat.div_ceil(dist) as u32
    }
}

/// Upper bound on the number of circuits enumerated before giving up on exact
/// enumeration (pathological graphs); the RecMII computed from the circuits
/// found so far is still a valid lower bound and the positive-cycle check in
/// [`rec_mii`] remains exact.
const MAX_CIRCUITS: usize = 100_000;

/// Enumerates the elementary circuits of the dependence graph.
///
/// Uses a Johnson-style search: circuits are only reported from their
/// smallest operation id, which guarantees each elementary circuit is found
/// exactly once. The search stops after `MAX_CIRCUITS` circuits.
#[must_use]
pub fn elementary_circuits(l: &Loop) -> Vec<Circuit> {
    let n = l.num_ops();
    let mut circuits = Vec::new();
    let mut on_path = vec![false; n];
    let mut path: Vec<usize> = Vec::new();

    // Depth-first search restricted to nodes >= root so that each circuit is
    // discovered exactly once, rooted at its minimum node.
    fn dfs(
        l: &Loop,
        root: usize,
        node: usize,
        on_path: &mut Vec<bool>,
        path: &mut Vec<usize>,
        circuits: &mut Vec<Circuit>,
    ) {
        if circuits.len() >= MAX_CIRCUITS {
            return;
        }
        on_path[node] = true;
        path.push(node);
        for edge in l.succs(OpId::from_index(node)) {
            let next = edge.dst.index();
            if next < root {
                continue;
            }
            if next == root {
                // Found a circuit: path + closing edge.
                let ops: Vec<OpId> = path.iter().map(|&i| OpId::from_index(i)).collect();
                let mut distance = 0u32;
                for w in 0..path.len() {
                    let from = OpId::from_index(path[w]);
                    let to = OpId::from_index(path[(w + 1) % path.len()]);
                    // Take the minimum distance among parallel edges from→to.
                    let d = l
                        .succs(from)
                        .filter(|e| e.dst == to)
                        .map(|e| e.distance)
                        .min()
                        .unwrap_or(0);
                    distance += d;
                }
                circuits.push(Circuit { ops, distance });
                if circuits.len() >= MAX_CIRCUITS {
                    break;
                }
            } else if !on_path[next] {
                dfs(l, root, next, on_path, path, circuits);
            }
        }
        path.pop();
        on_path[node] = false;
    }

    for root in 0..n {
        dfs(l, root, root, &mut on_path, &mut path, &mut circuits);
    }
    circuits
}

/// Identifiers of all operations that belong to at least one recurrence.
#[must_use]
pub fn ops_in_recurrences(l: &Loop) -> HashSet<OpId> {
    let mut set = HashSet::new();
    for c in elementary_circuits(l) {
        set.extend(c.ops.iter().copied());
    }
    set
}

/// Recurrence-constrained minimum initiation interval.
///
/// Computed exactly with a positive-cycle feasibility check (Floyd–Warshall
/// longest paths on edge weights `latency(src) − II·distance`), searching the
/// smallest II for which no positive cycle exists. Returns 1 for acyclic
/// graphs.
pub fn rec_mii(l: &Loop, mut latency_of: impl FnMut(OpId) -> u32) -> u32 {
    let latencies: Vec<u32> = l.op_ids().map(&mut latency_of).collect();
    // Upper bound: sum of all latencies is always a feasible II.
    let upper: u64 = latencies.iter().map(|&x| u64::from(x)).sum::<u64>().max(1);
    let mut lo = 1u64;
    let mut hi = upper;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if has_positive_cycle(l, &latencies, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Whether the constraint graph has a positive-weight cycle for candidate
/// initiation interval `ii` (meaning `ii` is infeasible).
fn has_positive_cycle(l: &Loop, latencies: &[u32], ii: u64) -> bool {
    let n = l.num_ops();
    const NEG_INF: i64 = i64::MIN / 4;
    let mut dist = vec![vec![NEG_INF; n]; n];
    for edge in l.edges() {
        let w = i64::from(latencies[edge.src.index()]) - (ii as i64) * i64::from(edge.distance);
        let (s, d) = (edge.src.index(), edge.dst.index());
        if w > dist[s][d] {
            dist[s][d] = w;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if dist[i][k] == NEG_INF {
                continue;
            }
            for j in 0..n {
                if dist[k][j] == NEG_INF {
                    continue;
                }
                let via = dist[i][k] + dist[k][j];
                if via > dist[i][j] {
                    dist[i][j] = via;
                }
            }
        }
    }
    (0..n).any(|i| dist[i][i] > 0)
}

/// How many extra cycles of latency operation `op` can absorb before some
/// recurrence through it would force the initiation interval above `ii`.
///
/// Returns `u32::MAX` when `op` does not belong to any recurrence (its
/// latency can grow freely without affecting the II; only the schedule length
/// / stage count grows).
pub fn latency_slack(l: &Loop, op: OpId, ii: u32, mut latency_of: impl FnMut(OpId) -> u32) -> u32 {
    let circuits = elementary_circuits(l);
    let mut slack = u64::from(u32::MAX);
    let mut found = false;
    for c in &circuits {
        if !c.ops.contains(&op) {
            continue;
        }
        found = true;
        let lat = c.latency(&mut latency_of);
        let budget = u64::from(ii) * u64::from(c.distance.max(1));
        let s = budget.saturating_sub(lat);
        slack = slack.min(s);
    }
    if found {
        slack.min(u64::from(u32::MAX)) as u32
    } else {
        u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Loop;
    use mvp_machine::OperationLatencies;

    fn hit(l: &Loop) -> impl FnMut(OpId) -> u32 + '_ {
        let lat = OperationLatencies::paper_defaults();
        move |op| l.op(op).kind.hit_latency(&lat)
    }

    /// x -> y -> x with distance 1 on the back edge; both fp (latency 2).
    fn simple_recurrence() -> Loop {
        let mut b = Loop::builder("rec");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 1);
        b.build().unwrap()
    }

    #[test]
    fn acyclic_graph_has_rec_mii_one_and_no_circuits() {
        let mut b = Loop::builder("chain");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        let z = b.fp_op("Z");
        b.data_edge(x, y, 0);
        b.data_edge(y, z, 0);
        let l = b.build().unwrap();
        assert!(elementary_circuits(&l).is_empty());
        assert!(ops_in_recurrences(&l).is_empty());
        assert_eq!(rec_mii(&l, hit(&l)), 1);
        assert_eq!(latency_slack(&l, x, 3, hit(&l)), u32::MAX);
    }

    #[test]
    fn two_node_recurrence_has_rec_mii_four() {
        let l = simple_recurrence();
        let circuits = elementary_circuits(&l);
        assert_eq!(circuits.len(), 1);
        assert_eq!(circuits[0].distance, 1);
        assert_eq!(circuits[0].latency(hit(&l)), 4);
        assert_eq!(circuits[0].min_ii(hit(&l)), 4);
        assert_eq!(rec_mii(&l, hit(&l)), 4);
        assert_eq!(ops_in_recurrences(&l).len(), 2);
    }

    #[test]
    fn distance_two_recurrence_halves_rec_mii() {
        let mut b = Loop::builder("rec2");
        let x = b.fp_op("X");
        let y = b.fp_op("Y");
        b.data_edge(x, y, 0);
        b.data_edge(y, x, 2);
        let l = b.build().unwrap();
        assert_eq!(rec_mii(&l, hit(&l)), 2);
    }

    #[test]
    fn self_loop_is_a_circuit() {
        let mut b = Loop::builder("self");
        let x = b.fp_op("X");
        b.data_edge(x, x, 1);
        let l = b.build().unwrap();
        let circuits = elementary_circuits(&l);
        assert_eq!(circuits.len(), 1);
        assert_eq!(circuits[0].ops, vec![x]);
        assert_eq!(rec_mii(&l, hit(&l)), 2);
    }

    #[test]
    fn latency_slack_reflects_ii_headroom() {
        let l = simple_recurrence();
        let x = OpId::from_index(0);
        // With II = 4 the circuit latency (4) exactly meets the budget: no slack.
        assert_eq!(latency_slack(&l, x, 4, hit(&l)), 0);
        // With II = 6 there are 2 spare cycles.
        assert_eq!(latency_slack(&l, x, 6, hit(&l)), 2);
        // With II = 10 there are 6 spare cycles.
        assert_eq!(latency_slack(&l, x, 10, hit(&l)), 6);
    }

    #[test]
    fn two_disjoint_circuits_take_the_max() {
        let mut b = Loop::builder("two-circuits");
        let a = b.fp_op("A");
        let c = b.fp_op("C");
        let d = b.fp_op("D");
        b.data_edge(a, a, 1); // circuit of latency 2, distance 1 -> II 2
        b.data_edge(c, d, 0);
        b.data_edge(d, c, 1); // circuit of latency 4, distance 1 -> II 4
        let l = b.build().unwrap();
        assert_eq!(elementary_circuits(&l).len(), 2);
        assert_eq!(rec_mii(&l, hit(&l)), 4);
    }

    #[test]
    fn rec_mii_matches_circuit_bound_on_random_small_graphs() {
        // Cross-check the feasibility-based RecMII against the circuit
        // enumeration on a handful of structured graphs.
        for &(dist, n_ops) in &[(1u32, 3usize), (2, 4), (3, 5)] {
            let mut b = Loop::builder("ring");
            let ops: Vec<_> = (0..n_ops).map(|i| b.fp_op(format!("F{i}"))).collect();
            for w in 0..n_ops - 1 {
                b.data_edge(ops[w], ops[w + 1], 0);
            }
            b.data_edge(ops[n_ops - 1], ops[0], dist);
            let l = b.build().unwrap();
            let circuits = elementary_circuits(&l);
            let from_circuits = circuits
                .iter()
                .map(|c| c.min_ii(hit(&l)))
                .max()
                .unwrap_or(1);
            assert_eq!(rec_mii(&l, hit(&l)), from_circuits);
        }
    }
}
