//! Graphviz export of dependence graphs, for debugging and documentation.

use crate::edge::EdgeKind;
use crate::graph::Loop;

/// Renders the dependence graph in Graphviz `dot` syntax.
///
/// Memory operations are drawn as boxes, arithmetic operations as ellipses;
/// loop-carried edges are dashed and labelled with their distance.
#[must_use]
pub fn to_dot(l: &Loop) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", l.name()));
    out.push_str("  rankdir=TB;\n");
    for op in l.ops() {
        let shape = if op.is_memory() { "box" } else { "ellipse" };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{}\", shape={}];\n",
            op.id.index(),
            op.name,
            op.kind,
            shape
        ));
    }
    for edge in l.edges() {
        let style = if edge.is_loop_carried() {
            "dashed"
        } else {
            "solid"
        };
        let colour = match edge.kind {
            EdgeKind::Data => "black",
            EdgeKind::Memory => "gray50",
        };
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{}\", style={}, color={}];\n",
            edge.src.index(),
            edge.dst.index(),
            edge.distance,
            style,
            colour
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_mentions_every_op_and_edge() {
        let mut b = Loop::builder("dot-test");
        let i = b.dimension("I", 8);
        let a = b.auto_array("A", 512);
        let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
        let f = b.fp_op("F");
        b.data_edge(ld, f, 0);
        b.data_edge(f, f, 1);
        let l = b.build().unwrap();
        let dot = to_dot(&l);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("LD"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.ends_with("}\n"));
    }
}
