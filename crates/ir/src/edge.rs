//! Dependence edges of the data-dependence graph.

use crate::op::OpId;
use std::fmt;

/// Kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Flow of a register value from producer to consumer. When producer and
    /// consumer end up in different clusters, the value must travel over a
    /// register bus.
    Data,
    /// Ordering constraint through memory (store→load, load→store or
    /// store→store on possibly-aliasing references). No register value moves,
    /// so no register-bus transfer is ever needed.
    Memory,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::Data => f.write_str("data"),
            EdgeKind::Memory => f.write_str("memory"),
        }
    }
}

/// A dependence edge `src → dst` with an iteration distance.
///
/// A distance of 0 is an intra-iteration dependence; a distance of `d > 0`
/// means the value produced in iteration `i` is consumed in iteration
/// `i + d` (a loop-carried dependence, the source of recurrences).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepEdge {
    /// Producing operation.
    pub src: OpId,
    /// Consuming operation.
    pub dst: OpId,
    /// Iteration distance (0 = same iteration).
    pub distance: u32,
    /// Kind of the dependence.
    pub kind: EdgeKind,
}

impl DepEdge {
    /// Creates a register-value (data) dependence.
    #[must_use]
    pub fn data(src: OpId, dst: OpId, distance: u32) -> Self {
        Self {
            src,
            dst,
            distance,
            kind: EdgeKind::Data,
        }
    }

    /// Creates a memory-ordering dependence.
    #[must_use]
    pub fn memory(src: OpId, dst: OpId, distance: u32) -> Self {
        Self {
            src,
            dst,
            distance,
            kind: EdgeKind::Memory,
        }
    }

    /// Whether the edge is loop-carried.
    #[must_use]
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }

    /// Whether a register value flows along this edge (and therefore needs a
    /// register-bus transfer if the endpoints live in different clusters).
    #[must_use]
    pub fn carries_value(&self) -> bool {
        self.kind == EdgeKind::Data
    }
}

impl fmt::Display for DepEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} [{}, d={}]",
            self.src, self.dst, self.kind, self.distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let a = OpId::from_index(0);
        let b = OpId::from_index(1);
        let d = DepEdge::data(a, b, 0);
        assert_eq!(d.kind, EdgeKind::Data);
        assert!(d.carries_value());
        assert!(!d.is_loop_carried());
        let m = DepEdge::memory(b, a, 2);
        assert_eq!(m.kind, EdgeKind::Memory);
        assert!(!m.carries_value());
        assert!(m.is_loop_carried());
    }

    #[test]
    fn display_is_readable() {
        let e = DepEdge::data(OpId::from_index(3), OpId::from_index(5), 1);
        assert_eq!(e.to_string(), "op3 -> op5 [data, d=1]");
    }
}
