//! Operations of a modulo-scheduled loop body.

use mvp_machine::{FuKind, OperationLatencies};
use std::fmt;

/// Identifier of an operation within a [`crate::Loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// Index of the operation in [`crate::Loop::ops`] order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an identifier from a raw index.
    ///
    /// Mostly useful in tests; identifiers obtained from a
    /// [`crate::LoopBuilder`] are always valid for the loop it builds.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(index as u32)
    }

    /// Raw numeric value, usable as an MRT token.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Class of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer arithmetic / logic / address computation.
    IntOp,
    /// Floating-point arithmetic.
    FpOp,
    /// Load from memory (produces a register value).
    Load,
    /// Store to memory (consumes register values, produces none).
    Store,
}

impl OpKind {
    /// Functional-unit kind that executes this operation class.
    #[must_use]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpKind::IntOp => FuKind::Integer,
            OpKind::FpOp => FuKind::Float,
            OpKind::Load | OpKind::Store => FuKind::Memory,
        }
    }

    /// Whether the operation accesses memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Whether the operation produces a register value that consumers read.
    #[must_use]
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Store)
    }

    /// Scheduler-visible latency of the operation, assuming loads hit in the
    /// local cache (the optimistic default of the paper's baseline).
    #[must_use]
    pub fn hit_latency(self, latencies: &OperationLatencies) -> u32 {
        match self {
            OpKind::IntOp => latencies.int_op,
            OpKind::FpOp => latencies.fp_op,
            OpKind::Load => latencies.load_hit,
            OpKind::Store => latencies.store,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::IntOp => "int",
            OpKind::FpOp => "fp",
            OpKind::Load => "load",
            OpKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// An operation of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Identifier of the operation.
    pub id: OpId,
    /// Class of the operation.
    pub kind: OpKind,
    /// Human-readable name (e.g. `"LD1"`, `"MUL"`), used in dumps and tests.
    pub name: String,
    /// Index into [`crate::Loop::memory_refs`] when the operation is a load
    /// or a store.
    pub mem_ref: Option<usize>,
}

impl Operation {
    /// Whether the operation is a load or a store.
    #[must_use]
    pub fn is_memory(&self) -> bool {
        self.kind.is_memory()
    }

    /// Whether the operation is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.kind == OpKind::Load
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.id, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_kind_mapping() {
        assert_eq!(OpKind::IntOp.fu_kind(), FuKind::Integer);
        assert_eq!(OpKind::FpOp.fu_kind(), FuKind::Float);
        assert_eq!(OpKind::Load.fu_kind(), FuKind::Memory);
        assert_eq!(OpKind::Store.fu_kind(), FuKind::Memory);
    }

    #[test]
    fn memory_and_value_classification() {
        assert!(OpKind::Load.is_memory());
        assert!(OpKind::Store.is_memory());
        assert!(!OpKind::FpOp.is_memory());
        assert!(OpKind::Load.produces_value());
        assert!(!OpKind::Store.produces_value());
        assert!(OpKind::IntOp.produces_value());
    }

    #[test]
    fn hit_latencies_follow_machine_latencies() {
        let lat = OperationLatencies::paper_defaults();
        assert_eq!(OpKind::IntOp.hit_latency(&lat), 1);
        assert_eq!(OpKind::FpOp.hit_latency(&lat), 2);
        assert_eq!(OpKind::Load.hit_latency(&lat), 2);
        assert_eq!(OpKind::Store.hit_latency(&lat), 1);
    }

    #[test]
    fn op_id_roundtrip_and_display() {
        let id = OpId::from_index(5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.raw(), 5);
        assert_eq!(id.to_string(), "op5");
        assert_eq!(OpKind::Load.to_string(), "load");
    }
}
