//! Loop intermediate representation for modulo scheduling on the
//! multiVLIWprocessor.
//!
//! The crate models exactly what the RMCA scheduler of Sánchez & González
//! (MICRO 2000) consumes:
//!
//! * [`Operation`]s of the three classes the machine executes (integer,
//!   floating point, memory), with memory operations carrying an affine
//!   [`ArrayRef`] into a declared [`Array`],
//! * a [`LoopNest`] describing the iteration space (the innermost dimension
//!   is the one that is software-pipelined),
//! * a data-dependence graph ([`Loop`]) whose edges carry an iteration
//!   [`distance`](DepEdge::distance) for loop-carried dependences,
//! * the lower bounds on the initiation interval ([`mii`]), the recurrence
//!   analysis ([`recurrence`]) and the node [`ordering`] used by the
//!   schedulers.
//!
//! # Example
//!
//! ```
//! use mvp_ir::{Loop, OpKind};
//! use mvp_machine::presets;
//!
//! // DO I = 1, N:  A(I) = A(I) + s
//! let mut b = Loop::builder("axpy-like");
//! let i = b.dimension("I", 128);
//! let a = b.array("A", 0x1000, 1024);
//! let ld = b.load("LD", b.array_ref(a).stride(i, 8).build());
//! let add = b.fp_op("ADD");
//! let st = b.store("ST", b.array_ref(a).stride(i, 8).build());
//! b.data_edge(ld, add, 0);
//! b.data_edge(add, st, 0);
//! let l = b.build().unwrap();
//!
//! assert_eq!(l.num_ops(), 3);
//! assert_eq!(l.op(add).kind, OpKind::FpOp);
//! let machine = presets::two_cluster();
//! assert!(mvp_ir::mii::minimum_ii(&l, &machine) >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod dot;
pub mod edge;
pub mod graph;
pub mod loop_nest;
pub mod mii;
pub mod op;
pub mod ordering;
pub mod recurrence;

pub use array::{Array, ArrayId, ArrayRef, ArrayRefBuilder};
pub use edge::{DepEdge, EdgeKind};
pub use graph::{IrError, Loop, LoopBuilder};
pub use loop_nest::{DimId, LoopDim, LoopNest};
pub use op::{OpId, OpKind, Operation};
