//! The motivating example of Section 3 (Figure 3).
//!
//! ```fortran
//! DO I = 1, N, 2
//!   A(I) = B(I)*C(I) + B(I+1)*C(I+1)
//! ENDDO
//! ```
//!
//! The loop is unrolled by two, so each iteration of the pipelined loop
//! issues four loads (`LD1 = B(I)`, `LD2 = C(I)`, `LD3 = B(I+1)`,
//! `LD4 = C(I+1)`), two multiplications, one addition and one store. The
//! arrays `B` and `C` are laid out at a distance that is a multiple of the
//! local cache capacity, which creates the ping-pong conflicts the paper uses
//! to motivate memory-aware cluster selection: `LD1`/`LD3` and `LD2`/`LD4`
//! enjoy group and spatial reuse, but mixing a `B` reference with a `C`
//! reference in the same local cache makes every access miss.

use mvp_ir::{Loop, OpId};

/// Parameters of the motivating loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotivatingParams {
    /// Trip count of the pipelined loop (the paper's `N/2`, since the source
    /// loop steps by 2).
    pub iterations: u64,
    /// Capacity of one local (per-cluster) data cache in bytes. `B` and `C`
    /// are placed an exact multiple of this apart so that `B(I)` and `C(I)`
    /// map to the same cache set.
    pub local_cache_bytes: u64,
}

impl Default for MotivatingParams {
    fn default() -> Self {
        Self {
            iterations: 256,
            local_cache_bytes: 1024,
        }
    }
}

/// Named handles to the operations of the motivating loop, for tests and for
/// the Figure-3 harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotivatingOps {
    /// `B(I)`
    pub ld1: OpId,
    /// `C(I)`
    pub ld2: OpId,
    /// `B(I+1)`
    pub ld3: OpId,
    /// `C(I+1)`
    pub ld4: OpId,
    /// `B(I)*C(I)`
    pub mul1: OpId,
    /// `B(I+1)*C(I+1)`
    pub mul2: OpId,
    /// the sum of the two products
    pub add: OpId,
    /// `A(I) = ...`
    pub store: OpId,
}

/// Builds the Figure-3 loop. Returns the loop plus named operation handles.
#[must_use]
pub fn motivating_loop(params: &MotivatingParams) -> (Loop, MotivatingOps) {
    let elem = 8i64; // double precision
    let cache = params.local_cache_bytes;
    // Each pipelined iteration advances I by 2 elements.
    let iter_stride = 2 * elem;
    let array_bytes = (params.iterations + 2) * 2 * elem as u64;

    let mut b = Loop::builder("motivating");
    let i = b.dimension("I", params.iterations);
    // B and C are a multiple of the local cache capacity apart (ping-pong);
    // A lives far away and is only stored to.
    let arr_b = b.array("B", 0, array_bytes);
    let arr_c = b.array("C", 8 * cache, array_bytes);
    let arr_a = b.array("A", 16 * cache + cache / 2, array_bytes);

    let ld1 = b.load("LD1", b.array_ref(arr_b).stride(i, iter_stride).build());
    let ld2 = b.load("LD2", b.array_ref(arr_c).stride(i, iter_stride).build());
    let ld3 = b.load(
        "LD3",
        b.array_ref(arr_b)
            .offset(elem)
            .stride(i, iter_stride)
            .build(),
    );
    let ld4 = b.load(
        "LD4",
        b.array_ref(arr_c)
            .offset(elem)
            .stride(i, iter_stride)
            .build(),
    );
    let mul1 = b.fp_op("MUL1");
    let mul2 = b.fp_op("MUL2");
    let add = b.fp_op("ADD");
    let store = b.store("ST", b.array_ref(arr_a).stride(i, iter_stride).build());

    b.data_edge(ld1, mul1, 0);
    b.data_edge(ld2, mul1, 0);
    b.data_edge(ld3, mul2, 0);
    b.data_edge(ld4, mul2, 0);
    b.data_edge(mul1, add, 0);
    b.data_edge(mul2, add, 0);
    b.data_edge(add, store, 0);

    let l = b
        .build()
        .expect("the motivating loop is valid by construction");
    (
        l,
        MotivatingOps {
            ld1,
            ld2,
            ld3,
            ld4,
            mul1,
            mul2,
            add,
            store,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::mii;
    use mvp_machine::presets;

    #[test]
    fn structure_matches_figure_3() {
        let (l, ops) = motivating_loop(&MotivatingParams::default());
        assert_eq!(l.num_ops(), 8);
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (0, 3, 4, 1));
        assert_eq!(l.edges().len(), 7);
        assert_eq!(l.preds(ops.add).count(), 2);
        assert_eq!(l.succs(ops.ld1).count(), 1);
        assert_eq!(l.iterations(), 256);
    }

    #[test]
    fn mii_is_three_on_the_motivating_machine() {
        // Section 3: "the minimum initiation interval (mII) for an equivalent
        // unified architecture with the same resources is 3 cycles".
        let (l, _) = motivating_loop(&MotivatingParams::default());
        let machine = presets::motivating_example_machine();
        assert_eq!(mii::minimum_ii(&l, &machine), 3);
    }

    #[test]
    fn b_and_c_conflict_in_the_local_cache() {
        let params = MotivatingParams::default();
        let (l, ops) = motivating_loop(&params);
        let geometry = mvp_machine::CacheGeometry::direct_mapped(params.local_cache_bytes);
        let addr_b = l.address_of(ops.ld1, &[5]).unwrap();
        let addr_c = l.address_of(ops.ld2, &[5]).unwrap();
        assert_ne!(addr_b, addr_c);
        assert_eq!(geometry.set_of(addr_b), geometry.set_of(addr_c));
        // LD1 and LD3 touch consecutive elements (group reuse).
        let a1 = l.address_of(ops.ld1, &[7]).unwrap();
        let a3 = l.address_of(ops.ld3, &[7]).unwrap();
        assert_eq!(a3 - a1, 8);
    }

    #[test]
    fn parameters_scale_the_loop() {
        let params = MotivatingParams {
            iterations: 32,
            local_cache_bytes: 4096,
        };
        let (l, _) = motivating_loop(&params);
        assert_eq!(l.iterations(), 32);
        let geometry = mvp_machine::CacheGeometry::direct_mapped(4096);
        let (l2, ops) = motivating_loop(&params);
        let addr_b = l2.address_of(ops.ld1, &[0]).unwrap();
        let addr_c = l2.address_of(ops.ld2, &[0]).unwrap();
        assert_eq!(geometry.set_of(addr_b), geometry.set_of(addr_c));
        drop(l);
    }
}
