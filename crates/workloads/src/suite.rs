//! The benchmark suite used by the evaluation harness.

use crate::kernels::{self, KernelParams};
use crate::motivating::{motivating_loop, MotivatingParams};
use mvp_ir::Loop;

/// One benchmark of the suite: a named set of modulo-scheduled loops.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Name of the SPECfp95 program the kernels are modelled on.
    pub name: &'static str,
    /// The innermost loops evaluated for this benchmark.
    pub loops: Vec<Loop>,
}

impl Workload {
    /// Total number of operations across the workload's loops.
    #[must_use]
    pub fn total_ops(&self) -> usize {
        self.loops.iter().map(Loop::num_ops).sum()
    }
}

/// Parameters of the whole suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuiteParams {
    /// Sizing of every kernel.
    pub kernel: KernelParams,
}

impl SuiteParams {
    /// Parameters scaled down for fast tests and smoke runs.
    #[must_use]
    pub fn small() -> Self {
        Self {
            kernel: KernelParams::small(),
        }
    }
}

/// Builds the eight SPECfp95-modelled workloads of the paper's evaluation, in
/// the order the paper lists them.
#[must_use]
pub fn suite(params: &SuiteParams) -> Vec<Workload> {
    let k = &params.kernel;
    vec![
        Workload {
            name: "tomcatv",
            loops: kernels::tomcatv::loops(k),
        },
        Workload {
            name: "swim",
            loops: kernels::swim::loops(k),
        },
        Workload {
            name: "su2cor",
            loops: kernels::su2cor::loops(k),
        },
        Workload {
            name: "hydro2d",
            loops: kernels::hydro2d::loops(k),
        },
        Workload {
            name: "mgrid",
            loops: kernels::mgrid::loops(k),
        },
        Workload {
            name: "applu",
            loops: kernels::applu::loops(k),
        },
        Workload {
            name: "turb3d",
            loops: kernels::turb3d::loops(k),
        },
        Workload {
            name: "apsi",
            loops: kernels::apsi::loops(k),
        },
    ]
}

/// The motivating example as a single-loop workload (used by the Figure-3
/// harness next to the suite).
#[must_use]
pub fn motivating_workload(params: &MotivatingParams) -> Workload {
    Workload {
        name: "motivating",
        loops: vec![motivating_loop(params).0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_eight_benchmarks_in_order() {
        let names: Vec<&str> = suite(&SuiteParams::default())
            .iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(
            names,
            vec!["tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi"]
        );
    }

    #[test]
    fn workloads_report_their_sizes() {
        for w in suite(&SuiteParams::small()) {
            assert!(w.total_ops() >= 5, "{} too small", w.name);
        }
        let m = motivating_workload(&MotivatingParams::default());
        assert_eq!(m.total_ops(), 8);
    }

    #[test]
    fn small_params_shrink_trip_counts() {
        let small = suite(&SuiteParams::small());
        let full = suite(&SuiteParams::default());
        for (s, f) in small.iter().zip(&full) {
            assert!(s.loops[0].iterations() < f.loops[0].iterations());
        }
    }
}
