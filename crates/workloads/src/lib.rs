//! Workloads for the multiVLIWprocessor evaluation.
//!
//! The paper evaluates its schedulers on the modulo-scheduled innermost loops
//! of eight SPECfp95 programs (tomcatv, swim, su2cor, hydro2d, mgrid, applu,
//! turb3d and apsi) compiled with the ICTINEO compiler. Neither the benchmark
//! sources nor that compiler are available here, so this crate provides
//! *synthetic* kernels expressed directly in the `mvp-ir` loop IR, modelled on
//! the dominant innermost loops of each program: the operation mix
//! (loads/stores/FP/integer), the dependence structure (including the
//! recurrences of the solvers), the affine access patterns (unit-stride
//! streams, 2D/3D stencils, large power-of-two strides) and array layouts
//! that exercise the same cache behaviours (group reuse across unrolled
//! references, cross-array conflict misses in small direct-mapped caches).
//! `DESIGN.md` documents this substitution.
//!
//! Also provided:
//!
//! * [`motivating`] — the exact loop of the paper's Figure 3,
//! * [`generator`] — a seeded random-loop generator used by property tests,
//! * [`suite`](mod@suite) — the eight named kernels packaged for the benchmark harness.
//!
//! # Example
//!
//! ```
//! use mvp_workloads::suite::{suite, SuiteParams};
//!
//! let workloads = suite(&SuiteParams::default());
//! assert_eq!(workloads.len(), 8);
//! for w in &workloads {
//!     assert!(!w.loops.is_empty());
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub use mvp_testutil::rng;
pub mod kernels;
pub mod motivating;
pub mod suite;

pub use generator::{is_modulo_schedulable, GeneratorConfig, GeneratorMode, LoopGenerator};
pub use motivating::{motivating_loop, MotivatingParams};
pub use suite::{suite, SuiteParams, Workload};
