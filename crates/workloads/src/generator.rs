//! Seeded random loop generator.
//!
//! Used by property-based tests (schedulers must produce valid schedules for
//! arbitrary well-formed loops) and by stress experiments in the benchmark
//! harness. Generated loops are always valid: register edges only point
//! forward in operation order unless they carry a positive iteration
//! distance, so the distance-0 subgraph is acyclic by construction.

use crate::rng::SplitMix64;
use mvp_ir::{Loop, OpId};

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Minimum number of operations per loop.
    pub min_ops: usize,
    /// Maximum number of operations per loop.
    pub max_ops: usize,
    /// Fraction of operations that access memory (loads and stores).
    pub memory_fraction: f64,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
    /// Probability that an operation receives an extra loop-carried input.
    pub recurrence_probability: f64,
    /// Number of arrays to declare.
    pub num_arrays: usize,
    /// Trip count of the generated innermost loop.
    pub inner_trip: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            min_ops: 6,
            max_ops: 24,
            memory_fraction: 0.4,
            store_fraction: 0.25,
            recurrence_probability: 0.15,
            num_arrays: 4,
            inner_trip: 64,
        }
    }
}

/// Seeded random loop generator.
#[derive(Debug)]
pub struct LoopGenerator {
    config: GeneratorConfig,
    rng: SplitMix64,
    counter: u64,
}

impl LoopGenerator {
    /// Creates a generator with the given configuration and seed.
    #[must_use]
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        Self {
            config,
            rng: SplitMix64::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Creates a generator with default configuration.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GeneratorConfig::default(), seed)
    }

    /// Generates the next random loop.
    pub fn generate(&mut self) -> Loop {
        let cfg = self.config;
        self.counter += 1;
        let mut b = Loop::builder(format!("random_{}", self.counter));
        let i = b.dimension("I", cfg.inner_trip);

        let arrays: Vec<_> = (0..cfg.num_arrays.max(1))
            .map(|k| {
                // Mix aligned and unaligned bases so some pairs conflict in
                // small direct-mapped caches.
                let base = (k as u64) * 8192 + if k % 2 == 0 { 0 } else { 1024 };
                b.array(format!("ARR{k}"), base, 64 * 1024)
            })
            .collect();

        let n_ops = self
            .rng
            .gen_range_inclusive(cfg.min_ops, cfg.max_ops.max(cfg.min_ops));
        let mut ops: Vec<OpId> = Vec::with_capacity(n_ops);
        let mut value_producers: Vec<OpId> = Vec::new();

        for idx in 0..n_ops {
            let is_memory = self.rng.gen_bool(cfg.memory_fraction);
            let mut produces_value = true;
            let op = if is_memory {
                let arr = arrays[self.rng.gen_index(arrays.len())];
                let stride = [8i64, 8, 8, 16, 64][self.rng.gen_index(5)];
                let offset = self.rng.gen_index(8) as i64 * 8;
                let r = b.array_ref(arr).offset(offset).stride(i, stride).build();
                let is_store = self.rng.gen_bool(cfg.store_fraction) && !value_producers.is_empty();
                if is_store {
                    produces_value = false;
                    b.store(format!("ST{idx}"), r)
                } else {
                    b.load(format!("LD{idx}"), r)
                }
            } else if self.rng.gen_bool(0.2) {
                b.int_op(format!("INT{idx}"))
            } else {
                b.fp_op(format!("FP{idx}"))
            };

            // Wire one or two forward register inputs from earlier producers.
            if !value_producers.is_empty() {
                let inputs = 1 + usize::from(self.rng.gen_bool(0.5));
                for _ in 0..inputs {
                    let src = value_producers[self.rng.gen_index(value_producers.len())];
                    b.data_edge(src, op, 0);
                }
            }
            // Occasionally add a loop-carried edge back to an earlier value
            // producer (forming a recurrence through that producer).
            if produces_value
                && !value_producers.is_empty()
                && self.rng.gen_bool(cfg.recurrence_probability)
            {
                let dst = value_producers[self.rng.gen_index(value_producers.len())];
                let distance = self.rng.gen_range_inclusive(1, 2) as u32;
                b.data_edge(op, dst, distance);
            }

            ops.push(op);
            if produces_value {
                value_producers.push(op);
            }
        }

        b.build()
            .expect("generated loops are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::{BaselineScheduler, ModuloScheduler, RmcaScheduler};
    use mvp_machine::presets;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut g1 = LoopGenerator::with_seed(42);
        let mut g2 = LoopGenerator::with_seed(42);
        for _ in 0..5 {
            let a = g1.generate();
            let b = g2.generate();
            assert_eq!(a.num_ops(), b.num_ops());
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn different_seeds_give_different_loops() {
        let a = LoopGenerator::with_seed(1).generate();
        let b = LoopGenerator::with_seed(2).generate();
        assert!(a.num_ops() != b.num_ops() || a.edges() != b.edges());
    }

    #[test]
    fn generated_loops_respect_the_size_bounds() {
        let cfg = GeneratorConfig {
            min_ops: 10,
            max_ops: 14,
            ..GeneratorConfig::default()
        };
        let mut g = LoopGenerator::new(cfg, 7);
        for _ in 0..20 {
            let l = g.generate();
            assert!(l.num_ops() >= 10 && l.num_ops() <= 14);
        }
    }

    #[test]
    fn generated_loops_are_schedulable_by_both_schedulers() {
        let mut g = LoopGenerator::with_seed(3);
        let machine = presets::two_cluster();
        for _ in 0..10 {
            let l = g.generate();
            assert!(
                BaselineScheduler::new().schedule(&l, &machine).is_ok(),
                "{}",
                l.name()
            );
            assert!(
                RmcaScheduler::new().schedule(&l, &machine).is_ok(),
                "{}",
                l.name()
            );
        }
    }
}
