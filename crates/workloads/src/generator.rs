//! Seeded random loop generator.
//!
//! Used by property-based tests (schedulers must produce valid schedules for
//! arbitrary well-formed loops), by the differential fuzz harness and by
//! stress experiments in the benchmark harness. Generated loops are always
//! valid: register edges only point forward in operation order unless they
//! carry a positive iteration distance, so the distance-0 subgraph is
//! acyclic by construction.
//!
//! Valid does **not** mean modulo-schedulable: a random recurrence can pinch
//! an operation's scheduling window so hard that no initiation interval in
//! the search range admits a schedule. [`GeneratorMode`] makes the caller
//! choose explicitly how to handle such seeds instead of having them fail
//! downstream: [`Unconstrained`](GeneratorMode::Unconstrained) returns every
//! loop as drawn (pair it with the list-scheduling fallback for end-to-end
//! runs), while [`Schedulable`](GeneratorMode::Schedulable) transparently
//! redraws until the loop passes a modulo-scheduling probe.

use crate::rng::SplitMix64;
use mvp_core::{BaselineScheduler, ModuloScheduler, RmcaScheduler};
use mvp_ir::{Loop, OpId};
use mvp_machine::{presets, MachineConfig};

/// How the generator treats candidate loops that no modulo schedule fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GeneratorMode {
    /// Return every well-formed loop as drawn, including the occasional one
    /// whose II search exhausts. This is the right mode for differential
    /// fuzzing, where the list-scheduling fallback
    /// (`mvp_core::FallbackScheduler`) guarantees end-to-end progress.
    #[default]
    Unconstrained,
    /// Redraw (advancing the generator's RNG deterministically) until the
    /// candidate is modulo-schedulable by both the Baseline and RMCA
    /// schedulers on the Table-1 2-cluster preset. The retry is bounded; see
    /// [`LoopGenerator::generate`] for the exact contract.
    Schedulable,
}

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Minimum number of operations per loop.
    pub min_ops: usize,
    /// Maximum number of operations per loop.
    pub max_ops: usize,
    /// Fraction of operations that access memory (loads and stores).
    pub memory_fraction: f64,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
    /// Probability that an operation receives an extra loop-carried input.
    pub recurrence_probability: f64,
    /// Number of arrays to declare.
    pub num_arrays: usize,
    /// Trip count of the generated innermost loop.
    pub inner_trip: u64,
    /// Whether unschedulable candidates are returned or redrawn.
    pub mode: GeneratorMode,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            min_ops: 6,
            max_ops: 24,
            memory_fraction: 0.4,
            store_fraction: 0.25,
            recurrence_probability: 0.15,
            num_arrays: 4,
            inner_trip: 64,
            mode: GeneratorMode::Unconstrained,
        }
    }
}

impl GeneratorConfig {
    /// Returns a copy with the given [`GeneratorMode`].
    #[must_use]
    pub fn with_mode(mut self, mode: GeneratorMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Upper bound on redraws per [`LoopGenerator::generate`] call in
/// [`GeneratorMode::Schedulable`]. With the default configuration, roughly
/// one seed in ten draws an unschedulable candidate (measured over 1024
/// seeds by the differential fuzz harness), so 64 consecutive failures —
/// probability on the order of 10⁻⁶⁴ — indicate a configuration that
/// practically never produces schedulable loops; better to fail loudly than
/// spin.
pub const MAX_SCHEDULABLE_RETRIES: usize = 64;

/// Seeded random loop generator.
#[derive(Debug)]
pub struct LoopGenerator {
    config: GeneratorConfig,
    rng: SplitMix64,
    counter: u64,
}

impl LoopGenerator {
    /// Creates a generator with the given configuration and seed.
    #[must_use]
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        Self {
            config,
            rng: SplitMix64::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Creates a generator with default configuration.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GeneratorConfig::default(), seed)
    }

    /// Generates the next random loop.
    ///
    /// In [`GeneratorMode::Unconstrained`] (the default) every well-formed
    /// candidate is returned, schedulable or not. In
    /// [`GeneratorMode::Schedulable`] candidates are redrawn — consuming RNG
    /// state, so the sequence stays deterministic for a seed — until one
    /// passes [`is_modulo_schedulable`] on the Table-1 2-cluster preset; use
    /// [`LoopGenerator::generate_schedulable_for`] to probe a different
    /// machine.
    ///
    /// # Panics
    ///
    /// In [`GeneratorMode::Schedulable`], panics after
    /// [`MAX_SCHEDULABLE_RETRIES`] consecutive unschedulable candidates
    /// (which the default configuration does not come close to).
    pub fn generate(&mut self) -> Loop {
        match self.config.mode {
            GeneratorMode::Unconstrained => self.generate_raw(),
            GeneratorMode::Schedulable => self
                .generate_schedulable_for(&presets::two_cluster())
                .unwrap_or_else(|| {
                    panic!(
                        "no schedulable loop in {MAX_SCHEDULABLE_RETRIES} candidates; \
                         this generator configuration is hostile to modulo scheduling"
                    )
                }),
        }
    }

    /// Draws candidates until one is modulo-schedulable on `machine` (at
    /// most [`MAX_SCHEDULABLE_RETRIES`] attempts), regardless of the
    /// configured [`GeneratorMode`]. Returns `None` when every candidate
    /// failed the probe.
    pub fn generate_schedulable_for(&mut self, machine: &MachineConfig) -> Option<Loop> {
        for _ in 0..MAX_SCHEDULABLE_RETRIES {
            let candidate = self.generate_raw();
            if is_modulo_schedulable(&candidate, machine) {
                return Some(candidate);
            }
        }
        None
    }

    /// Generates the next candidate without any schedulability probe.
    fn generate_raw(&mut self) -> Loop {
        let cfg = self.config;
        self.counter += 1;
        let mut b = Loop::builder(format!("random_{}", self.counter));
        let i = b.dimension("I", cfg.inner_trip);

        let arrays: Vec<_> = (0..cfg.num_arrays.max(1))
            .map(|k| {
                // Mix aligned and unaligned bases so some pairs conflict in
                // small direct-mapped caches.
                let base = (k as u64) * 8192 + if k % 2 == 0 { 0 } else { 1024 };
                b.array(format!("ARR{k}"), base, 64 * 1024)
            })
            .collect();

        let n_ops = self
            .rng
            .gen_range_inclusive(cfg.min_ops, cfg.max_ops.max(cfg.min_ops));
        let mut ops: Vec<OpId> = Vec::with_capacity(n_ops);
        let mut value_producers: Vec<OpId> = Vec::new();

        for idx in 0..n_ops {
            let is_memory = self.rng.gen_bool(cfg.memory_fraction);
            let mut produces_value = true;
            let op = if is_memory {
                let arr = arrays[self.rng.gen_index(arrays.len())];
                let stride = [8i64, 8, 8, 16, 64][self.rng.gen_index(5)];
                let offset = self.rng.gen_index(8) as i64 * 8;
                let r = b.array_ref(arr).offset(offset).stride(i, stride).build();
                let is_store = self.rng.gen_bool(cfg.store_fraction) && !value_producers.is_empty();
                if is_store {
                    produces_value = false;
                    b.store(format!("ST{idx}"), r)
                } else {
                    b.load(format!("LD{idx}"), r)
                }
            } else if self.rng.gen_bool(0.2) {
                b.int_op(format!("INT{idx}"))
            } else {
                b.fp_op(format!("FP{idx}"))
            };

            // Wire one or two forward register inputs from earlier producers.
            if !value_producers.is_empty() {
                let inputs = 1 + usize::from(self.rng.gen_bool(0.5));
                for _ in 0..inputs {
                    let src = value_producers[self.rng.gen_index(value_producers.len())];
                    b.data_edge(src, op, 0);
                }
            }
            // Occasionally add a loop-carried edge back to an earlier value
            // producer (forming a recurrence through that producer).
            if produces_value
                && !value_producers.is_empty()
                && self.rng.gen_bool(cfg.recurrence_probability)
            {
                let dst = value_producers[self.rng.gen_index(value_producers.len())];
                let distance = self.rng.gen_range_inclusive(1, 2) as u32;
                b.data_edge(op, dst, distance);
            }

            ops.push(op);
            if produces_value {
                value_producers.push(op);
            }
        }

        b.build()
            .expect("generated loops are valid by construction")
    }
}

/// The schedulability probe used by [`GeneratorMode::Schedulable`]: the loop
/// must be modulo-schedulable by **both** the Baseline and the RMCA
/// scheduler (default options) on `machine`, so loops the probe accepts work
/// with every paper configuration downstream.
#[must_use]
pub fn is_modulo_schedulable(l: &Loop, machine: &MachineConfig) -> bool {
    BaselineScheduler::new().schedule(l, machine).is_ok()
        && RmcaScheduler::new().schedule(l, machine).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_machine::presets;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut g1 = LoopGenerator::with_seed(42);
        let mut g2 = LoopGenerator::with_seed(42);
        for _ in 0..5 {
            let a = g1.generate();
            let b = g2.generate();
            assert_eq!(a.num_ops(), b.num_ops());
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn different_seeds_give_different_loops() {
        let a = LoopGenerator::with_seed(1).generate();
        let b = LoopGenerator::with_seed(2).generate();
        assert!(a.num_ops() != b.num_ops() || a.edges() != b.edges());
    }

    #[test]
    fn generated_loops_respect_the_size_bounds() {
        let cfg = GeneratorConfig {
            min_ops: 10,
            max_ops: 14,
            ..GeneratorConfig::default()
        };
        let mut g = LoopGenerator::new(cfg, 7);
        for _ in 0..20 {
            let l = g.generate();
            assert!(l.num_ops() >= 10 && l.num_ops() <= 14);
        }
    }

    #[test]
    fn generated_loops_are_schedulable_by_both_schedulers() {
        let mut g = LoopGenerator::with_seed(3);
        let machine = presets::two_cluster();
        for _ in 0..10 {
            let l = g.generate();
            assert!(
                BaselineScheduler::new().schedule(&l, &machine).is_ok(),
                "{}",
                l.name()
            );
            assert!(
                RmcaScheduler::new().schedule(&l, &machine).is_ok(),
                "{}",
                l.name()
            );
        }
    }

    #[test]
    fn schedulable_mode_only_emits_schedulable_loops() {
        let cfg = GeneratorConfig::default().with_mode(GeneratorMode::Schedulable);
        let mut g = LoopGenerator::new(cfg, 0xFEED);
        let machine = presets::two_cluster();
        for _ in 0..10 {
            let l = g.generate();
            assert!(is_modulo_schedulable(&l, &machine), "{}", l.name());
        }
    }

    #[test]
    fn schedulable_mode_stays_deterministic_per_seed() {
        let cfg = GeneratorConfig::default().with_mode(GeneratorMode::Schedulable);
        let mut g1 = LoopGenerator::new(cfg, 99);
        let mut g2 = LoopGenerator::new(cfg, 99);
        for _ in 0..5 {
            let a = g1.generate();
            let b = g2.generate();
            assert_eq!(a.num_ops(), b.num_ops());
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn generate_schedulable_for_probes_the_given_machine() {
        // A machine the default generator cannot target at all (no memory
        // units) exhausts the retry budget and reports None instead of
        // spinning or silently returning an unusable loop.
        use mvp_machine::{BusConfig, CacheGeometry, ClusterConfig, MachineConfig};
        let no_mem = MachineConfig::builder("no-mem")
            .homogeneous_clusters(
                1,
                ClusterConfig::new(2, 2, 0, 32, CacheGeometry::direct_mapped(4096)),
            )
            .register_buses(BusConfig::finite(1, 1))
            .memory_buses(BusConfig::finite(1, 1))
            .build()
            .unwrap();
        // Every default-config loop contains memory operations with very
        // high probability across 64 candidates.
        let mut g = LoopGenerator::with_seed(7);
        assert!(g.generate_schedulable_for(&no_mem).is_none());

        let mut g = LoopGenerator::with_seed(7);
        let l = g
            .generate_schedulable_for(&presets::four_cluster())
            .expect("default config is schedulable on the 4-cluster preset");
        assert!(is_modulo_schedulable(&l, &presets::four_cluster()));
    }
}
