//! Synthetic kernels modelled on the SPECfp95 programs of the paper's
//! evaluation.
//!
//! Every kernel module exposes `loops(&KernelParams) -> Vec<Loop>` returning
//! the modulo-scheduled innermost loops that dominate the corresponding
//! benchmark, rebuilt from their published loop structure: operation mix,
//! dependence shape (including recurrences), access strides and array
//! layouts. Trip counts are parameterised so experiments stay fast.

pub mod applu;
pub mod apsi;
pub mod hydro2d;
pub mod mgrid;
pub mod specfp_small;
pub mod su2cor;
pub mod swim;
pub mod tomcatv;
pub mod turb3d;

/// Common sizing parameters of the synthetic kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Trip count of the pipelined innermost loop.
    pub inner_trip: u64,
    /// Trip count of the surrounding loop (how many times the innermost loop
    /// is entered).
    pub outer_trip: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        Self {
            inner_trip: 128,
            outer_trip: 4,
        }
    }
}

impl KernelParams {
    /// Parameters scaled down for fast unit tests.
    #[must_use]
    pub fn small() -> Self {
        Self {
            inner_trip: 32,
            outer_trip: 2,
        }
    }

    /// Size in bytes of a 2D array of doubles spanning the whole iteration
    /// space plus a halo row/column.
    #[must_use]
    pub fn plane_bytes(&self) -> u64 {
        (self.inner_trip + 2) * (self.outer_trip + 2) * 8
    }

    /// Row stride (bytes) of a 2D array whose rows follow the inner loop.
    #[must_use]
    pub fn row_bytes(&self) -> i64 {
        (self.inner_trip as i64 + 2) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::{BaselineScheduler, ModuloScheduler, RmcaScheduler};
    use mvp_ir::Loop;
    use mvp_machine::presets;

    fn every_kernel(params: &KernelParams) -> Vec<(&'static str, Vec<Loop>)> {
        vec![
            ("tomcatv", tomcatv::loops(params)),
            ("swim", swim::loops(params)),
            ("su2cor", su2cor::loops(params)),
            ("hydro2d", hydro2d::loops(params)),
            ("mgrid", mgrid::loops(params)),
            ("applu", applu::loops(params)),
            ("turb3d", turb3d::loops(params)),
            ("apsi", apsi::loops(params)),
        ]
    }

    #[test]
    fn all_kernels_build_and_have_memory_operations() {
        for (name, loops) in every_kernel(&KernelParams::default()) {
            assert!(!loops.is_empty(), "{name} has no loops");
            for l in &loops {
                assert!(l.num_ops() >= 5, "{name}/{} is too small", l.name());
                assert!(
                    l.memory_ops().count() >= 2,
                    "{name}/{} has no memory mix",
                    l.name()
                );
                assert!(l.iterations() >= 2);
            }
        }
    }

    #[test]
    fn all_kernels_are_schedulable_on_every_table1_machine() {
        let params = KernelParams::small();
        for machine in presets::table1() {
            for (name, loops) in every_kernel(&params) {
                for l in &loops {
                    let b = BaselineScheduler::new().schedule(l, &machine);
                    assert!(
                        b.is_ok(),
                        "baseline failed on {name}/{} for {}",
                        l.name(),
                        machine.name
                    );
                    let r = RmcaScheduler::new().schedule(l, &machine);
                    assert!(
                        r.is_ok(),
                        "rmca failed on {name}/{} for {}",
                        l.name(),
                        machine.name
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_params_helpers() {
        let p = KernelParams::default();
        assert_eq!(p.row_bytes(), 130 * 8);
        assert_eq!(p.plane_bytes(), 130 * 6 * 8);
        let s = KernelParams::small();
        assert!(s.inner_trip < p.inner_trip);
    }
}
