//! `tomcatv` — vectorised mesh generation.
//!
//! The dominant loop sweeps a 2D mesh and computes residuals from the
//! coordinates of the four neighbours of every point:
//!
//! ```fortran
//! DO J = 2, N-1
//!   DO I = 2, N-1
//!     XX = X(I+1,J) - X(I-1,J)
//!     YX = Y(I+1,J) - Y(I-1,J)
//!     XY = X(I,J+1) - X(I,J-1)
//!     YY = Y(I,J+1) - Y(I,J-1)
//!     RX(I,J) = a*XX + b*XY
//!     RY(I,J) = a*YX + b*YY
//!   ENDDO
//! ENDDO
//! ```
//!
//! Eight neighbour loads on two arrays with strong spatial and group reuse
//! along `I`, a small tree of floating-point operations and two stores. The
//! `X` and `Y` planes are laid out a multiple of 4 KB apart so that mixing
//! `X` and `Y` references in the same small local cache causes conflict
//! misses, while keeping each array's references together preserves reuse.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `tomcatv`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let row = params.row_bytes();
    let plane = params.plane_bytes();

    let mut b = Loop::builder("tomcatv_residual");
    let j = b.dimension("J", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    // X and Y conflict-aligned (multiple of 4 KB apart); RX/RY further away.
    let x = b.array("X", 4 * 4096, plane);
    let y = b.array("Y", 16 * 4096, plane);
    let rx = b.array("RX", 32 * 4096 + 1024, plane);
    let ry = b.array("RY", 48 * 4096 + 2048, plane);

    let x_ip1 = b.load(
        "X_ip1",
        b.array_ref(x)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let x_im1 = b.load(
        "X_im1",
        b.array_ref(x)
            .offset(-elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let x_jp1 = b.load(
        "X_jp1",
        b.array_ref(x)
            .offset(row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let x_jm1 = b.load(
        "X_jm1",
        b.array_ref(x)
            .offset(-row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let y_ip1 = b.load(
        "Y_ip1",
        b.array_ref(y)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let y_im1 = b.load(
        "Y_im1",
        b.array_ref(y)
            .offset(-elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let y_jp1 = b.load(
        "Y_jp1",
        b.array_ref(y)
            .offset(row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let y_jm1 = b.load(
        "Y_jm1",
        b.array_ref(y)
            .offset(-row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );

    let xx = b.fp_op("XX");
    let xy = b.fp_op("XY");
    let yx = b.fp_op("YX");
    let yy = b.fp_op("YY");
    let rx_a = b.fp_op("RX_a");
    let rx_sum = b.fp_op("RX_sum");
    let ry_a = b.fp_op("RY_a");
    let ry_sum = b.fp_op("RY_sum");

    let st_rx = b.store(
        "ST_RX",
        b.array_ref(rx).stride(i, elem).stride(j, row).build(),
    );
    let st_ry = b.store(
        "ST_RY",
        b.array_ref(ry).stride(i, elem).stride(j, row).build(),
    );

    b.data_edge(x_ip1, xx, 0);
    b.data_edge(x_im1, xx, 0);
    b.data_edge(x_jp1, xy, 0);
    b.data_edge(x_jm1, xy, 0);
    b.data_edge(y_ip1, yx, 0);
    b.data_edge(y_im1, yx, 0);
    b.data_edge(y_jp1, yy, 0);
    b.data_edge(y_jm1, yy, 0);
    b.data_edge(xx, rx_a, 0);
    b.data_edge(xy, rx_sum, 0);
    b.data_edge(rx_a, rx_sum, 0);
    b.data_edge(yx, ry_a, 0);
    b.data_edge(yy, ry_sum, 0);
    b.data_edge(ry_a, ry_sum, 0);
    b.data_edge(rx_sum, st_rx, 0);
    b.data_edge(ry_sum, st_ry, 0);

    vec![b.build().expect("tomcatv kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_cache::LocalityAnalysis;
    use mvp_machine::CacheGeometry;

    #[test]
    fn operation_mix_matches_the_residual_loop() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (0, 8, 8, 2));
        assert_eq!(l.edges().len(), 16);
    }

    #[test]
    fn same_array_neighbours_show_group_reuse_and_cross_array_conflicts() {
        let params = KernelParams::default();
        let l = &loops(&params)[0];
        let geometry = CacheGeometry::direct_mapped(4096);
        let analysis = LocalityAnalysis::with_window(l, 128);
        let ids: Vec<_> = l.loads().collect();
        let (x_ip1, x_im1, y_ip1) = (ids[0], ids[1], ids[4]);
        // Keeping the two X neighbours together is much cheaper than mixing
        // an X and a Y reference in the same local cache.
        let x_together = analysis.miss_count(geometry, &[x_ip1, x_im1]);
        let x_with_y = analysis.miss_count(geometry, &[x_ip1, y_ip1]);
        assert!(x_together < x_with_y);
    }
}
