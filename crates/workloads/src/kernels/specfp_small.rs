//! `specfp_small` — a SPECfp-flavoured subset of *small* loops for the
//! optimality-gap corpus.
//!
//! The gap experiment wants loop bodies the exact branch-and-bound search
//! can usually prove optimal within its node budget, yet with the shapes of
//! real SPECfp95 inner loops rather than random generator output: neighbour
//! stencils with group reuse, relaxation recurrences, reductions. Each loop
//! here is a trimmed (≤ 7-operation) slice of one of the full kernels in
//! this crate — tomcatv's residual and relaxation, swim's flux stencil,
//! mgrid's reduction — small enough that all four gap machines decide them
//! quickly, while still exercising memory-unit contention (every loop keeps
//! at least two memory operations) and, for two of them, a loop-carried
//! recurrence that pins `RecMII`.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the four small SPECfp-flavoured loops at the given sizing.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let row = params.row_bytes();
    let plane = params.plane_bytes();

    // tomcatv: half of the residual — XX = X(I+1)-X(I-1); RX = a*XX.
    let residual = {
        let mut b = Loop::builder("tomcatv_xx_small");
        let j = b.dimension("J", params.outer_trip);
        let i = b.dimension("I", params.inner_trip);
        let x = b.array("X", 4 * 4096, plane);
        let rx = b.array("RX", 32 * 4096 + 1024, plane);
        let x_ip1 = b.load(
            "X_ip1",
            b.array_ref(x)
                .offset(elem)
                .stride(i, elem)
                .stride(j, row)
                .build(),
        );
        let x_im1 = b.load(
            "X_im1",
            b.array_ref(x)
                .offset(-elem)
                .stride(i, elem)
                .stride(j, row)
                .build(),
        );
        let xx = b.fp_op("XX");
        let rx_a = b.fp_op("RX_a");
        let st = b.store(
            "ST_RX",
            b.array_ref(rx).stride(i, elem).stride(j, row).build(),
        );
        b.data_edge(x_ip1, xx, 0);
        b.data_edge(x_im1, xx, 0);
        b.data_edge(xx, rx_a, 0);
        b.data_edge(rx_a, st, 0);
        b.build()
            .expect("tomcatv_xx_small is valid by construction")
    };

    // tomcatv: the SOR-style relaxation sweep — XN(I) depends on the
    // previous iteration's XN (a wavefront recurrence through the update).
    let relax = {
        let mut b = Loop::builder("tomcatv_relax_small");
        let j = b.dimension("J", params.outer_trip);
        let i = b.dimension("I", params.inner_trip);
        let r = b.array("R", 8 * 4096, plane);
        let x = b.array("X", 20 * 4096, plane);
        let ld_r = b.load("R_i", b.array_ref(r).stride(i, elem).stride(j, row).build());
        let ld_x = b.load("X_i", b.array_ref(x).stride(i, elem).stride(j, row).build());
        let w = b.fp_op("W");
        let xn = b.fp_op("XN");
        let st = b.store(
            "ST_X",
            b.array_ref(x).stride(i, elem).stride(j, row).build(),
        );
        b.data_edge(ld_r, w, 0);
        b.data_edge(ld_x, xn, 0);
        b.data_edge(w, xn, 0);
        b.data_edge(xn, st, 0);
        b.data_edge(xn, xn, 1); // relaxation wavefront along I
        b.build()
            .expect("tomcatv_relax_small is valid by construction")
    };

    // swim: the flux stencil — F = (U(I+1)-U(I)) * V(I).
    let flux = {
        let mut b = Loop::builder("swim_flux_small");
        let j = b.dimension("J", params.outer_trip);
        let i = b.dimension("I", params.inner_trip);
        let u = b.array("U", 2 * 4096, plane);
        let v = b.array("V", 10 * 4096, plane);
        let f = b.array("F", 24 * 4096 + 512, plane);
        let u_ip1 = b.load(
            "U_ip1",
            b.array_ref(u)
                .offset(elem)
                .stride(i, elem)
                .stride(j, row)
                .build(),
        );
        let u_i = b.load("U_i", b.array_ref(u).stride(i, elem).stride(j, row).build());
        let v_i = b.load("V_i", b.array_ref(v).stride(i, elem).stride(j, row).build());
        let du = b.fp_op("DU");
        let fx = b.fp_op("FX");
        let st = b.store(
            "ST_F",
            b.array_ref(f).stride(i, elem).stride(j, row).build(),
        );
        b.data_edge(u_ip1, du, 0);
        b.data_edge(u_i, du, 0);
        b.data_edge(du, fx, 0);
        b.data_edge(v_i, fx, 0);
        b.data_edge(fx, st, 0);
        b.build().expect("swim_flux_small is valid by construction")
    };

    // mgrid: the dot-product reduction — S += A(I)*B(I), partials stored.
    let reduce = {
        let mut b = Loop::builder("mgrid_dot_small");
        let j = b.dimension("J", params.outer_trip);
        let i = b.dimension("I", params.inner_trip);
        let a = b.array("A", 6 * 4096, plane);
        let c = b.array("C", 14 * 4096, plane);
        let p = b.array("P", 28 * 4096 + 256, plane);
        let ld_a = b.load("A_i", b.array_ref(a).stride(i, elem).stride(j, row).build());
        let ld_c = b.load("C_i", b.array_ref(c).stride(i, elem).stride(j, row).build());
        let mul = b.fp_op("MUL");
        let acc = b.fp_op("ACC");
        let st = b.store(
            "ST_P",
            b.array_ref(p).stride(i, elem).stride(j, row).build(),
        );
        b.data_edge(ld_a, mul, 0);
        b.data_edge(ld_c, mul, 0);
        b.data_edge(mul, acc, 0);
        b.data_edge(acc, acc, 1); // reduction recurrence
        b.data_edge(acc, st, 0);
        b.build().expect("mgrid_dot_small is valid by construction")
    };

    vec![residual, relax, flux, reduce]
}

/// The sizing the optimality-gap corpus uses: small trip counts (the gap
/// tables only consult the schedulers, so trip counts merely keep any
/// simulation of these loops fast).
#[must_use]
pub fn gap_subset() -> Vec<Loop> {
    loops(&KernelParams {
        inner_trip: 64,
        outer_trip: 2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_core::{BaselineScheduler, ModuloScheduler, RmcaScheduler};
    use mvp_machine::presets;

    #[test]
    fn subset_shapes_fit_the_gap_corpus() {
        let loops = gap_subset();
        assert_eq!(loops.len(), 4);
        for l in &loops {
            assert!(l.num_ops() >= 5, "{} is too small", l.name());
            assert!(l.num_ops() <= 7, "{} is too big for the oracle", l.name());
            assert!(
                l.memory_ops().count() >= 2,
                "{} has no memory mix",
                l.name()
            );
        }
        // Two of the four carry a recurrence that pins RecMII.
        let carried = loops
            .iter()
            .filter(|l| l.edges().iter().any(|e| e.distance > 0))
            .count();
        assert_eq!(carried, 2);
    }

    #[test]
    fn subset_is_schedulable_on_every_table1_machine() {
        for machine in presets::table1() {
            for l in &gap_subset() {
                assert!(
                    BaselineScheduler::new().schedule(l, &machine).is_ok(),
                    "baseline failed on {} for {}",
                    l.name(),
                    machine.name
                );
                assert!(
                    RmcaScheduler::new().schedule(l, &machine).is_ok(),
                    "rmca failed on {} for {}",
                    l.name(),
                    machine.name
                );
            }
        }
    }
}
