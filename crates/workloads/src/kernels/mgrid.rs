//! `mgrid` — 3D multigrid solver.
//!
//! The smoother (`RESID`/`PSINV`) applies a 27-point stencil on a 3D grid;
//! the innermost loop reads the centre line and the six face neighbours of
//! each point and accumulates them through an addition tree before writing
//! the result. The 3D strides (element, row, plane) give strong spatial reuse
//! along `I`, while the `J`/`K` neighbours touch lines far apart — exactly
//! the behaviour that makes the per-cluster cache slice precious.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `mgrid`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let row = params.row_bytes();
    let plane_stride = row * (params.outer_trip as i64 + 2);
    let volume = (params.plane_bytes()) * (params.outer_trip + 2);

    let mut b = Loop::builder("mgrid_resid");
    let j = b.dimension("J", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    let u = b.array("U", 16 * 4096, volume);
    let v = b.array("V", 64 * 4096, volume); // conflicts with U
    let r = b.array("R", 128 * 4096 + 1024, volume);

    let centre = b.load("U_c", b.array_ref(u).stride(i, elem).stride(j, row).build());
    let west = b.load(
        "U_w",
        b.array_ref(u)
            .offset(-elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let east = b.load(
        "U_e",
        b.array_ref(u)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let north = b.load(
        "U_n",
        b.array_ref(u)
            .offset(row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let south = b.load(
        "U_s",
        b.array_ref(u)
            .offset(-row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let up = b.load(
        "U_up",
        b.array_ref(u)
            .offset(plane_stride)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let down = b.load(
        "U_dn",
        b.array_ref(u)
            .offset(-plane_stride)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let rhs = b.load("V_c", b.array_ref(v).stride(i, elem).stride(j, row).build());

    let s_we = b.fp_op("S_WE");
    let s_ns = b.fp_op("S_NS");
    let s_ud = b.fp_op("S_UD");
    let s_faces = b.fp_op("S_FACES");
    let s_all = b.fp_op("S_ALL");
    let scaled = b.fp_op("SCALED");
    let resid = b.fp_op("RESID");

    let st_r = b.store(
        "ST_R",
        b.array_ref(r).stride(i, elem).stride(j, row).build(),
    );

    b.data_edge(west, s_we, 0);
    b.data_edge(east, s_we, 0);
    b.data_edge(north, s_ns, 0);
    b.data_edge(south, s_ns, 0);
    b.data_edge(up, s_ud, 0);
    b.data_edge(down, s_ud, 0);
    b.data_edge(s_we, s_faces, 0);
    b.data_edge(s_ns, s_faces, 0);
    b.data_edge(s_ud, s_all, 0);
    b.data_edge(s_faces, s_all, 0);
    b.data_edge(centre, scaled, 0);
    b.data_edge(s_all, scaled, 0);
    b.data_edge(rhs, resid, 0);
    b.data_edge(scaled, resid, 0);
    b.data_edge(resid, st_r, 0);

    vec![b.build().expect("mgrid kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_cache::reuse::{self_reuse, ReuseKind};
    use mvp_machine::CacheGeometry;

    #[test]
    fn operation_mix_matches_the_stencil() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (0, 7, 8, 1));
        // 9 memory operations means ResMII of at least 3 on the 2-cluster
        // machine's 4 memory units.
        assert!(mvp_ir::mii::res_mii(l, &mvp_machine::presets::two_cluster()) >= 3);
    }

    #[test]
    fn all_loads_have_unit_stride_spatial_reuse() {
        let l = &loops(&KernelParams::default())[0];
        let g = CacheGeometry::direct_mapped(2048);
        for op in l.loads() {
            assert_eq!(self_reuse(l, op, g), ReuseKind::SelfSpatial);
        }
    }
}
