//! `swim` — shallow-water equations on a 2D grid.
//!
//! The `CALC1`/`CALC2` loops read the velocity and pressure planes at a
//! point and its east/north neighbours and write three new planes:
//!
//! ```fortran
//! DO J = 1, N
//!   DO I = 1, M
//!     CU(I+1,J)  = .5*(P(I+1,J)+P(I,J))*U(I+1,J)
//!     CV(I,J+1)  = .5*(P(I,J+1)+P(I,J))*V(I,J+1)
//!     Z(I+1,J+1) = (FSDX*(V(I+1,J+1)-V(I,J+1)) - FSDY*(U(I+1,J+1)-U(I+1,J)))
//!                  / (P(I,J)+P(I+1,J)+P(I+1,J+1)+P(I,J+1))
//!   ENDDO
//! ENDDO
//! ```
//!
//! The model keeps the three input planes (`U`, `V`, `P`), eight loads with
//! unit-stride spatial reuse, a floating-point reduction tree and three
//! stores. `U` and `P` are conflict-aligned.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `swim`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let row = params.row_bytes();
    let plane = params.plane_bytes();

    let mut b = Loop::builder("swim_calc1");
    let j = b.dimension("J", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    let u = b.array("U", 0, plane);
    let v = b.array("V", 8 * 4096 + 2048, plane);
    let p = b.array("P", 24 * 4096, plane); // conflicts with U in small caches
    let cu = b.array("CU", 40 * 4096 + 1024, plane);
    let cv = b.array("CV", 56 * 4096 + 3072, plane);
    let z = b.array("Z", 72 * 4096 + 512, plane);

    let p_ij = b.load(
        "P_ij",
        b.array_ref(p).stride(i, elem).stride(j, row).build(),
    );
    let p_ip1 = b.load(
        "P_ip1",
        b.array_ref(p)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let p_jp1 = b.load(
        "P_jp1",
        b.array_ref(p)
            .offset(row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let u_ip1 = b.load(
        "U_ip1",
        b.array_ref(u)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let u_jp1 = b.load(
        "U_jp1",
        b.array_ref(u)
            .offset(row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let v_jp1 = b.load(
        "V_jp1",
        b.array_ref(v)
            .offset(row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let v_ip1 = b.load(
        "V_ip1",
        b.array_ref(v)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );

    let psum1 = b.fp_op("PSUM1");
    let cu_val = b.fp_op("CU_val");
    let psum2 = b.fp_op("PSUM2");
    let cv_val = b.fp_op("CV_val");
    let dv = b.fp_op("DV");
    let du = b.fp_op("DU");
    let znum = b.fp_op("ZNUM");
    let pden = b.fp_op("PDEN");
    let z_val = b.fp_op("Z_val");

    let st_cu = b.store(
        "ST_CU",
        b.array_ref(cu)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let st_cv = b.store(
        "ST_CV",
        b.array_ref(cv)
            .offset(row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let st_z = b.store(
        "ST_Z",
        b.array_ref(z)
            .offset(elem + row)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );

    b.data_edge(p_ij, psum1, 0);
    b.data_edge(p_ip1, psum1, 0);
    b.data_edge(psum1, cu_val, 0);
    b.data_edge(u_ip1, cu_val, 0);
    b.data_edge(cu_val, st_cu, 0);

    b.data_edge(p_ij, psum2, 0);
    b.data_edge(p_jp1, psum2, 0);
    b.data_edge(psum2, cv_val, 0);
    b.data_edge(v_jp1, cv_val, 0);
    b.data_edge(cv_val, st_cv, 0);

    b.data_edge(v_ip1, dv, 0);
    b.data_edge(v_jp1, dv, 0);
    b.data_edge(u_ip1, du, 0);
    b.data_edge(u_jp1, du, 0);
    b.data_edge(dv, znum, 0);
    b.data_edge(du, znum, 0);
    b.data_edge(psum1, pden, 0);
    b.data_edge(psum2, pden, 0);
    b.data_edge(znum, z_val, 0);
    b.data_edge(pden, z_val, 0);
    b.data_edge(z_val, st_z, 0);

    vec![b.build().expect("swim kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operation_mix_matches_calc1() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (0, 9, 7, 3));
        // All loads feed at least one consumer.
        for op in l.loads() {
            assert!(l.succs(op).count() >= 1);
        }
    }

    #[test]
    fn every_store_depends_on_a_reduction() {
        let l = &loops(&KernelParams::default())[0];
        for op in l.memory_ops() {
            if l.op(op).kind == mvp_ir::OpKind::Store {
                assert_eq!(l.preds(op).count(), 1);
            }
        }
    }
}
