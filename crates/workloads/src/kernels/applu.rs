//! `applu` — SSOR solver for coupled partial differential equations.
//!
//! The lower-triangular sweep (`BLTS`) updates each point using the value
//! just produced for its predecessor along the sweep direction, which creates
//! a genuine loop-carried recurrence through memory *and* registers: the
//! update of `V(I)` needs `V(I-1)` of the same sweep. The recurrence, not the
//! resources, limits the II of this kernel.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `applu`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let row = params.row_bytes();
    let plane = params.plane_bytes();

    let mut b = Loop::builder("applu_blts");
    let j = b.dimension("J", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    let v = b.array("V", 4 * 4096, plane);
    let a = b.array("A", 28 * 4096, plane); // coefficient plane, conflicts with V
    let rsd = b.array("RSD", 44 * 4096 + 1024, plane);

    let coeff = b.load("A_i", b.array_ref(a).stride(i, elem).stride(j, row).build());
    let residual = b.load(
        "RSD_i",
        b.array_ref(rsd).stride(i, elem).stride(j, row).build(),
    );
    // V(I-1): produced by the previous iteration's store.
    let v_prev = b.load(
        "V_im1",
        b.array_ref(v)
            .offset(-elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );

    let contrib = b.fp_op("CONTRIB");
    let relaxed = b.fp_op("RELAXED");
    let update = b.fp_op("UPDATE");

    let st_v = b.store(
        "ST_V",
        b.array_ref(v).stride(i, elem).stride(j, row).build(),
    );

    b.data_edge(coeff, contrib, 0);
    b.data_edge(v_prev, contrib, 0);
    b.data_edge(residual, relaxed, 0);
    b.data_edge(contrib, relaxed, 0);
    b.data_edge(relaxed, update, 0);
    b.data_edge(update, st_v, 0);
    // The store of iteration i produces the value the load of iteration i+1
    // reads: a loop-carried memory dependence closing the SSOR recurrence.
    b.memory_edge(st_v, v_prev, 1);

    vec![b.build().expect("applu kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::{mii, recurrence};
    use mvp_machine::presets;

    #[test]
    fn operation_mix_matches_blts() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (0, 3, 3, 1));
    }

    #[test]
    fn the_sweep_recurrence_bounds_the_ii() {
        let l = &loops(&KernelParams::default())[0];
        let circuits = recurrence::elementary_circuits(l);
        assert_eq!(circuits.len(), 1, "exactly the SSOR recurrence");
        // load (2) + 2 fp (2+2) + update (2) + store (1)... the circuit spans
        // v_prev -> contrib -> relaxed -> update -> st_v -> v_prev, so the II
        // is bounded well above the resource minimum.
        let rec = mii::rec_mii(l, &presets::unified());
        assert!(rec >= 6, "recurrence II {rec} should dominate");
        assert!(mii::res_mii(l, &presets::unified()) <= 2);
    }
}
