//! `hydro2d` — astrophysical Navier-Stokes (Godunov-type scheme).
//!
//! The flux-computation loops read the conserved quantities of a cell and
//! its west neighbour, compute interface fluxes through a chain of
//! floating-point operations (differences, averages, products) and update
//! two output planes. Address computation contributes a couple of integer
//! operations per iteration. The density and momentum planes are conflict
//! aligned, the outputs are not.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `hydro2d`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let row = params.row_bytes();
    let plane = params.plane_bytes();

    let mut b = Loop::builder("hydro2d_flux");
    let j = b.dimension("J", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    let ro = b.array("RO", 4 * 4096, plane);
    let mu = b.array("MU", 20 * 4096, plane); // conflicts with RO
    let en = b.array("EN", 36 * 4096 + 1536, plane);
    let fro = b.array("FRO", 52 * 4096 + 512, plane);
    let fmu = b.array("FMU", 68 * 4096 + 2560, plane);

    let addr1 = b.int_op("ADDR1");
    let addr2 = b.int_op("ADDR2");

    let ro_i = b.load(
        "RO_i",
        b.array_ref(ro).stride(i, elem).stride(j, row).build(),
    );
    let ro_w = b.load(
        "RO_w",
        b.array_ref(ro)
            .offset(-elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let mu_i = b.load(
        "MU_i",
        b.array_ref(mu).stride(i, elem).stride(j, row).build(),
    );
    let mu_w = b.load(
        "MU_w",
        b.array_ref(mu)
            .offset(-elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let en_i = b.load(
        "EN_i",
        b.array_ref(en).stride(i, elem).stride(j, row).build(),
    );

    let d_ro = b.fp_op("D_RO");
    let d_mu = b.fp_op("D_MU");
    let avg_ro = b.fp_op("AVG_RO");
    let vel = b.fp_op("VEL");
    let flux_ro = b.fp_op("FLUX_RO");
    let flux_mu = b.fp_op("FLUX_MU");
    let energy = b.fp_op("ENERGY");

    let st_fro = b.store(
        "ST_FRO",
        b.array_ref(fro).stride(i, elem).stride(j, row).build(),
    );
    let st_fmu = b.store(
        "ST_FMU",
        b.array_ref(fmu).stride(i, elem).stride(j, row).build(),
    );

    // Address computations feed the first loads of each plane.
    b.data_edge(addr1, ro_i, 0);
    b.data_edge(addr2, mu_i, 0);

    b.data_edge(ro_i, d_ro, 0);
    b.data_edge(ro_w, d_ro, 0);
    b.data_edge(mu_i, d_mu, 0);
    b.data_edge(mu_w, d_mu, 0);
    b.data_edge(ro_i, avg_ro, 0);
    b.data_edge(ro_w, avg_ro, 0);
    b.data_edge(mu_i, vel, 0);
    b.data_edge(avg_ro, vel, 0);
    b.data_edge(d_ro, flux_ro, 0);
    b.data_edge(vel, flux_ro, 0);
    b.data_edge(d_mu, flux_mu, 0);
    b.data_edge(vel, flux_mu, 0);
    b.data_edge(en_i, energy, 0);
    b.data_edge(flux_mu, energy, 0);
    b.data_edge(flux_ro, st_fro, 0);
    b.data_edge(energy, st_fmu, 0);

    vec![b.build().expect("hydro2d kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::mii;
    use mvp_machine::presets;

    #[test]
    fn operation_mix_matches_the_flux_loop() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (2, 7, 5, 2));
    }

    #[test]
    fn resource_bound_dominates_on_the_narrow_machine() {
        let l = &loops(&KernelParams::default())[0];
        // 7 memory operations on 4 memory units: ResMII >= 2.
        assert!(mii::res_mii(l, &presets::four_cluster()) >= 2);
        assert_eq!(mii::rec_mii(l, &presets::four_cluster()), 1);
    }
}
