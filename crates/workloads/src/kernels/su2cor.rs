//! `su2cor` — quantum chromodynamics (SU(2) gauge field correlations).
//!
//! The hot loops perform complex matrix-vector products followed by a global
//! accumulation. The model multiplies a complex operand pair per iteration
//! (four loads, complex multiply = 4 multiplications + 2 additions) and folds
//! the result into two accumulators carried across iterations — the
//! loop-carried recurrence that constrains the II of this benchmark.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `su2cor`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let plane = params.plane_bytes();

    let mut b = Loop::builder("su2cor_dot");
    let k = b.dimension("K", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    // Interleaved complex arrays: (re, im) pairs, 16 bytes per element.
    let a = b.array("GA", 0, 2 * plane);
    let w = b.array("W", 12 * 4096 + 1024, 2 * plane);

    let a_re = b.load(
        "A_re",
        b.array_ref(a).stride(i, 2 * elem).stride(k, 256).build(),
    );
    let a_im = b.load(
        "A_im",
        b.array_ref(a)
            .offset(elem)
            .stride(i, 2 * elem)
            .stride(k, 256)
            .build(),
    );
    let w_re = b.load(
        "W_re",
        b.array_ref(w).stride(i, 2 * elem).stride(k, 256).build(),
    );
    let w_im = b.load(
        "W_im",
        b.array_ref(w)
            .offset(elem)
            .stride(i, 2 * elem)
            .stride(k, 256)
            .build(),
    );

    let m_rr = b.fp_op("M_rr");
    let m_ii = b.fp_op("M_ii");
    let m_ri = b.fp_op("M_ri");
    let m_ir = b.fp_op("M_ir");
    let prod_re = b.fp_op("PROD_re");
    let prod_im = b.fp_op("PROD_im");
    let acc_re = b.fp_op("ACC_re");
    let acc_im = b.fp_op("ACC_im");

    b.data_edge(a_re, m_rr, 0);
    b.data_edge(w_re, m_rr, 0);
    b.data_edge(a_im, m_ii, 0);
    b.data_edge(w_im, m_ii, 0);
    b.data_edge(a_re, m_ri, 0);
    b.data_edge(w_im, m_ri, 0);
    b.data_edge(a_im, m_ir, 0);
    b.data_edge(w_re, m_ir, 0);
    b.data_edge(m_rr, prod_re, 0);
    b.data_edge(m_ii, prod_re, 0);
    b.data_edge(m_ri, prod_im, 0);
    b.data_edge(m_ir, prod_im, 0);
    // Accumulator recurrences.
    b.data_edge(prod_re, acc_re, 0);
    b.data_edge(acc_re, acc_re, 1);
    b.data_edge(prod_im, acc_im, 0);
    b.data_edge(acc_im, acc_im, 1);

    vec![b.build().expect("su2cor kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::{mii, recurrence};
    use mvp_machine::presets;

    #[test]
    fn operation_mix_is_a_complex_dot_product() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (0, 8, 4, 0));
    }

    #[test]
    fn the_accumulators_form_recurrences() {
        let l = &loops(&KernelParams::default())[0];
        let circuits = recurrence::elementary_circuits(l);
        assert_eq!(circuits.len(), 2);
        // The 2-cycle FP accumulator bounds the II at 2 even on the widest
        // machine.
        assert!(mii::minimum_ii(l, &presets::unified()) >= 2);
    }
}
