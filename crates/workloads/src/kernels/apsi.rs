//! `apsi` — mesoscale pollutant transport (weather code).
//!
//! The vertical-diffusion loops mix column updates (unit stride) with
//! look-ups of per-level coefficients, a couple of integer index
//! computations and a short floating-point chain ending in one store, with a
//! smoothed value carried to the next iteration (a short recurrence).

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `apsi`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    let row = params.row_bytes();
    let plane = params.plane_bytes();

    let mut b = Loop::builder("apsi_vdiff");
    let j = b.dimension("J", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    let t = b.array("T", 0, plane);
    let q = b.array("Q", 8 * 4096, plane); // conflicts with T
    let coef = b.array("COEF", 18 * 4096 + 512, 64 * 1024);
    let out = b.array("OUT", 30 * 4096 + 1024, plane);

    let idx = b.int_op("IDX");
    let level = b.int_op("LEVEL");

    let t_i = b.load("T_i", b.array_ref(t).stride(i, elem).stride(j, row).build());
    let t_up = b.load(
        "T_up",
        b.array_ref(t)
            .offset(elem)
            .stride(i, elem)
            .stride(j, row)
            .build(),
    );
    let q_i = b.load("Q_i", b.array_ref(q).stride(i, elem).stride(j, row).build());
    let c_i = b.load("C_i", b.array_ref(coef).stride(i, elem).build());

    let grad = b.fp_op("GRAD");
    let flux = b.fp_op("FLUX");
    let mixed = b.fp_op("MIXED");
    let smooth = b.fp_op("SMOOTH");
    let result = b.fp_op("RESULT");

    let st_out = b.store(
        "ST_OUT",
        b.array_ref(out).stride(i, elem).stride(j, row).build(),
    );

    b.data_edge(idx, c_i, 0);
    b.data_edge(level, t_up, 0);
    b.data_edge(t_i, grad, 0);
    b.data_edge(t_up, grad, 0);
    b.data_edge(grad, flux, 0);
    b.data_edge(c_i, flux, 0);
    b.data_edge(q_i, mixed, 0);
    b.data_edge(flux, mixed, 0);
    b.data_edge(mixed, smooth, 0);
    b.data_edge(smooth, smooth, 1); // exponential smoothing recurrence
    b.data_edge(smooth, result, 0);
    b.data_edge(result, st_out, 0);

    vec![b.build().expect("apsi kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_ir::{mii, recurrence};
    use mvp_machine::presets;

    #[test]
    fn operation_mix_matches_the_diffusion_loop() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (2, 5, 4, 1));
    }

    #[test]
    fn the_smoothing_recurrence_is_short() {
        let l = &loops(&KernelParams::default())[0];
        let circuits = recurrence::elementary_circuits(l);
        assert_eq!(circuits.len(), 1);
        // A 2-cycle FP self-recurrence: RecMII = 2.
        assert_eq!(mii::rec_mii(l, &presets::unified()), 2);
    }
}
