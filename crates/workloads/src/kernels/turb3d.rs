//! `turb3d` — isotropic turbulence (3D FFT based).
//!
//! The FFT butterfly passes access pairs of elements separated by large
//! power-of-two strides, so consecutive iterations of the innermost loop
//! touch different cache lines (no spatial reuse) and pairs of arrays map on
//! top of each other in a small direct-mapped cache. Each iteration loads
//! the two complex halves of a butterfly, combines them (add/sub scaled by a
//! twiddle factor) and stores both results back.

use super::KernelParams;
use mvp_ir::Loop;

/// Builds the representative innermost loops of `turb3d`.
#[must_use]
pub fn loops(params: &KernelParams) -> Vec<Loop> {
    let elem = 8i64;
    // Butterfly distance: a large power of two (in bytes).
    let half = 256 * elem;
    let volume = (params.inner_trip + 2) * 2048 * 8;

    let mut b = Loop::builder("turb3d_butterfly");
    let k = b.dimension("K", params.outer_trip);
    let i = b.dimension("I", params.inner_trip);

    let x = b.array("X", 0, volume);
    let y = b.array("Y", 96 * 4096, volume);
    let tw = b.array("TW", 160 * 4096 + 2048, 64 * 1024);

    // Stride of two cache blocks per iteration: no spatial reuse.
    let stride = 8 * elem;
    let x_lo = b.load(
        "X_lo",
        b.array_ref(x).stride(i, stride).stride(k, 64).build(),
    );
    let x_hi = b.load(
        "X_hi",
        b.array_ref(x)
            .offset(half)
            .stride(i, stride)
            .stride(k, 64)
            .build(),
    );
    let y_lo = b.load(
        "Y_lo",
        b.array_ref(y).stride(i, stride).stride(k, 64).build(),
    );
    let twiddle = b.load("TW_i", b.array_ref(tw).stride(i, elem).build());

    let scaled = b.fp_op("SCALED");
    let sum = b.fp_op("SUM");
    let diff = b.fp_op("DIFF");
    let out_hi = b.fp_op("OUT_HI");

    let st_lo = b.store(
        "ST_lo",
        b.array_ref(x).stride(i, stride).stride(k, 64).build(),
    );
    let st_hi = b.store(
        "ST_hi",
        b.array_ref(x)
            .offset(half)
            .stride(i, stride)
            .stride(k, 64)
            .build(),
    );

    b.data_edge(x_hi, scaled, 0);
    b.data_edge(twiddle, scaled, 0);
    b.data_edge(x_lo, sum, 0);
    b.data_edge(scaled, sum, 0);
    b.data_edge(x_lo, diff, 0);
    b.data_edge(scaled, diff, 0);
    b.data_edge(y_lo, out_hi, 0);
    b.data_edge(diff, out_hi, 0);
    b.data_edge(sum, st_lo, 0);
    b.data_edge(out_hi, st_hi, 0);
    // Anti-dependences between the loads and the stores of the same array.
    b.memory_edge(x_lo, st_lo, 0);
    b.memory_edge(x_hi, st_hi, 0);

    vec![b.build().expect("turb3d kernel is valid by construction")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvp_cache::reuse::{self_reuse, ReuseKind};
    use mvp_machine::CacheGeometry;

    #[test]
    fn operation_mix_matches_a_butterfly() {
        let l = &loops(&KernelParams::default())[0];
        let (int, fp, loads, stores) = l.op_counts();
        assert_eq!((int, fp, loads, stores), (0, 4, 4, 2));
    }

    #[test]
    fn butterfly_strides_defeat_spatial_reuse_except_for_twiddles() {
        let l = &loops(&KernelParams::default())[0];
        let g = CacheGeometry::direct_mapped(2048);
        let loads: Vec<_> = l.loads().collect();
        // X_lo, X_hi, Y_lo stride a full block or more: no reuse.
        for &op in &loads[..3] {
            assert_eq!(self_reuse(l, op, g), ReuseKind::None);
        }
        // The twiddle table streams with unit stride.
        assert_eq!(self_reuse(l, loads[3], g), ReuseKind::SelfSpatial);
    }
}
