//! Snapshot determinism: the stable-counter metrics artifact is
//! byte-identical at any executor width.
//!
//! This is the metrics half of the observability acceptance bar (the
//! event half lives in `trace_export.rs`). The deterministic pass of the
//! trace showcase runs the corpus through the RMCA-plus-gap-oracle and
//! SAT-exact pipelines; every [`mvp_trace::CounterClass::Stable`] counter
//! it ticks — solver decisions and conflicts, search nodes, encoded CNF
//! sizes, pipeline run counts — is a pure function of the work performed,
//! so `MVP_THREADS=1` and `MVP_THREADS=8` must produce the same
//! `counter,value` bytes.
//!
//! The trace registry is process-global, so both widths run inside one
//! test function (integration tests get their own process; in-process
//! parallelism is what this file must avoid).

use mvp_bench::trace::{deterministic_pass, TraceParams};
use mvp_exec::Executor;
use std::sync::Arc;

fn snapshot_at(threads: usize, params: &TraceParams) -> String {
    mvp_trace::set_mode(mvp_trace::TraceMode::Off);
    mvp_trace::reset();
    let executor = Arc::new(Executor::new(threads));
    deterministic_pass(params, &executor);
    mvp_trace::snapshot_csv()
}

#[test]
fn stable_counter_snapshot_is_byte_identical_for_1_and_8_threads() {
    let params = TraceParams::default();
    let sequential = snapshot_at(1, &params);
    let parallel = snapshot_at(8, &params);
    assert!(
        sequential.lines().count() > 5,
        "the pass registered stable counters:\n{sequential}"
    );
    // Byte-for-byte: same counters, same order, same values.
    assert_eq!(sequential, parallel);
    // The artifact carries no class column, no timestamps and only stable
    // rows: every line is exactly `name,value`.
    let mut lines = sequential.lines();
    assert_eq!(lines.next(), Some("counter,value"));
    for line in lines {
        let (name, value) = line.split_once(',').expect("two columns");
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
        );
        let _: u64 = value.parse().expect("integer value");
        assert!(!line.contains("runtime"), "runtime counters are excluded");
    }
    // The headline stable counters are present with non-trivial values.
    for needle in ["sat.decisions,", "exact.bnb.nodes,", "pipeline.runs,"] {
        assert!(
            sequential.contains(needle),
            "missing {needle}:\n{sequential}"
        );
    }
}
