//! Differential suite for the incremental SAT session (tier-1).
//!
//! The persistent assumption-based session must prove exactly what a
//! from-scratch per-probe encoding proves. [`run_incremental_on`] pins
//! that point by point over the full gap corpus — identical certified
//! bounds, schedule IIs, optimality claims and per-II verdict sequences
//! whenever both searches fully decide, no contradictory certificates
//! when the step budget cuts one short, and validator-clean schedules
//! from both — and this suite adds the aggregate retention gate plus a
//! randomized sweep on top.
//!
//! The fuzz case count scales with `MVP_SAT_INCR_FUZZ_CASES` (default 8)
//! so a nightly run can widen the sweep without a code change.

use mvp_bench::gap::GapParams;
use mvp_bench::portfolio::{incremental_totals, run_incremental};
use mvp_exact::{solve_with, ExactBackend, ExactOptions, IiVerdict};
use mvp_machine::presets;
use mvp_workloads::generator::{GeneratorConfig, GeneratorMode, LoopGenerator};

/// The full 52-point differential: every (loop, machine) pair of the gap
/// corpus solved by both modes, with all agreement assertions inside
/// [`run_incremental`]. The aggregate gate mirrors the nightly binary:
/// clause retention must not cost steps corpus-wide.
#[test]
fn incremental_and_scratch_agree_across_the_gap_corpus() {
    // A tighter budget than the nightly run keeps the debug-build suite
    // fast; the consistency pin is budget-aware, so this still exercises
    // every corpus point.
    let params = GapParams {
        node_budget: 50_000,
        ..GapParams::default()
    };
    let rows = run_incremental(&params);
    assert!(rows.len() >= 50, "the corpus differential covers the grid");
    assert!(
        rows.iter().any(|r| r.reused_clauses > 0),
        "multi-probe sessions reuse clauses"
    );
    let (incremental, scratch) = incremental_totals(&rows);
    assert!(
        incremental <= scratch,
        "clause retention must pay for itself: \
         incremental {incremental} steps vs from-scratch {scratch}"
    );
}

/// Randomized loops beyond the fixed corpus: both modes must stay
/// consistent on machine shapes that stress clustering and transfers.
#[test]
fn incremental_and_scratch_agree_on_fuzzed_loops() {
    let cases: usize = std::env::var("MVP_SAT_INCR_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let cfg = GeneratorConfig {
        min_ops: 4,
        max_ops: 10,
        ..GeneratorConfig::default()
    }
    .with_mode(GeneratorMode::Schedulable);
    let mut gen = LoopGenerator::new(cfg, 0xD1F_F5A7);
    let machines = [presets::two_cluster(), presets::four_cluster()];
    let options = ExactOptions::new().with_node_budget(50_000);
    for _ in 0..cases {
        let l = gen.generate();
        for machine in &machines {
            let point = format!("{} / {}", l.name(), machine.name);
            let incr = solve_with(
                &l,
                machine,
                &options.with_sat_incremental(true),
                &ExactBackend::Sat,
            );
            let scratch = solve_with(
                &l,
                machine,
                &options.with_sat_incremental(false),
                &ExactBackend::Sat,
            );
            let (incr, scratch) = match (incr, scratch) {
                (Ok(i), Ok(s)) => (i, s),
                (Err(_), Err(_)) => continue,
                _ => panic!("solvability diverges on {point}"),
            };
            let decided = |o: &mvp_exact::ExactOutcome| {
                o.probes.iter().all(|p| p.verdict != IiVerdict::Unknown)
            };
            if decided(&incr) && decided(&scratch) {
                assert_eq!(incr.lower_bound, scratch.lower_bound, "bounds on {point}");
                assert_eq!(
                    incr.schedule_ii(),
                    scratch.schedule_ii(),
                    "schedule IIs on {point}"
                );
                assert_eq!(
                    incr.proved_optimal, scratch.proved_optimal,
                    "optimality on {point}"
                );
            } else {
                for pi in &incr.probes {
                    for ps in &scratch.probes {
                        assert!(
                            !(pi.ii == ps.ii
                                && ((pi.verdict == IiVerdict::Feasible
                                    && ps.verdict == IiVerdict::Infeasible)
                                    || (pi.verdict == IiVerdict::Infeasible
                                        && ps.verdict == IiVerdict::Feasible))),
                            "opposite certificates at II={} on {point}",
                            pi.ii
                        );
                    }
                }
            }
            for outcome in [&incr, &scratch] {
                if let Some(s) = &outcome.schedule {
                    let violations = mvp_core::validate_schedule(&l, machine, s);
                    assert!(violations.is_empty(), "illegal schedule on {point}");
                }
            }
        }
    }
}
