//! Chrome-trace export well-formedness: the showcase run produces a
//! structurally valid trace covering every instrumented layer.
//!
//! Checks three properties a chrome://tracing / Perfetto import relies on:
//!
//! 1. **Balanced spans** — per logical thread, `B`/`E` phases nest with
//!    strict stack discipline (every `E` closes the innermost open `B` of
//!    the same name).
//! 2. **Monotone timestamps** — per logical thread, event timestamps never
//!    go backwards (a single thread records through one monotonic clock).
//! 3. **Document shape** — the JSON tree has the `traceEvents` array whose
//!    records carry `name`/`ph`/`ts`/`pid`/`tid`, and the stream covers
//!    all six instrumented layers.
//!
//! The trace sink and mode are process-global; this integration test owns
//! its process and runs the showcase once.

use mvp_bench::json::Json;
use mvp_bench::trace::{chrome_trace_json, run, TraceParams};
use mvp_trace::EventKind;
use std::collections::BTreeMap;

#[test]
fn showcase_trace_is_balanced_monotone_and_layer_complete() {
    let outcome = run(&TraceParams {
        threads: Some(2),
        ..TraceParams::default()
    });
    assert!(!outcome.events.is_empty());
    assert_eq!(
        outcome.missing_layers(),
        Vec::<&str>::new(),
        "layers seen: {:?}",
        outcome.layers()
    );

    // Per-thread stack discipline and monotone timestamps on the raw
    // events (the JSON is a faithful rendering of these).
    let mut stacks: BTreeMap<u32, Vec<&'static str>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u32, u64> = BTreeMap::new();
    for e in &outcome.events {
        let prev = last_ts.entry(e.tid).or_insert(0);
        assert!(
            e.ts_ns >= *prev,
            "timestamps went backwards on tid {}: {} after {}",
            e.tid,
            e.ts_ns,
            prev
        );
        *prev = e.ts_ns;
        let stack = stacks.entry(e.tid).or_default();
        match e.kind {
            EventKind::Begin => stack.push(e.name),
            EventKind::End => {
                let open = stack
                    .pop()
                    .unwrap_or_else(|| panic!("E without matching B on tid {}: {}", e.tid, e.name));
                assert_eq!(open, e.name, "spans interleave on tid {}", e.tid);
            }
            EventKind::Instant => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }

    // The JSON document mirrors the stream: one record per event, each
    // with the chrome-trace required fields, phases drawn from B/E/i.
    let doc = chrome_trace_json(&outcome.events);
    let Json::Object(top) = &doc else {
        panic!("top level is an object")
    };
    let events = top
        .iter()
        .find_map(|(k, v)| (k == "traceEvents").then_some(v))
        .expect("traceEvents present");
    let Json::Array(records) = events else {
        panic!("traceEvents is an array")
    };
    assert_eq!(records.len(), outcome.events.len());
    for record in records {
        let Json::Object(fields) = record else {
            panic!("record is an object")
        };
        let field = |name: &str| fields.iter().find_map(|(k, v)| (k == name).then_some(v));
        for required in ["name", "ph", "ts", "pid", "tid"] {
            assert!(field(required).is_some(), "missing {required}: {record}");
        }
        match field("ph") {
            Some(Json::Str(ph)) => assert!(matches!(ph.as_str(), "B" | "E" | "i"), "{ph}"),
            other => panic!("ph is a string, got {other:?}"),
        }
        match field("ts") {
            Some(Json::F64(ts)) => assert!(ts.is_finite() && *ts >= 0.0),
            other => panic!("ts is a float, got {other:?}"),
        }
    }
}
