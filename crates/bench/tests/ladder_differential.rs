//! Differential suite for the speculative parallel II ladder (tier-1).
//!
//! The ladder's verdict contract: the committed [`ExactOutcome`] — certified
//! bound, schedule II, optimality claim and per-II verdict sequence — is a
//! pure function of the problem, the options and the ladder width. Neither
//! the executor's thread count nor the scheduling of speculative rungs may
//! change what is committed; only step/wallclock provenance varies. This
//! suite pins that point by point over the full gap corpus (sequential
//! reference vs ladder widths 1/2/4 on 1- and 8-thread executors), and a
//! randomized sweep checks that every speculative schedule stays
//! validator-clean on fuzzed loops beyond the corpus.
//!
//! The fuzz case count scales with `MVP_LADDER_FUZZ_CASES` (default 8) so a
//! nightly run can widen the sweep without a code change.

use mvp_bench::gap::{corpus, machines, GapParams};
use mvp_exact::{solve_with, ExactBackend, ExactOptions, ExactOutcome, IiVerdict};
use mvp_exec::Executor;
use mvp_machine::presets;
use mvp_workloads::generator::{GeneratorConfig, GeneratorMode, LoopGenerator};
use std::sync::Arc;

/// The outcome fields the verdict contract pins (everything but the
/// step/wallclock provenance and the concrete schedule bits).
fn fingerprint(o: &ExactOutcome) -> (u32, u32, Option<u32>, bool, Vec<(u32, IiVerdict)>) {
    (
        o.min_ii,
        o.lower_bound,
        o.schedule_ii(),
        o.proved_optimal,
        o.probes.iter().map(|p| (p.ii, p.verdict)).collect(),
    )
}

/// Every (loop, machine) point of the gap corpus: the sequential portfolio
/// search is the reference, and the ladder must commit the identical
/// outcome at widths 1, 2 and 4 on both a 1-thread and an 8-thread
/// executor.
#[test]
fn the_ladder_commits_sequential_outcomes_across_the_gap_corpus() {
    let params = GapParams::default();
    let loops = corpus(&params);
    let machines = machines();
    let options = ExactOptions::new().with_node_budget(params.node_budget);
    let narrow = Arc::new(Executor::new(1));
    let wide = Arc::new(Executor::new(8));
    let mut points = 0;
    for machine in &machines {
        for l in &loops {
            let point = format!("{} / {}", l.name(), machine.name);
            let reference = solve_with(
                l,
                machine,
                &options.with_ladder_width(1),
                &ExactBackend::portfolio(Arc::clone(&narrow)),
            );
            let Ok(reference) = reference else {
                continue; // loop uses a unit kind the machine lacks
            };
            points += 1;
            for width in [1, 2, 4] {
                for executor in [&narrow, &wide] {
                    let ladder = solve_with(
                        l,
                        machine,
                        &options.with_ladder_width(width),
                        &ExactBackend::portfolio(Arc::clone(executor)),
                    )
                    .expect("solvability is width-independent");
                    // Width 1 on a multi-thread executor is the historical
                    // *racing* portfolio: both engines charge their steps
                    // concurrently, so on budget-bound points the charged
                    // total — and therefore where the search stops — is
                    // timing-dependent. That path predates the ladder and
                    // is outside its verdict contract; for it we pin
                    // soundness (certificates never contradict, the bound
                    // stays valid) rather than identity.
                    if width == 1 && executor.threads() > 1 {
                        assert!(
                            ladder.lower_bound <= reference.lower_bound,
                            "racing bound overshoots on {point}"
                        );
                        for pl in &ladder.probes {
                            for pr in &reference.probes {
                                assert!(
                                    !(pl.ii == pr.ii
                                        && pl.verdict != IiVerdict::Unknown
                                        && pr.verdict != IiVerdict::Unknown
                                        && pl.verdict != pr.verdict),
                                    "opposite certificates at II={} on {point}",
                                    pl.ii
                                );
                            }
                        }
                    } else {
                        assert_eq!(
                            fingerprint(&ladder),
                            fingerprint(&reference),
                            "width {width} x {} threads on {point}",
                            executor.threads()
                        );
                    }
                    if let Some(s) = &ladder.schedule {
                        let violations = mvp_core::validate_schedule(l, machine, s);
                        assert!(violations.is_empty(), "illegal schedule on {point}");
                    }
                }
            }
        }
    }
    assert!(points >= 50, "the corpus differential covers the grid");
}

/// Randomized loops beyond the fixed corpus: speculative rungs decided
/// under cancellation pressure must still commit sequential outcomes, and
/// every emitted schedule must survive the independent validator.
#[test]
fn fuzzed_ladders_stay_validator_clean() {
    let cases: usize = std::env::var("MVP_LADDER_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let cfg = GeneratorConfig {
        min_ops: 4,
        max_ops: 10,
        ..GeneratorConfig::default()
    }
    .with_mode(GeneratorMode::Schedulable);
    let mut gen = LoopGenerator::new(cfg, 0x01AD_DE12);
    let machines = [
        presets::two_cluster(),
        presets::motivating_example_machine(),
    ];
    let executor = Arc::new(Executor::new(4));
    let options = ExactOptions::new().with_node_budget(200_000);
    for _ in 0..cases {
        let l = gen.generate();
        for machine in &machines {
            let point = format!("{} / {}", l.name(), machine.name);
            let sequential = solve_with(
                &l,
                machine,
                &options.with_ladder_width(1),
                &ExactBackend::portfolio(Arc::clone(&executor)),
            );
            let ladder = solve_with(
                &l,
                machine,
                &options.with_ladder_width(3),
                &ExactBackend::portfolio(Arc::clone(&executor)),
            );
            let (sequential, ladder) = match (sequential, ladder) {
                (Ok(s), Ok(p)) => (s, p),
                (Err(_), Err(_)) => continue,
                _ => panic!("solvability diverges on {point}"),
            };
            let fully_decided =
                |o: &ExactOutcome| o.probes.iter().all(|p| p.verdict != IiVerdict::Unknown);
            if fully_decided(&sequential) {
                // The budget did not bind: the contract demands identity.
                assert_eq!(
                    fingerprint(&ladder),
                    fingerprint(&sequential),
                    "outcomes on {point}"
                );
            } else {
                // Budget-bound searches may stop at different points, but
                // certificates must never contradict.
                for pl in &ladder.probes {
                    for ps in &sequential.probes {
                        assert!(
                            !(pl.ii == ps.ii
                                && pl.verdict != IiVerdict::Unknown
                                && ps.verdict != IiVerdict::Unknown
                                && pl.verdict != ps.verdict),
                            "opposite certificates at II={} on {point}",
                            pl.ii
                        );
                    }
                }
            }
            for outcome in [&sequential, &ladder] {
                if let Some(s) = &outcome.schedule {
                    let violations = mvp_core::validate_schedule(&l, machine, s);
                    assert!(violations.is_empty(), "illegal schedule on {point}");
                }
            }
        }
    }
}
