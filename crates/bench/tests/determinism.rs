//! Bench-artifact determinism: CSV and JSON bytes are identical for any
//! executor thread count (the `MVP_THREADS=1` vs `MVP_THREADS=8` halves of
//! the executor acceptance bar that belong to `mvp-bench`; the pipeline
//! and fuzz halves live in the workspace-root `executor_determinism`
//! test).

use mvp_bench::gap::{self, GapParams};
use mvp_exec::Executor;

fn params() -> GapParams {
    GapParams {
        generated_loops: 3,
        max_ops: 8,
        ..GapParams::default()
    }
}

#[test]
fn gap_artifacts_are_byte_identical_for_1_and_8_threads() {
    // The trailing `schedule_ms`/`oracle_ms` columns are wall-clock and
    // legitimately vary run to run; everything else — every result column,
    // in every artifact — must be byte-identical across thread counts, so
    // the comparison strips the timing columns first.
    let strip = |rows: &[gap::GapRow]| -> Vec<gap::GapRow> {
        rows.iter().map(gap::GapRow::without_timing).collect()
    };
    let sequential = strip(&gap::run_on(&params(), &Executor::new(1)));
    let parallel = strip(&gap::run_on(&params(), &Executor::new(8)));
    assert!(!sequential.is_empty());
    assert_eq!(sequential, parallel);
    assert_eq!(gap::to_csv(&sequential), gap::to_csv(&parallel));
    assert_eq!(
        gap::to_json(&sequential).to_string(),
        gap::to_json(&parallel).to_string()
    );
    assert_eq!(gap::render(&sequential), gap::render(&parallel));
}

#[test]
fn figure_sweeps_are_identical_for_1_and_8_threads() {
    // Grid jobs are collected in presentation order, so the sweep output —
    // `SweepOutput` derives `PartialEq` over every normalised bar — must be
    // identical whether the grid ran on 1 worker or 8.
    let suite = mvp_workloads::suite::SuiteParams::small();
    let sequential = mvp_bench::fig5::run_quick_on(2, &suite, &Executor::new(1)).unwrap();
    let parallel = mvp_bench::fig5::run_quick_on(2, &suite, &Executor::new(8)).unwrap();
    assert_eq!(sequential, parallel);
    let sequential = mvp_bench::fig6::run_quick_on(4, &suite, &Executor::new(1)).unwrap();
    let parallel = mvp_bench::fig6::run_quick_on(4, &suite, &Executor::new(8)).unwrap();
    assert_eq!(sequential, parallel);
}
