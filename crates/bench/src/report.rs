//! Plain-text table formatting for the experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have as many cells as there are headers).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a normalised value as the paper's figures present them (two
/// decimals).
#[must_use]
pub fn norm(value: f64) -> String {
    format!("{value:.2}")
}

/// Shared artifact tail of the experiment binaries: when the environment
/// variable `env_var` names a file, write `contents()` there and confirm
/// on stdout (`wrote {label} to {path}`); do nothing when it is unset.
///
/// This is binary-exit-path code, not a library API: an unwritable
/// artifact terminates the process with exit code 1, because CI uploads
/// these files with `if-no-files-found: error` and a silent skip would
/// surface as a confusing downstream failure.
pub fn write_env_artifact(env_var: &str, label: &str, contents: impl FnOnce() -> String) {
    let Ok(path) = std::env::var(env_var) else {
        return;
    };
    let path = std::path::PathBuf::from(path);
    match std::fs::write(&path, contents()) {
        Ok(()) => println!("wrote {label} to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Formats a percentage difference between two cycle counts.
#[must_use]
pub fn pct_faster(slow: u64, fast: u64) -> String {
    if fast == 0 {
        return "n/a".into();
    }
    format!("{:+.1}%", (slow as f64 / fast as f64 - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a-much-longer-name", "123456"]);
        let text = t.render();
        assert!(text.contains("name"));
        assert!(text.contains("a-much-longer-name"));
        assert_eq!(t.num_rows(), 2);
        // All lines have the same alignment prefix width for the value column.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(norm(1.234), "1.23");
        assert_eq!(pct_faster(150, 100), "+50.0%");
        assert_eq!(pct_faster(100, 0), "n/a");
    }
}
