//! SAT-vs-branch-and-bound differential over the gap corpus, plus the
//! portfolio race that retires both.
//!
//! Every (loop, machine) point of the [`crate::gap`] corpus is solved three
//! times — pure branch-and-bound, pure CDCL SAT, and the racing portfolio —
//! and the three outcomes are cross-checked:
//!
//! * two proved optima must be **equal** (the engines implement the same
//!   validator rule set; disagreeing certificates mean one is unsound);
//! * a proved optimum must never undercut the other engine's certified
//!   lower bound, and a certified bound must never exceed an II the other
//!   engine scheduled;
//! * every schedule must pass the independent validator with zero
//!   violations.
//!
//! A violated check panics — the nightly CI job running the `portfolio` bin
//! turns that into a red build rather than shipping a silently-inverted
//! table. The per-row artifact (`portfolio-solvers.csv`) records which
//! engine won each portfolio race and what each engine paid (branch-and-
//! bound nodes, SAT conflicts, inclusive portfolio steps).

use crate::gap::{backend_of, corpus, machines, GapParams};
use crate::report::Table;
use mvp_exact::{solve_with, ExactOptions, ExactOutcome, SolverKind};
use mvp_exec::Executor;
use mvp_ir::Loop;
use mvp_machine::MachineConfig;
use std::io::Write as _;
use std::path::Path;

/// One (loop, machine) row of the differential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioRow {
    /// Machine preset name.
    pub machine: String,
    /// Loop name.
    pub loop_name: String,
    /// The agreed exact II (from the branch-and-bound run; asserted equal
    /// to the SAT run's whenever both proved optimality).
    pub exact_ii: Option<u32>,
    /// Whether *both* standalone engines proved optimality.
    pub both_proved: bool,
    /// The engine whose certificate decided the portfolio's last probe.
    pub winner: SolverKind,
    /// Nodes of the standalone branch-and-bound run.
    pub bnb_nodes: u64,
    /// SAT steps (decisions + conflicts) of the standalone SAT run.
    pub sat_conflicts: u64,
    /// Inclusive step total of the portfolio race (both rivals' work).
    pub portfolio_steps: u64,
}

/// Checks one pair of outcomes for certificate consistency; `label`
/// identifies the second engine in panic messages.
fn cross_check(point: &str, bnb: &ExactOutcome, other: &ExactOutcome, label: &str) {
    if bnb.proved_optimal && other.proved_optimal {
        assert_eq!(
            bnb.schedule_ii(),
            other.schedule_ii(),
            "proved optima disagree on {point}: bnb={:?}, {label}={:?}",
            bnb.schedule_ii(),
            other.schedule_ii()
        );
    }
    for (a, b, a_name, b_name) in [(bnb, other, "bnb", label), (other, bnb, label, "bnb")] {
        if let Some(ii) = a.schedule_ii() {
            assert!(
                ii >= b.lower_bound,
                "{a_name} scheduled II={ii} below {b_name}'s certified bound {} on {point}",
                b.lower_bound
            );
        }
        if a.proved_optimal {
            let optimum = a.schedule_ii().expect("proved outcomes carry a schedule");
            assert!(
                b.lower_bound <= optimum,
                "{b_name} certified bound {} above {a_name}'s proved optimum {optimum} on {point}",
                b.lower_bound
            );
        }
    }
}

/// Runs the three-way differential over `corpus(params)` × `machines()` on
/// the process-wide executor. Panics on any cross-check failure.
#[must_use]
pub fn run(params: &GapParams) -> Vec<PortfolioRow> {
    run_on(params, &Executor::global())
}

/// Runs the differential on an explicit executor (each grid point is one
/// job; the portfolio's own race then runs inline on that job's thread,
/// which keeps the whole table deterministic for any thread count).
#[must_use]
pub fn run_on(params: &GapParams, executor: &Executor) -> Vec<PortfolioRow> {
    let options = ExactOptions::new().with_node_budget(params.node_budget);
    let loops = corpus(params);
    let machines = machines();
    let grid: Vec<(&MachineConfig, &Loop)> = machines
        .iter()
        .flat_map(|machine| loops.iter().map(move |l| (machine, l)))
        .collect();
    let rows = executor.map(&grid, |&(machine, l)| {
        let point = format!("{} / {}", l.name(), machine.name);
        let solve = |kind| solve_with(l, machine, &options, &backend_of(kind)).ok();
        let bnb = solve(SolverKind::BranchAndBound)?;
        let sat = solve(SolverKind::Sat).expect("engines agree on solvability");
        let portfolio = solve(SolverKind::Portfolio).expect("engines agree on solvability");
        cross_check(&point, &bnb, &sat, "sat");
        cross_check(&point, &bnb, &portfolio, "portfolio");
        cross_check(&point, &sat, &portfolio, "portfolio");
        for outcome in [&bnb, &sat, &portfolio] {
            if let Some(s) = &outcome.schedule {
                let violations = mvp_core::validate_schedule(l, machine, s);
                assert!(
                    violations.is_empty(),
                    "{} emitted an illegal schedule on {point}: {violations:?}",
                    outcome.backend
                );
            }
        }
        Some(PortfolioRow {
            machine: machine.name.clone(),
            loop_name: l.name().to_string(),
            exact_ii: bnb.schedule_ii(),
            both_proved: bnb.proved_optimal && sat.proved_optimal,
            winner: portfolio
                .probes
                .last()
                .map_or(SolverKind::Portfolio, |p| p.solver),
            bnb_nodes: bnb.nodes,
            sat_conflicts: sat.conflicts,
            portfolio_steps: portfolio.search_steps(),
        })
    });
    rows.into_iter().flatten().collect()
}

/// Renders the differential as a text table plus a winner tally.
#[must_use]
pub fn render(rows: &[PortfolioRow]) -> String {
    let mut t = Table::new(vec![
        "machine",
        "loop",
        "exact",
        "both-proved",
        "winner",
        "bnb-nodes",
        "sat-steps",
        "portfolio-steps",
    ]);
    for r in rows {
        t.row(vec![
            r.machine.clone(),
            r.loop_name.clone(),
            r.exact_ii.map_or_else(|| "-".into(), |x| x.to_string()),
            if r.both_proved { "yes" } else { "no" }.to_string(),
            r.winner.to_string(),
            r.bnb_nodes.to_string(),
            r.sat_conflicts.to_string(),
            r.portfolio_steps.to_string(),
        ]);
    }
    let sat_wins = rows.iter().filter(|r| r.winner == SolverKind::Sat).count();
    let proved = rows.iter().filter(|r| r.both_proved).count();
    format!(
        "SAT vs branch-and-bound differential (portfolio race per probe)\n{}\n\
         {} / {} points proved optimal by both engines; SAT won {} of {} races\n",
        t.render(),
        proved,
        rows.len(),
        sat_wins,
        rows.len()
    )
}

/// Serialises the rows as CSV (the `portfolio-solvers.csv` CI artifact).
#[must_use]
pub fn to_csv(rows: &[PortfolioRow]) -> String {
    let mut out = String::from(
        "machine,loop,exact_ii,both_proved,winner,bnb_nodes,sat_conflicts,portfolio_steps\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.machine,
            r.loop_name,
            r.exact_ii.map_or_else(String::new, |x| x.to_string()),
            r.both_proved,
            r.winner,
            r.bnb_nodes,
            r.sat_conflicts,
            r.portfolio_steps,
        ));
    }
    out
}

/// Writes the CSV to `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(rows: &[PortfolioRow], path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(rows).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_differential_agrees_on_a_small_corpus() {
        let params = GapParams {
            generated_loops: 2,
            max_ops: 6,
            ..GapParams::default()
        };
        let rows = run(&params);
        assert!(!rows.is_empty());
        // Small loops under the default budget: both engines prove every
        // point, so the cross-checks inside run() were all exercised for
        // real, and every race was decided by a named engine.
        for r in &rows {
            assert!(r.both_proved, "{} / {}", r.loop_name, r.machine);
            assert_ne!(r.winner, SolverKind::Portfolio);
        }
        let fig3 = rows
            .iter()
            .find(|r| r.loop_name == "motivating" && r.machine == "motivating-2-cluster")
            .expect("fig3 row present");
        assert_eq!(fig3.exact_ii, Some(3));
        assert!(
            fig3.portfolio_steps < fig3.bnb_nodes,
            "the portfolio ({} steps) must retire the {}-node branch-and-bound probe",
            fig3.portfolio_steps,
            fig3.bnb_nodes
        );
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(render(&rows).contains("SAT won"));
    }
}
