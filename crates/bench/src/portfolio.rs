//! SAT-vs-branch-and-bound differential over the gap corpus, plus the
//! portfolio race that retires both.
//!
//! Every (loop, machine) point of the [`crate::gap`] corpus is solved three
//! times — pure branch-and-bound, pure CDCL SAT, and the racing portfolio —
//! and the three outcomes are cross-checked:
//!
//! * two proved optima must be **equal** (the engines implement the same
//!   validator rule set; disagreeing certificates mean one is unsound);
//! * a proved optimum must never undercut the other engine's certified
//!   lower bound, and a certified bound must never exceed an II the other
//!   engine scheduled;
//! * every schedule must pass the independent validator with zero
//!   violations.
//!
//! A violated check panics — the nightly CI job running the `portfolio` bin
//! turns that into a red build rather than shipping a silently-inverted
//! table. The per-row artifact (`portfolio-solvers.csv`) records which
//! engine won each portfolio race and what each engine paid (branch-and-
//! bound nodes, SAT conflicts, inclusive portfolio steps).

use crate::gap::{backend_of, corpus, machines, GapParams};
use crate::report::Table;
use mvp_exact::{solve_with, ExactOptions, ExactOutcome, IiVerdict, SolverKind};
use mvp_exec::Executor;
use mvp_ir::Loop;
use mvp_machine::MachineConfig;
use std::io::Write as _;
use std::path::Path;

/// One (loop, machine) row of the differential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioRow {
    /// Machine preset name.
    pub machine: String,
    /// Loop name.
    pub loop_name: String,
    /// The agreed exact II (from the branch-and-bound run; asserted equal
    /// to the SAT run's whenever both proved optimality).
    pub exact_ii: Option<u32>,
    /// Whether *both* standalone engines proved optimality.
    pub both_proved: bool,
    /// The engine whose certificate decided the portfolio's last probe.
    pub winner: SolverKind,
    /// Nodes of the standalone branch-and-bound run.
    pub bnb_nodes: u64,
    /// SAT steps (decisions + conflicts) of the standalone SAT run.
    pub sat_conflicts: u64,
    /// Inclusive step total of the portfolio race (both rivals' work).
    pub portfolio_steps: u64,
    /// Clauses the standalone SAT run's incremental session reused across
    /// its probes (summed).
    pub sat_reused_clauses: u64,
    /// Learnt clauses the standalone SAT run retained across its probes
    /// (summed).
    pub sat_kept_learned: u64,
}

/// Checks one pair of outcomes for certificate consistency; `label`
/// identifies the second engine in panic messages.
fn cross_check(point: &str, bnb: &ExactOutcome, other: &ExactOutcome, label: &str) {
    if bnb.proved_optimal && other.proved_optimal {
        assert_eq!(
            bnb.schedule_ii(),
            other.schedule_ii(),
            "proved optima disagree on {point}: bnb={:?}, {label}={:?}",
            bnb.schedule_ii(),
            other.schedule_ii()
        );
    }
    for (a, b, a_name, b_name) in [(bnb, other, "bnb", label), (other, bnb, label, "bnb")] {
        if let Some(ii) = a.schedule_ii() {
            assert!(
                ii >= b.lower_bound,
                "{a_name} scheduled II={ii} below {b_name}'s certified bound {} on {point}",
                b.lower_bound
            );
        }
        if a.proved_optimal {
            let optimum = a.schedule_ii().expect("proved outcomes carry a schedule");
            assert!(
                b.lower_bound <= optimum,
                "{b_name} certified bound {} above {a_name}'s proved optimum {optimum} on {point}",
                b.lower_bound
            );
        }
    }
}

/// Runs the three-way differential over `corpus(params)` × `machines()` on
/// the process-wide executor. Panics on any cross-check failure.
#[must_use]
pub fn run(params: &GapParams) -> Vec<PortfolioRow> {
    run_on(params, &Executor::global())
}

/// Runs the differential on an explicit executor (each grid point is one
/// job; the portfolio's own race then runs inline on that job's thread,
/// which keeps the whole table deterministic for any thread count).
#[must_use]
pub fn run_on(params: &GapParams, executor: &Executor) -> Vec<PortfolioRow> {
    let options = ExactOptions::new().with_node_budget(params.node_budget);
    let loops = corpus(params);
    let machines = machines();
    let grid: Vec<(&MachineConfig, &Loop)> = machines
        .iter()
        .flat_map(|machine| loops.iter().map(move |l| (machine, l)))
        .collect();
    let rows = executor.map(&grid, |&(machine, l)| {
        let point = format!("{} / {}", l.name(), machine.name);
        let solve = |kind| solve_with(l, machine, &options, &backend_of(kind)).ok();
        let bnb = solve(SolverKind::BranchAndBound)?;
        let sat = solve(SolverKind::Sat).expect("engines agree on solvability");
        let portfolio = solve(SolverKind::Portfolio).expect("engines agree on solvability");
        cross_check(&point, &bnb, &sat, "sat");
        cross_check(&point, &bnb, &portfolio, "portfolio");
        cross_check(&point, &sat, &portfolio, "portfolio");
        for outcome in [&bnb, &sat, &portfolio] {
            if let Some(s) = &outcome.schedule {
                let violations = mvp_core::validate_schedule(l, machine, s);
                assert!(
                    violations.is_empty(),
                    "{} emitted an illegal schedule on {point}: {violations:?}",
                    outcome.backend
                );
            }
        }
        Some(PortfolioRow {
            machine: machine.name.clone(),
            loop_name: l.name().to_string(),
            exact_ii: bnb.schedule_ii(),
            both_proved: bnb.proved_optimal && sat.proved_optimal,
            winner: portfolio
                .probes
                .last()
                .map_or(SolverKind::Portfolio, |p| p.solver),
            bnb_nodes: bnb.nodes,
            sat_conflicts: sat.conflicts,
            portfolio_steps: portfolio.search_steps(),
            sat_reused_clauses: sat.probes.iter().map(|p| p.reused_clauses).sum(),
            sat_kept_learned: sat.probes.iter().map(|p| p.kept_learned).sum(),
        })
    });
    rows.into_iter().flatten().collect()
}

/// Renders the differential as a text table plus a winner tally.
#[must_use]
pub fn render(rows: &[PortfolioRow]) -> String {
    let mut t = Table::new(vec![
        "machine",
        "loop",
        "exact",
        "both-proved",
        "winner",
        "bnb-nodes",
        "sat-steps",
        "portfolio-steps",
    ]);
    for r in rows {
        t.row(vec![
            r.machine.clone(),
            r.loop_name.clone(),
            r.exact_ii.map_or_else(|| "-".into(), |x| x.to_string()),
            if r.both_proved { "yes" } else { "no" }.to_string(),
            r.winner.to_string(),
            r.bnb_nodes.to_string(),
            r.sat_conflicts.to_string(),
            r.portfolio_steps.to_string(),
        ]);
    }
    let sat_wins = rows.iter().filter(|r| r.winner == SolverKind::Sat).count();
    let proved = rows.iter().filter(|r| r.both_proved).count();
    format!(
        "SAT vs branch-and-bound differential (portfolio race per probe)\n{}\n\
         {} / {} points proved optimal by both engines; SAT won {} of {} races\n",
        t.render(),
        proved,
        rows.len(),
        sat_wins,
        rows.len()
    )
}

/// Serialises the rows as CSV (the `portfolio-solvers.csv` CI artifact).
#[must_use]
pub fn to_csv(rows: &[PortfolioRow]) -> String {
    // The incremental-SAT provenance columns trail the original eight so
    // positional consumers of the artifact keep working.
    let mut out = String::from(
        "machine,loop,exact_ii,both_proved,winner,bnb_nodes,sat_conflicts,portfolio_steps,sat_reused_clauses,sat_kept_learned\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            r.machine,
            r.loop_name,
            r.exact_ii.map_or_else(String::new, |x| x.to_string()),
            r.both_proved,
            r.winner,
            r.bnb_nodes,
            r.sat_conflicts,
            r.portfolio_steps,
            r.sat_reused_clauses,
            r.sat_kept_learned,
        ));
    }
    out
}

/// Writes the CSV to `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(rows: &[PortfolioRow], path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(rows).as_bytes())
}

/// One (loop, machine) row of the incremental-vs-scratch SAT differential
/// (the `sat-incremental.csv` nightly artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalRow {
    /// Machine preset name.
    pub machine: String,
    /// Loop name.
    pub loop_name: String,
    /// The agreed exact II (asserted identical between the two modes).
    pub exact_ii: Option<u32>,
    /// Whether both modes proved optimality (asserted identical).
    pub proved_optimal: bool,
    /// SAT steps (decisions + conflicts) of the incremental run.
    pub incremental_steps: u64,
    /// SAT steps of the from-scratch run.
    pub scratch_steps: u64,
    /// Clauses the incremental session reused across probes (summed).
    pub reused_clauses: u64,
    /// Learnt clauses the incremental session retained across probes
    /// (summed).
    pub kept_learned: u64,
    /// Wall-clock of the incremental solve, in milliseconds.
    pub incremental_ms: f64,
    /// Wall-clock of the from-scratch solve, in milliseconds.
    pub scratch_ms: f64,
}

/// Runs the incremental-vs-scratch SAT differential over the gap corpus on
/// the process-wide executor (see [`run_incremental_on`]).
#[must_use]
pub fn run_incremental(params: &GapParams) -> Vec<IncrementalRow> {
    run_incremental_on(params, &Executor::global())
}

/// Runs the incremental-vs-scratch SAT differential on an explicit
/// executor: every (loop, machine) point of `corpus(params)` × `machines()`
/// is solved twice by `ExactBackend::Sat` — once with the persistent
/// incremental session (the default), once with the
/// `sat_incremental = false` escape hatch that re-encodes per probe — and
/// the two outcomes are pinned consistent. Where both searches fully
/// decide (no probe ran out of budget) everything must be identical:
/// certified bound, schedule II, optimality claim and the per-II verdict
/// sequence. Where the finite step budget cut one search short the probe
/// *sequences* may differ, but no contradiction is tolerated: the two
/// modes must never certify opposite verdicts for the same II, and both
/// schedules must pass the independent validator. Any violation panics (a
/// red nightly build), because the incremental layering is only sound if
/// it proves exactly what a fresh encoding proves.
#[must_use]
pub fn run_incremental_on(params: &GapParams, executor: &Executor) -> Vec<IncrementalRow> {
    let options = ExactOptions::new().with_node_budget(params.node_budget);
    let loops = corpus(params);
    let machines = machines();
    let grid: Vec<(&MachineConfig, &Loop)> = machines
        .iter()
        .flat_map(|machine| loops.iter().map(move |l| (machine, l)))
        .collect();
    let rows = executor.map(&grid, |&(machine, l)| {
        let point = format!("{} / {}", l.name(), machine.name);
        let backend = backend_of(SolverKind::Sat);
        let (incremental, incr_ns) = mvp_trace::timed("sat_incr.incremental", || {
            solve_with(l, machine, &options.with_sat_incremental(true), &backend).ok()
        });
        let (scratch, scr_ns) = mvp_trace::timed("sat_incr.scratch", || {
            solve_with(l, machine, &options.with_sat_incremental(false), &backend).ok()
        });
        let (incremental, scratch) = match (incremental, scratch) {
            (Some(i), Some(s)) => (i, s),
            (None, None) => return None, // loop uses a unit kind the machine lacks
            _ => panic!("incremental and scratch disagree on solvability for {point}"),
        };
        let verdicts = |o: &ExactOutcome| -> Vec<(u32, IiVerdict)> {
            o.probes.iter().map(|p| (p.ii, p.verdict)).collect()
        };
        let decided = |o: &ExactOutcome| o.probes.iter().all(|p| p.verdict != IiVerdict::Unknown);
        if decided(&incremental) && decided(&scratch) {
            // Neither search hit the step budget: the incremental session
            // must be observationally invisible, probe for probe.
            assert_eq!(
                incremental.lower_bound, scratch.lower_bound,
                "certified bounds diverge on {point}"
            );
            assert_eq!(
                incremental.schedule_ii(),
                scratch.schedule_ii(),
                "schedule IIs diverge on {point}"
            );
            assert_eq!(
                incremental.proved_optimal, scratch.proved_optimal,
                "optimality claims diverge on {point}"
            );
            assert_eq!(
                verdicts(&incremental),
                verdicts(&scratch),
                "per-II verdict sequences diverge on {point}"
            );
        } else {
            // The budget cut at least one search short, so the probe
            // sequences may differ — but certificates must never clash.
            for &(ii, vi) in &verdicts(&incremental) {
                for &(sii, vs) in &verdicts(&scratch) {
                    let contradiction = ii == sii
                        && ((vi == IiVerdict::Feasible && vs == IiVerdict::Infeasible)
                            || (vi == IiVerdict::Infeasible && vs == IiVerdict::Feasible));
                    assert!(
                        !contradiction,
                        "opposite certificates at II={ii} on {point}: \
                         incremental={vi}, scratch={vs}"
                    );
                }
            }
        }
        for outcome in [&incremental, &scratch] {
            if let Some(s) = &outcome.schedule {
                let violations = mvp_core::validate_schedule(l, machine, s);
                assert!(
                    violations.is_empty(),
                    "an illegal schedule on {point}: {violations:?}"
                );
            }
        }
        Some(IncrementalRow {
            machine: machine.name.clone(),
            loop_name: l.name().to_string(),
            exact_ii: incremental.schedule_ii(),
            proved_optimal: incremental.proved_optimal,
            incremental_steps: incremental.conflicts,
            scratch_steps: scratch.conflicts,
            reused_clauses: incremental.probes.iter().map(|p| p.reused_clauses).sum(),
            kept_learned: incremental.probes.iter().map(|p| p.kept_learned).sum(),
            incremental_ms: incr_ns as f64 / 1e6,
            scratch_ms: scr_ns as f64 / 1e6,
        })
    });
    rows.into_iter().flatten().collect()
}

/// Corpus-aggregate SAT step totals, `(incremental, scratch)`. The nightly
/// gate requires the first to stay at or below the second — clause and
/// learnt-state retention must never make the whole corpus *more*
/// expensive than re-encoding every probe from scratch.
#[must_use]
pub fn incremental_totals(rows: &[IncrementalRow]) -> (u64, u64) {
    (
        rows.iter().map(|r| r.incremental_steps).sum(),
        rows.iter().map(|r| r.scratch_steps).sum(),
    )
}

/// Renders the incremental differential as a text table plus the aggregate
/// step comparison.
#[must_use]
pub fn render_incremental(rows: &[IncrementalRow]) -> String {
    let mut t = Table::new(vec![
        "machine",
        "loop",
        "exact",
        "incr-steps",
        "scratch-steps",
        "reused",
        "kept-learned",
    ]);
    for r in rows {
        t.row(vec![
            r.machine.clone(),
            r.loop_name.clone(),
            r.exact_ii.map_or_else(|| "-".into(), |x| x.to_string()),
            r.incremental_steps.to_string(),
            r.scratch_steps.to_string(),
            r.reused_clauses.to_string(),
            r.kept_learned.to_string(),
        ]);
    }
    let (incr, scratch) = incremental_totals(rows);
    format!(
        "Incremental vs from-scratch SAT over the gap corpus\n{}\n\
         corpus totals: incremental {incr} steps vs scratch {scratch} steps ({})\n",
        t.render(),
        crate::report::pct_faster(scratch, incr.max(1)),
    )
}

/// Serialises the incremental rows as CSV (the `sat-incremental.csv` CI
/// artifact).
#[must_use]
pub fn incremental_to_csv(rows: &[IncrementalRow]) -> String {
    let mut out = String::from(
        "machine,loop,exact_ii,proved_optimal,incremental_steps,scratch_steps,reused_clauses,kept_learned,incremental_ms,scratch_ms\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.3},{:.3}\n",
            r.machine,
            r.loop_name,
            r.exact_ii.map_or_else(String::new, |x| x.to_string()),
            r.proved_optimal,
            r.incremental_steps,
            r.scratch_steps,
            r.reused_clauses,
            r.kept_learned,
            r.incremental_ms,
            r.scratch_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_differential_agrees_on_a_small_corpus() {
        let params = GapParams {
            generated_loops: 2,
            max_ops: 6,
            ..GapParams::default()
        };
        let rows = run(&params);
        assert!(!rows.is_empty());
        // Small loops under the default budget: both engines prove every
        // point, so the cross-checks inside run() were all exercised for
        // real, and every race was decided by a named engine.
        for r in &rows {
            assert!(r.both_proved, "{} / {}", r.loop_name, r.machine);
            assert_ne!(r.winner, SolverKind::Portfolio);
        }
        let fig3 = rows
            .iter()
            .find(|r| r.loop_name == "motivating" && r.machine == "motivating-2-cluster")
            .expect("fig3 row present");
        assert_eq!(fig3.exact_ii, Some(3));
        assert!(
            fig3.portfolio_steps < fig3.bnb_nodes,
            "the portfolio ({} steps) must retire the {}-node branch-and-bound probe",
            fig3.portfolio_steps,
            fig3.bnb_nodes
        );
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(render(&rows).contains("SAT won"));
    }
}
