//! Figure 6: normalised cycles with a *realistic* interconnect.
//!
//! Register buses are fixed (2 buses, 1-cycle latency); the number of memory
//! buses (NMB ∈ {1, 2}) and their latency (LMB ∈ {1, 4}) are swept. With a
//! limited number of memory buses, reducing the number of misses also
//! reduces the time spent waiting for a free bus, which is where RMCA pulls
//! clearly ahead of the baseline (the paper reports ≈5% at 2 clusters and
//! ≈20% at 4 clusters for threshold 0.00).

use crate::fig5::{run_grid, GridPoint, SweepOutput, THRESHOLDS};
use crate::report::{norm, Table};
use multivliw::Error;
use mvp_exec::Executor;
use mvp_machine::{presets, BusConfig};
use mvp_workloads::suite::SuiteParams;
use std::sync::Arc;

/// Runs the Figure-6 sweep for the given cluster count (2 or 4) on the
/// process-wide executor.
///
/// # Errors
///
/// Propagates the first scheduling error.
pub fn run(clusters: usize, params: &SuiteParams) -> Result<SweepOutput, Error> {
    run_on(clusters, params, &Executor::global())
}

/// Like [`run`], on an explicit executor (the output is identical for any
/// thread count; see `crates/bench/tests/determinism.rs`).
///
/// # Errors
///
/// Propagates the first scheduling error.
pub fn run_on(
    clusters: usize,
    params: &SuiteParams,
    executor: &Executor,
) -> Result<SweepOutput, Error> {
    run_with(clusters, params, &[1, 2], &[1, 4], &THRESHOLDS, executor)
}

/// Runs a reduced sweep (used by the Criterion benches and quick runs) on
/// the process-wide executor.
///
/// # Errors
///
/// Propagates the first scheduling error.
pub fn run_quick(clusters: usize, params: &SuiteParams) -> Result<SweepOutput, Error> {
    run_quick_on(clusters, params, &Executor::global())
}

/// Like [`run_quick`], on an explicit executor.
///
/// # Errors
///
/// Propagates the first scheduling error.
pub fn run_quick_on(
    clusters: usize,
    params: &SuiteParams,
    executor: &Executor,
) -> Result<SweepOutput, Error> {
    run_with(clusters, params, &[1], &[4], &[1.0, 0.0], executor)
}

fn run_with(
    clusters: usize,
    params: &SuiteParams,
    nmbs: &[usize],
    lmbs: &[u32],
    thresholds: &[f64],
    executor: &Executor,
) -> Result<SweepOutput, Error> {
    let mut grid = Vec::new();
    for &nmb in nmbs {
        for &lmb in lmbs {
            // One shared handle per grid point (see fig5); the `lrb` output
            // field carries the number of memory buses of this figure
            // (register buses are fixed at 2 buses of latency 1).
            grid.push(GridPoint {
                axis_a: nmb as u32,
                axis_b: lmb,
                machine: Arc::new(
                    presets::by_cluster_count(clusters)
                        .with_register_buses(BusConfig::finite(2, 1))
                        .with_memory_buses(BusConfig::finite(nmb, lmb))
                        .with_name(format!("{clusters}-cluster NMB={nmb} LMB={lmb}")),
                ),
            });
        }
    }
    run_grid(clusters, params, thresholds, &grid, executor)
}

/// Renders the sweep as a text table.
#[must_use]
pub fn render(output: &SweepOutput) -> String {
    let mut t = Table::new(vec![
        "config",
        "scheduler",
        "threshold",
        "compute",
        "stall",
        "total",
    ]);
    for p in &output.unified {
        t.row(vec![
            "unified".to_string(),
            p.scheduler.name().to_string(),
            format!("{:.2}", p.threshold),
            norm(p.normalized_compute),
            norm(p.normalized_stall),
            norm(p.normalized_total),
        ]);
    }
    for p in &output.points {
        t.row(vec![
            format!("{}c NMB={} LMB={}", p.clusters, p.lrb, p.lmb),
            p.scheduler.name().to_string(),
            format!("{:.2}", p.threshold),
            norm(p.normalized_compute),
            norm(p.normalized_stall),
            norm(p.normalized_total),
        ]);
    }
    format!(
        "Figure 6({}) — realistic buses (2 register buses @1), {}-cluster (cycles normalised to Unified)\n{}",
        if output.clusters == 2 { "a" } else { "b" },
        output.clusters,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_rmca_ahead_with_limited_buses() {
        let out = run_quick(4, &SuiteParams::small()).unwrap();
        assert!(!out.points.is_empty());
        // Points come in pairs (threshold 1.0, threshold 0.0) for baseline
        // then RMCA at the single (NMB=1, LMB=4) configuration.
        let baseline_best = out.points[..2]
            .iter()
            .map(|p| p.normalized_total)
            .fold(f64::INFINITY, f64::min);
        let rmca_best = out.points[2..4]
            .iter()
            .map(|p| p.normalized_total)
            .fold(f64::INFINITY, f64::min);
        assert!(
            rmca_best <= baseline_best * 1.02,
            "RMCA ({rmca_best:.3}) should not lose to the baseline ({baseline_best:.3}) with scarce buses"
        );
        let text = render(&out);
        assert!(text.contains("Figure 6"));
        assert!(text.contains("NMB=1"));
    }
}
