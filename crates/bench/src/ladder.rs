//! Exact-search ladder bracket: sequential vs speculative-parallel II
//! search over the gap corpus.
//!
//! Every (loop, machine) point of the [`crate::gap`] corpus is solved
//! twice by the portfolio backend — once strictly sequentially (ladder
//! width 1 on a 1-thread executor) and once with the speculative II ladder
//! on a multi-thread executor — and the bracket records per-point
//! wall-clock, charged steps, and the ladder's speculation accounting
//! (wasted steps, speculative/cancelled rungs, imported clauses). The
//! committed outcomes are cross-checked point by point: the ladder's
//! verdict contract says they must be identical whenever the step budget
//! does not bind, and the `exact_ladder` binary exits non-zero on any
//! mismatch — the nightly CI job turns a contract break into a red build.
//!
//! Unlike the suite-wallclock bracket (which pins ladder width 1 and
//! measures *batch* scaling), this bracket measures *intra-search*
//! scaling: one exact solve at a time, rungs fanned out on the executor.

use crate::gap::{corpus, machines, GapParams};
use crate::json::Json;
use crate::report::Table;
use mvp_exact::{solve_with, ExactBackend, ExactOptions, ExactOutcome, IiVerdict};
use mvp_exec::Executor;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Environment variable naming the CSV artifact the `exact_ladder` binary
/// writes (the CI job uploads it as `exact-ladder`).
pub const LADDER_CSV_ENV_VAR: &str = "MVP_LADDER_CSV";

/// Parameters of the ladder bracket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderParams {
    /// Corpus sizing and node budget (the solver column is ignored — the
    /// bracket always measures the portfolio backend, the one the ladder
    /// auto-enables on).
    pub gap: GapParams,
    /// Executor threads of the ladder pass.
    pub threads: usize,
    /// Ladder width of the ladder pass (`0` = auto: the executor's thread
    /// count).
    pub width: u32,
}

impl Default for LadderParams {
    fn default() -> Self {
        Self {
            gap: GapParams::default(),
            threads: Executor::from_env().threads(),
            width: 0,
        }
    }
}

/// One (loop, machine) measurement of the bracket.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderRow {
    /// Machine preset name.
    pub machine: String,
    /// Loop name.
    pub loop_name: String,
    /// Operations in the loop.
    pub num_ops: usize,
    /// Certified lower bound of the sequential reference.
    pub lower_bound: u32,
    /// II of the reference schedule, when one was found.
    pub exact_ii: Option<u32>,
    /// Whether the reference proved optimality.
    pub proved_optimal: bool,
    /// Wall-clock of the sequential solve, in milliseconds.
    pub sequential_ms: f64,
    /// Wall-clock of the ladder solve, in milliseconds.
    pub ladder_ms: f64,
    /// Steps (nodes + conflicts) the sequential solve charged.
    pub sequential_steps: u64,
    /// Steps the ladder solve charged against the shared budget.
    pub ladder_steps: u64,
    /// Speculative steps the ladder spent beyond what it charged
    /// (cancelled or over-budget rungs).
    pub wasted_steps: u64,
    /// Rungs launched beyond the first of each round.
    pub speculative_probes: u64,
    /// Launched rungs that never committed (cancelled or skipped).
    pub cancelled_probes: u64,
    /// Learnt clauses rungs imported from the shared export pool.
    pub imported_clauses: u64,
    /// Whether the two committed outcomes are identical (bound, schedule
    /// II, optimality claim and per-II verdict sequence).
    pub verdicts_match: bool,
}

/// The outcome fields the ladder's verdict contract pins.
fn fingerprint(o: &ExactOutcome) -> (u32, u32, Option<u32>, bool, Vec<(u32, IiVerdict)>) {
    (
        o.min_ii,
        o.lower_bound,
        o.schedule_ii(),
        o.proved_optimal,
        o.probes.iter().map(|p| (p.ii, p.verdict)).collect(),
    )
}

/// Runs the bracket. Points run serially on the caller's thread — each
/// ladder solve parallelises internally on its own executor, and the
/// per-point speculation columns are deltas of process-global counters.
#[must_use]
pub fn run(params: &LadderParams) -> Vec<LadderRow> {
    let options = ExactOptions::new().with_node_budget(params.gap.node_budget);
    let loops = corpus(&params.gap);
    let machines = machines();
    let sequential_backend = ExactBackend::portfolio(Arc::new(Executor::new(1)));
    let ladder_backend = ExactBackend::portfolio(Arc::new(Executor::new(params.threads)));
    let ladder_width = if params.width == 0 {
        u32::try_from(params.threads).unwrap_or(u32::MAX)
    } else {
        params.width
    };
    let speculation_counters = [
        mvp_trace::counter_handle!("exact.ladder.wasted_steps", Runtime),
        mvp_trace::counter_handle!("exact.ladder.speculative_probes", Stable),
        mvp_trace::counter_handle!("exact.ladder.cancelled_probes", Stable),
        mvp_trace::counter_handle!("exact.ladder.imported_clauses", Stable),
    ];

    let mut rows = Vec::new();
    for machine in &machines {
        for l in &loops {
            let start = Instant::now();
            let sequential = solve_with(
                l,
                machine,
                &options.with_ladder_width(1),
                &sequential_backend,
            );
            let sequential_ms = start.elapsed().as_secs_f64() * 1e3;
            let Ok(sequential) = sequential else {
                continue; // loop uses a unit kind the machine lacks
            };

            let before = speculation_counters.map(mvp_trace::Counter::get);
            let start = Instant::now();
            let ladder = solve_with(
                l,
                machine,
                &options.with_ladder_width(ladder_width),
                &ladder_backend,
            )
            .expect("solvability is width-independent");
            let ladder_ms = start.elapsed().as_secs_f64() * 1e3;
            let [wasted_steps, speculative_probes, cancelled_probes, imported_clauses] =
                std::array::from_fn(|i| speculation_counters[i].get() - before[i]);

            rows.push(LadderRow {
                machine: machine.name.clone(),
                loop_name: l.name().to_string(),
                num_ops: l.num_ops(),
                lower_bound: sequential.lower_bound,
                exact_ii: sequential.schedule_ii(),
                proved_optimal: sequential.proved_optimal,
                sequential_ms,
                ladder_ms,
                sequential_steps: sequential.nodes + sequential.conflicts,
                ladder_steps: ladder.nodes + ladder.conflicts,
                wasted_steps,
                speculative_probes,
                cancelled_probes,
                imported_clauses,
                verdicts_match: fingerprint(&ladder) == fingerprint(&sequential),
            });
        }
    }
    rows
}

/// Total sequential wall-clock over total ladder wall-clock; `None` on an
/// empty bracket or a zero ladder total.
#[must_use]
pub fn speedup(rows: &[LadderRow]) -> Option<f64> {
    let sequential: f64 = rows.iter().map(|r| r.sequential_ms).sum();
    let ladder: f64 = rows.iter().map(|r| r.ladder_ms).sum();
    (ladder > 0.0).then(|| sequential / ladder)
}

/// The rows whose committed outcomes differ from the sequential reference.
#[must_use]
pub fn verdict_mismatches(rows: &[LadderRow]) -> Vec<String> {
    rows.iter()
        .filter(|r| !r.verdicts_match)
        .map(|r| format!("{} / {}", r.loop_name, r.machine))
        .collect()
}

/// Renders the rows as a text table.
#[must_use]
pub fn render(rows: &[LadderRow]) -> String {
    let mut t = Table::new(vec![
        "machine",
        "loop",
        "ops",
        "bound",
        "exact",
        "seq_ms",
        "ladder_ms",
        "wasted",
        "match",
    ]);
    for r in rows {
        t.row(vec![
            r.machine.clone(),
            r.loop_name.clone(),
            r.num_ops.to_string(),
            r.lower_bound.to_string(),
            r.exact_ii.map_or_else(|| "-".into(), |x| x.to_string()),
            format!("{:.1}", r.sequential_ms),
            format!("{:.1}", r.ladder_ms),
            r.wasted_steps.to_string(),
            if r.verdicts_match { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let speedup_line = speedup(rows).map_or_else(String::new, |s| {
        format!("\ncorpus wall-clock: ladder vs sequential {s:.2}x")
    });
    format!(
        "Exact-search ladder bracket — sequential vs speculative II ladder\n{}{}\n",
        t.render(),
        speedup_line
    )
}

/// Serialises the rows as CSV (header + one line per row).
#[must_use]
pub fn to_csv(rows: &[LadderRow]) -> String {
    let mut out = String::from(
        "machine,loop,ops,lower_bound,exact_ii,proved_optimal,sequential_ms,ladder_ms,\
         sequential_steps,ladder_steps,wasted_steps,speculative_probes,cancelled_probes,\
         imported_clauses,verdicts_match\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.3},{:.3},{},{},{},{},{},{},{}\n",
            r.machine,
            r.loop_name,
            r.num_ops,
            r.lower_bound,
            r.exact_ii.map_or_else(String::new, |x| x.to_string()),
            r.proved_optimal,
            r.sequential_ms,
            r.ladder_ms,
            r.sequential_steps,
            r.ladder_steps,
            r.wasted_steps,
            r.speculative_probes,
            r.cancelled_probes,
            r.imported_clauses,
            r.verdicts_match,
        ));
    }
    out
}

/// Writes the CSV to `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csv(rows: &[LadderRow], path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(rows).as_bytes())
}

/// The rows as a JSON report (for `MVP_REPORT_JSON`).
#[must_use]
pub fn to_json(rows: &[LadderRow]) -> Json {
    Json::object([
        ("report", Json::from("exact-ladder")),
        ("speedup", Json::option(speedup(rows))),
        (
            "verdict_mismatches",
            Json::from(verdict_mismatches(rows).len()),
        ),
        (
            "rows",
            Json::array(rows.iter().map(|r| {
                Json::object([
                    ("machine", Json::from(r.machine.as_str())),
                    ("loop", Json::from(r.loop_name.as_str())),
                    ("ops", Json::from(r.num_ops)),
                    ("lower_bound", Json::from(r.lower_bound)),
                    ("exact_ii", Json::option(r.exact_ii)),
                    ("proved_optimal", Json::from(r.proved_optimal)),
                    ("sequential_ms", Json::from(r.sequential_ms)),
                    ("ladder_ms", Json::from(r.ladder_ms)),
                    ("sequential_steps", Json::from(r.sequential_steps)),
                    ("ladder_steps", Json::from(r.ladder_steps)),
                    ("wasted_steps", Json::from(r.wasted_steps)),
                    ("speculative_probes", Json::from(r.speculative_probes)),
                    ("cancelled_probes", Json::from(r.cancelled_probes)),
                    ("imported_clauses", Json::from(r.imported_clauses)),
                    ("verdicts_match", Json::from(r.verdicts_match)),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LadderParams {
        LadderParams {
            gap: GapParams {
                generated_loops: 2,
                max_ops: 6,
                ..GapParams::default()
            },
            threads: 2,
            width: 2,
        }
    }

    #[test]
    fn the_bracket_commits_identical_outcomes_and_accounts_for_speculation() {
        let rows = run(&small());
        assert!(!rows.is_empty());
        assert_eq!(verdict_mismatches(&rows), Vec::<String>::new());
        for r in &rows {
            assert!(r.verdicts_match, "{} / {}", r.loop_name, r.machine);
            assert!(r.lower_bound >= 1);
            assert!(r.sequential_ms >= 0.0 && r.ladder_ms >= 0.0);
            assert!(
                r.cancelled_probes <= r.speculative_probes,
                "only speculative rungs can be cancelled on {} / {}",
                r.loop_name,
                r.machine
            );
        }
        // Multi-probe searches speculate; the fig3 motivating loop resolves
        // on its first probe and must not.
        assert!(rows.iter().any(|r| r.speculative_probes > 0));
        assert!(speedup(&rows).is_some());
    }

    #[test]
    fn render_and_csv_cover_every_row() {
        let rows = run(&small());
        let text = render(&rows);
        assert!(text.contains("ladder bracket"));
        assert!(text.contains("corpus wall-clock"));
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.starts_with("machine,loop,"));
        assert!(csv.lines().skip(1).all(|l| l.ends_with("true")));
        let json = to_json(&rows).to_string();
        assert!(json.starts_with(r#"{"report":"exact-ladder""#));
        assert_eq!(json.matches("\"verdicts_match\":").count(), rows.len());
        let dir = std::env::temp_dir().join(format!("mvp-ladder-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("exact-ladder.csv");
        write_csv(&rows, &path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), csv);
        std::fs::remove_dir_all(&dir).ok();
    }
}
